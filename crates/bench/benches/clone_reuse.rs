//! C2 micro-bench: the per-input clone cost validation actually pays —
//! building a simulator from a shadow snapshot (`Simulator::from_shadow`)
//! versus rebinding a pooled one in place (`Simulator::reset_from_shadow`).
//!
//! Two views:
//!
//! * `clone_construct` — pure construction/rebind cost, the overhead the
//!   pool exists to remove. Copy-on-write snapshots already make both
//!   paths node-copy-free; the fresh path still pays the topology clone
//!   and every channel/heap/trace allocation, the reset path reuses them.
//! * `clone_validate` — construction plus a validation-shaped drive
//!   (deliver one input, run 50 simulated ms), showing the same delta in
//!   proportion to the work one validated input performs end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dice_core::scenarios;
use dice_core::snapshot::take_instant_snapshot;
use dice_netsim::{NodeId, SimDuration, SimTime, Simulator};
use std::hint::black_box;

fn snapshot_of(n: usize) -> (dice_netsim::ShadowSnapshot, dice_netsim::Topology) {
    let mut sim = if n == 27 {
        scenarios::demo27_system(2)
    } else {
        scenarios::healthy_line(n, 2)
    };
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    let (shadow, _) = take_instant_snapshot(&mut sim);
    let topo = sim.topology().clone();
    (shadow, topo)
}

/// The validation-shaped workload: deliver one input, run briefly.
fn drive(clone: &mut Simulator) {
    clone.deliver_direct(NodeId(1), NodeId(0), &[0u8; 19]);
    let end = clone.now() + SimDuration::from_millis(50);
    clone.run_until(end);
}

fn bench_construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("clone_construct");
    for n in [5usize, 27] {
        let (shadow, topo) = snapshot_of(n);
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, _| {
            b.iter(|| black_box(Simulator::from_shadow(&shadow, &topo, 3)));
        });
        let mut pooled = Simulator::from_shadow(&shadow, &topo, 3);
        group.bench_with_input(BenchmarkId::new("pooled_reset", n), &n, |b, _| {
            b.iter(|| {
                pooled.reset_from_shadow(&shadow, 3);
                black_box(pooled.now())
            });
        });
    }
    group.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("clone_validate");
    for n in [5usize, 27] {
        let (shadow, topo) = snapshot_of(n);
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, _| {
            b.iter(|| {
                let mut clone = Simulator::from_shadow(&shadow, &topo, 3);
                drive(&mut clone);
                black_box(clone.trace().stats())
            });
        });
        let mut pooled = Simulator::from_shadow(&shadow, &topo, 3);
        group.bench_with_input(BenchmarkId::new("pooled_reset", n), &n, |b, _| {
            b.iter(|| {
                pooled.reset_from_shadow(&shadow, 3);
                drive(&mut pooled);
                black_box(pooled.trace().stats())
            });
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_construct, bench_validate
}
criterion_main!(benches);
