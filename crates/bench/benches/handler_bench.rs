//! T4b micro-bench: the instrumentation tax (paper §3: "low overhead",
//! "ease of integration").
//!
//! Compares, for the same UPDATE message:
//! * plain wire decode (the baseline cost every router pays),
//! * the instrumented twin with **no** symbolic marking (integration
//!   overhead when DiCE is idle),
//! * the instrumented twin with full symbolic marking (cost while
//!   exploring).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::{Asn, RouterConfig, RouterId};
use dice_concolic::{ConcolicCtx, ConcolicProgram, SymInput};
use dice_core::{mark_update, GrammarConfig, SymbolicUpdateHandler, UpdateGrammar};
use dice_netsim::NodeId;
use std::hint::black_box;

fn setup() -> (RouterConfig, Vec<u8>) {
    let cfg = RouterConfig::minimal(Asn(65001), RouterId(1)).with_neighbor(
        NodeId(2),
        Asn(65002),
        "all",
        "all",
    );
    let mut g = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 9);
    (cfg, g.generate())
}

fn bench_update_paths(c: &mut Criterion) {
    let (cfg, bytes) = setup();
    let mut group = c.benchmark_group("update_processing");

    group.bench_function("wire_decode_only", |b| {
        b.iter(|| black_box(dice_bgp::decode(black_box(&bytes))).unwrap());
    });

    group.bench_function("twin_concrete", |b| {
        let mut handler = SymbolicUpdateHandler::new(cfg.clone(), NodeId(2));
        b.iter(|| {
            let mut ctx = ConcolicCtx::new(SymInput::all_concrete(bytes.clone()));
            black_box(handler.run(&mut ctx))
        });
    });

    group.bench_function("twin_symbolic", |b| {
        let mut handler = SymbolicUpdateHandler::new(cfg.clone(), NodeId(2));
        let mask = mark_update(&bytes);
        b.iter(|| {
            let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes.clone(), mask.clone()));
            black_box(handler.run(&mut ctx))
        });
    });

    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_update_paths
}
criterion_main!(benches);
