//! T4a/T2 micro-bench: checkpoint cloning and snapshot instantiation cost
//! ("lightweight node checkpoints").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dice_bgp::{Asn, BgpRouter, Ipv4Net, RouterConfig, RouterId};
use dice_core::scenarios;
use dice_core::snapshot::take_instant_snapshot;
use dice_netsim::{NodeId, SimDuration, SimTime, Simulator, Topology};
use std::hint::black_box;

fn fat_router(routes: u32) -> BgpRouter {
    let mut cfg = RouterConfig::minimal(Asn(65001), RouterId(1));
    for i in 0..routes {
        cfg = cfg.with_network(Ipv4Net::new(0x0A00_0000 | (i << 8), 24));
    }
    BgpRouter::new(cfg)
}

fn bench_checkpoint_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_clone");
    for routes in [16u32, 256, 1024] {
        let mut sim = Simulator::new(Topology::with_nodes(1), 1);
        sim.set_node(NodeId(0), Box::new(fat_router(routes)));
        sim.start();
        sim.run_until(SimTime::from_nanos(1_000_000));
        group.bench_with_input(BenchmarkId::from_parameter(routes), &routes, |b, _| {
            let node = sim.node(NodeId(0));
            b.iter(|| black_box(node.clone_node()));
        });
    }
    group.finish();
}

fn bench_shadow_instantiate(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_instantiate");
    for n in [5usize, 27] {
        let mut sim = if n == 27 {
            scenarios::demo27_system(2)
        } else {
            scenarios::healthy_line(n, 2)
        };
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(300_000_000_000),
        );
        let (shadow, _) = take_instant_snapshot(&mut sim);
        let topo = sim.topology().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Simulator::from_shadow(&shadow, &topo, 3)));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_checkpoint_clone, bench_shadow_instantiate
}
criterion_main!(benches);
