//! T4c micro-bench: solver cost on the constraint shapes the BGP handler
//! actually produces (single-byte dispatch, 16-bit length bounds,
//! multi-byte prefix masks), plus the budget ablation from DESIGN.md §6.4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dice_concolic::{BinOp, CmpOp, Constraint, ExprArena, Solver, SolverBudget};
use std::hint::black_box;

fn byte_eq_system(a: &mut ExprArena) -> Vec<Constraint> {
    // Typical dispatch chain: in[0] != 1..7, in[0] == 0xF5.
    let x = a.input(0);
    let mut cons = Vec::new();
    for k in 1..=7u64 {
        let c = a.constant(8, k);
        let e = a.cmp(CmpOp::Eq, x, c);
        cons.push((e, false));
    }
    let target = a.constant(8, 0xF5);
    let e = a.cmp(CmpOp::Eq, x, target);
    cons.push((e, true));
    cons
}

fn u16_bound_system(a: &mut ExprArena) -> Vec<Constraint> {
    // The seeded-bug shape: (in[0]<<8|in[1]) >= 0x0F00 within a block bound.
    let hi = a.input(0);
    let lo = a.input(1);
    let hi16 = a.zext(16, hi);
    let lo16 = a.zext(16, lo);
    let k8 = a.constant(16, 8);
    let sh = a.bin(BinOp::Shl, 16, hi16, k8);
    let word = a.bin(BinOp::Or, 16, sh, lo16);
    let low = a.constant(16, 0x0F00);
    let high = a.constant(16, 0x0FF0);
    let c1 = a.cmp(CmpOp::Ult, word, low);
    let c2 = a.cmp(CmpOp::Ule, word, high);
    vec![(c1, false), (c2, true)]
}

fn prefix_mask_system(a: &mut ExprArena) -> Vec<Constraint> {
    // NLRI policy shape: (addr & 0xFF000000) == 0x0A000000, len in [8,24].
    let mut addr = a.constant(32, 0);
    for k in 0..4u32 {
        let byte = a.input(k);
        let w = a.zext(32, byte);
        let sh = a.constant(32, (24 - 8 * k) as u64);
        let shifted = a.bin(BinOp::Shl, 32, w, sh);
        addr = a.bin(BinOp::Or, 32, addr, shifted);
    }
    let mask = a.constant(32, 0xFF00_0000);
    let masked = a.bin(BinOp::And, 32, addr, mask);
    let want = a.constant(32, 0x0A00_0000);
    let c1 = a.cmp(CmpOp::Eq, masked, want);
    let len = a.input(4);
    let lo = a.constant(8, 8);
    let hi = a.constant(8, 24);
    let c2 = a.cmp(CmpOp::Ule, lo, len);
    let c3 = a.cmp(CmpOp::Ule, len, hi);
    vec![(c1, true), (c2, true), (c3, true)]
}

type ShapeBuilder = fn(&mut ExprArena) -> Vec<Constraint>;

fn bench_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_shapes");
    let shapes: Vec<(&str, ShapeBuilder)> = vec![
        ("byte_dispatch", byte_eq_system),
        ("u16_length_bound", u16_bound_system),
        ("prefix_mask", prefix_mask_system),
    ];
    for (name, build) in shapes {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut arena = ExprArena::new();
                let cons = build(&mut arena);
                let mut solver = Solver::new();
                black_box(solver.solve(&arena, &cons, &|_| 0))
            });
        });
    }
    group.finish();
}

fn bench_budget_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_budget");
    for budget in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let mut arena = ExprArena::new();
                    let cons = prefix_mask_system(&mut arena);
                    let mut solver = Solver::with_budget(SolverBudget { max_steps: budget });
                    black_box(solver.solve(&arena, &cons, &|_| 0))
                });
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_shapes, bench_budget_ablation
}
criterion_main!(benches);
