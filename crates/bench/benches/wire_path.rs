//! W1 micro-bench: the per-datagram encode cost on the wire path —
//! `encode` (one fresh `Vec` per message, the pre-zero-copy shape) versus
//! `encode_into` a reused buffer (the shape the send path actually runs
//! after the zero-copy PR), for both protocol codecs.
//!
//! A third group measures the [`BufPool`] fast path itself: a steady-state
//! acquire→fill→recycle cycle against paying `Vec::with_capacity` per
//! datagram. Allocation *counts* (the headline ≥2x claim) are measured by
//! `exp_wire`, which owns a counting global allocator; criterion here
//! tracks the time side of the same comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bench::wire_workload::{bgp_update, gossip_digest, gossip_rumor};
use dice_netsim::BufPool;
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let update = bgp_update();
    let digest = gossip_digest();
    let rumor = gossip_rumor();

    let mut group = c.benchmark_group("wire_encode");
    group.bench_function("bgp_update/fresh", |b| {
        b.iter(|| black_box(dice_bgp::wire::encode(black_box(&update))));
    });
    let mut buf = Vec::new();
    group.bench_function("bgp_update/reused", |b| {
        b.iter(|| {
            dice_bgp::wire::encode_into(black_box(&update), &mut buf);
            black_box(buf.len())
        });
    });
    group.bench_function("gossip_digest/fresh", |b| {
        b.iter(|| black_box(dice_gossip::wire::encode(black_box(&digest))));
    });
    let mut gbuf = Vec::new();
    group.bench_function("gossip_digest/reused", |b| {
        b.iter(|| {
            dice_gossip::wire::encode_into(black_box(&digest), &mut gbuf);
            black_box(gbuf.len())
        });
    });
    group.bench_function("gossip_rumor/fresh", |b| {
        b.iter(|| black_box(dice_gossip::wire::encode(black_box(&rumor))));
    });
    let mut rbuf = Vec::new();
    group.bench_function("gossip_rumor/reused", |b| {
        b.iter(|| {
            dice_gossip::wire::encode_into(black_box(&rumor), &mut rbuf);
            black_box(rbuf.len())
        });
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let update = bgp_update();
    let mut group = c.benchmark_group("buf_pool");
    // Steady state: the previous buffer is recycled before the next
    // acquire, so every iteration after the first is a pool hit.
    let pool = BufPool::new();
    group.bench_function("acquire_recycled", |b| {
        b.iter(|| {
            let mut buf = pool.acquire();
            dice_bgp::wire::encode_into(&update, buf.as_mut_vec());
            let n = buf.len();
            pool.recycle(buf.into());
            black_box(n)
        });
    });
    group.bench_function("alloc_fresh", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64);
            dice_bgp::wire::encode_into(&update, &mut buf);
            black_box(buf)
        });
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(40)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encode, bench_pool
}
criterion_main!(benches);
