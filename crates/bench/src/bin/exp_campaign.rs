//! **C1 — Campaign throughput and detection**: DiCE sweeping a federation
//! end-to-end, the headline number every scale PR moves.
//!
//! Two campaigns:
//!
//! 1. The 27-router Figure 1 demo (healthy): rounds/s, coverage union,
//!    per-explorer coverage — the cost of *continuously* testing a
//!    federation.
//! 2. The seeded-bug line (faulty): per-class detection latency at
//!    campaign granularity.
//!
//! Prints Markdown tables; `--json PATH` archives the raw rows.

use dice_bench::{fmt_nanos, maybe_write_json, Table};
use dice_core::{scenarios, Campaign, CampaignReport};
use dice_netsim::{NodeId, SimDuration, SimTime};

fn fault_counts(report: &CampaignReport) -> String {
    let mut by_class: std::collections::BTreeMap<String, usize> = Default::default();
    for f in &report.faults {
        *by_class.entry(f.class.to_string()).or_default() += 1;
    }
    if by_class.is_empty() {
        "none".into()
    } else {
        by_class
            .iter()
            .map(|(c, n)| format!("{c}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn summarize(table: &mut Table, label: &str, report: &CampaignReport) {
    table.row(vec![
        label.into(),
        "rounds".into(),
        report.rounds.len().to_string(),
    ]);
    table.row(vec![
        label.into(),
        "wall".into(),
        format!("{}ms", report.wall_ms),
    ]);
    table.row(vec![
        label.into(),
        "rounds/s".into(),
        format!("{:.2}", report.rounds_per_sec()),
    ]);
    table.row(vec![
        label.into(),
        "sim time consumed".into(),
        fmt_nanos(report.sim_nanos),
    ]);
    table.row(vec![
        label.into(),
        "concolic executions".into(),
        report.executions_total.to_string(),
    ]);
    table.row(vec![
        label.into(),
        "inputs validated".into(),
        report.validated_total.to_string(),
    ]);
    table.row(vec![
        label.into(),
        "coverage union".into(),
        report.coverage_union.to_string(),
    ]);
    table.row(vec![
        label.into(),
        "faults by class".into(),
        fault_counts(report),
    ]);
}

fn main() {
    // C1a: continuous testing cost on the healthy Figure 1 federation.
    let mut live = scenarios::demo27_system(11);
    live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    let demo = Campaign::new(&live)
        .explorers([NodeId(0), NodeId(3), NodeId(5), NodeId(11), NodeId(12)])
        .max_peers_per_explorer(2)
        .executions(64)
        .validate_top(8)
        .horizon(SimDuration::from_secs(30))
        .workers(4)
        .run(&mut live)
        .expect("demo campaign runs");

    let mut t1 = Table::new(
        "C1a — campaign over the 27-router demo (healthy)",
        &["campaign", "metric", "value"],
    );
    summarize(&mut t1, "demo27", &demo);
    t1.print();

    let mut t2 = Table::new(
        "C1b — per-explorer coverage (demo27)",
        &["explorer", "kind", "rounds", "coverage", "executions"],
    );
    for e in &demo.per_explorer {
        t2.row(vec![
            e.explorer.to_string(),
            e.kind.clone(),
            e.rounds.to_string(),
            e.coverage.to_string(),
            e.executions.to_string(),
        ]);
    }
    t2.print();

    // C1c: detection latency on a faulty deployment.
    let mut buggy = scenarios::buggy_parser_scenario(7);
    buggy.run_until(SimTime::from_nanos(10_000_000_000));
    let faulty = Campaign::new(&buggy)
        .executions(160)
        .validate_top(16)
        .workers(4)
        .run(&mut buggy)
        .expect("buggy campaign runs");

    let mut t3 = Table::new(
        "C1c — campaign detection latency (seeded parser bug)",
        &["campaign", "metric", "value"],
    );
    summarize(&mut t3, "buggy-line", &faulty);
    for d in &faulty.detection {
        t3.row(vec![
            "buggy-line".into(),
            format!("first {} detection", d.class),
            format!(
                "round {} ({} via {}), input #{}, {}ms cumulative",
                d.round, d.explorer, d.inject_peer, d.input_ordinal, d.wall_ms_cum
            ),
        ]);
    }
    t3.print();

    maybe_write_json(&[&t1, &t2, &t3]);
}
