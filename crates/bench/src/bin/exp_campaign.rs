//! **C1 — Campaign throughput and detection**: DiCE sweeping a federation
//! end-to-end, the headline number every scale PR moves.
//!
//! Campaigns:
//!
//! 1. The 27-router Figure 1 demo (healthy): rounds/s, coverage union,
//!    per-explorer coverage — the cost of *continuously* testing a
//!    federation. Runs at the parallel engine's default (`pair_workers=4`).
//! 2. The seeded-bug line (faulty): per-class detection latency at
//!    campaign granularity.
//! 3. **Workers sweep** (C1d): the same demo27 campaign at `pair_workers`
//!    ∈ {1, 2, 4}, recording the scaling curve and cross-checking that
//!    the normalized report is byte-identical at every point.
//! 4. **Clone-reuse sweep** (C2): the same campaign with the validation
//!    clone pool disabled (`pool_size = 0`, every input pays a fresh
//!    `from_shadow`) vs. enabled, with a byte-identity check of the
//!    normalized reports — pooling must be a pure allocation win.
//! 5. **Solver-cache sweep** (S2): the same campaign with the concolic
//!    refutation cache off vs. on, again byte-identical by construction
//!    (only UNSAT answers are cached), with the saved solver queries
//!    reported.
//!
//! Flags:
//!
//! * `--config <file.json>` — load the demo-campaign [`CampaignConfig`]
//!   from JSON instead of the built-in default (exercises the vendored
//!   serde deserialization path).
//! * `--smoke` — tiny budgets for CI: fewer executions/validations, sweep
//!   {1, 2} only. Keeps the perf trajectory file cheap to regenerate.
//! * `--repeat N` — rerun the C1a campaign `N` times on fresh identical
//!   systems and append a `rounds/s min/median/max of N` row to its table.
//! * `--json PATH` — archive the raw rows as JSON.
//!
//! Prints Markdown tables; the JSON output is committed as
//! `BENCH_campaign.json` by CI to start the perf trajectory.

use dice_bench::{
    detection_rows, maybe_write_json, parse_repeat, spread_rows, summarize_campaign, Table,
};
use dice_core::{scenarios, Campaign, CampaignConfig, CampaignReport};
use dice_netsim::{NodeId, SimDuration, SimTime, Simulator};

struct Options {
    config: Option<String>,
    smoke: bool,
}

fn parse_options() -> Options {
    let mut opts = Options {
        config: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => {
                opts.config = Some(args.next().unwrap_or_else(|| {
                    panic!("--config requires a path to a CampaignConfig JSON file")
                }));
            }
            "--smoke" => opts.smoke = true,
            "--json" | "--repeat" => {
                // Handled by maybe_write_json / parse_repeat; skip the
                // value argument.
                args.next();
            }
            other => panic!(
                "unknown flag {other:?}; supported: --config <file.json>, --smoke, \
                 --repeat <n>, --json <path>"
            ),
        }
    }
    opts
}

/// The Figure 1 demo federation, quiesced and ready to snapshot.
fn demo27_live() -> Simulator {
    let mut live = scenarios::demo27_system(11);
    live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    live
}

/// The built-in demo-campaign configuration (overridable via `--config`).
/// Pure data — no simulator needed to assemble it.
fn default_demo_config(smoke: bool) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        explorers: vec![NodeId(0), NodeId(3), NodeId(5), NodeId(11), NodeId(12)],
        max_peers_per_explorer: 2,
        pair_workers: if smoke { 2 } else { 4 },
        ..CampaignConfig::default()
    };
    cfg.template.concolic_executions = if smoke { 24 } else { 64 };
    cfg.template.validate_top = if smoke { 4 } else { 8 };
    cfg.template.horizon = SimDuration::from_secs(30);
    cfg.template.workers = 4;
    cfg
}

fn run_demo(cfg: &CampaignConfig) -> CampaignReport {
    let mut live = demo27_live();
    Campaign::new(&live)
        .config(cfg.clone())
        .run(&mut live)
        .expect("demo campaign runs")
}

fn main() {
    let opts = parse_options();
    let demo_cfg = match &opts.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read --config {path}: {e}"));
            serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("cannot parse --config {path}: {e}"))
        }
        None => default_demo_config(opts.smoke),
    };

    // C1a: continuous testing cost on the healthy Figure 1 federation,
    // at the configured round-level parallelism. `--repeat N` reruns it on
    // fresh identical systems; the median damps scheduler noise.
    let repeat = parse_repeat();
    let demo = run_demo(&demo_cfg);
    let mut samples = vec![demo.rounds_per_sec()];
    for _ in 1..repeat {
        samples.push(run_demo(&demo_cfg).rounds_per_sec());
    }

    let mut t1 = Table::new(
        "C1a — campaign over the 27-router demo (healthy)",
        &["campaign", "metric", "value"],
    );
    let demo_label = format!("demo27 (pair_workers={})", demo_cfg.pair_workers.max(1));
    summarize_campaign(&mut t1, &demo_label, &demo);
    spread_rows(&mut t1, &demo_label, &samples);
    t1.print();

    let mut t2 = Table::new(
        "C1b — per-explorer coverage (demo27)",
        &["explorer", "kind", "rounds", "coverage", "executions"],
    );
    for e in &demo.per_explorer {
        t2.row(vec![
            e.explorer.to_string(),
            e.kind.clone(),
            e.rounds.to_string(),
            e.coverage.to_string(),
            e.executions.to_string(),
        ]);
    }
    t2.print();

    // C1c: detection latency on a faulty deployment. Budgets stay at the
    // full size even under --smoke: below ~160 executions the concolic
    // search does not reach the seeded parser bug and the latency rows
    // would be empty.
    let mut buggy = scenarios::buggy_parser_scenario(7);
    buggy.run_until(SimTime::from_nanos(10_000_000_000));
    let faulty = Campaign::new(&buggy)
        .executions(160)
        .validate_top(16)
        .workers(4)
        .pair_workers(2)
        .run(&mut buggy)
        .expect("buggy campaign runs");

    let mut t3 = Table::new(
        "C1c — campaign detection latency (seeded parser bug)",
        &["campaign", "metric", "value"],
    );
    summarize_campaign(&mut t3, "buggy-line", &faulty);
    detection_rows(&mut t3, "buggy-line", &faulty);
    t3.print();

    // C1d: the scaling curve — same campaign, fresh identical live system
    // per point, pair_workers swept. The normalized report must be
    // byte-identical at every point (the determinism contract). Round
    // work is CPU-bound, so the wall-clock speedup is bounded by the
    // host's available parallelism — recorded in the first row so the
    // committed perf trajectory stays interpretable across machines.
    let sweep: &[usize] = if opts.smoke { &[1, 2] } else { &[1, 2, 4] };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t4 = Table::new(
        "C1d — pair_workers scaling (demo27, identical budgets)",
        &[
            "pair_workers",
            "wall",
            "rounds/s",
            "speedup vs 1",
            "report identical",
        ],
    );
    t4.row(vec![
        "(host cores)".into(),
        "-".into(),
        "-".into(),
        format!("max {host_cores}x"),
        "-".into(),
    ]);
    let mut base_rps = 0.0;
    let mut base_normalized = String::new();
    for &k in sweep {
        let mut cfg = demo_cfg.clone();
        cfg.pair_workers = k;
        // The C1a campaign already ran exactly this configuration when k
        // matches its pair_workers; reuse its report instead of paying
        // for a duplicate run.
        let report = if k == demo_cfg.pair_workers.max(1) {
            demo.clone()
        } else {
            run_demo(&cfg)
        };
        let normalized = serde_json::to_string(&report.normalized()).expect("serializable");
        let rps = report.rounds_per_sec();
        if k == 1 {
            base_rps = rps;
            base_normalized = normalized.clone();
        }
        t4.row(vec![
            k.to_string(),
            format!("{:.1}ms", report.wall_us as f64 / 1e3),
            format!("{rps:.2}"),
            format!("{:.2}x", rps / base_rps.max(f64::MIN_POSITIVE)),
            if normalized == base_normalized {
                "yes".into()
            } else {
                "NO — DETERMINISM VIOLATION".into()
            },
        ]);
    }
    t4.print();

    // C2: clone reuse. Same campaign, pool off vs. on; the normalized
    // reports must be byte-identical — the pool only recycles
    // allocations (`reset_from_shadow` == `from_shadow`, state for
    // state). Both knobs are forced explicitly so the sweep stays a real
    // ablation even when a `--config` file itself disables pooling; the
    // C1a report is only reused when its configuration already matches
    // the variant.
    let demo_normalized = serde_json::to_string(&demo.normalized()).expect("serializable");
    let mut fresh_cfg = demo_cfg.clone();
    fresh_cfg.template.pool_size = 0;
    let fresh = if demo_cfg.template.pool_size == 0 {
        demo.clone()
    } else {
        run_demo(&fresh_cfg)
    };
    let mut pooled_cfg = demo_cfg.clone();
    pooled_cfg.template.pool_size = pooled_cfg.template.pool_size.max(1);
    let pooled = if demo_cfg.template.pool_size >= 1 {
        demo.clone()
    } else {
        run_demo(&pooled_cfg)
    };
    let mut t5 = Table::new(
        "C2 — clone-pool reuse (demo27, identical budgets)",
        &["variant", "wall", "rounds/s", "pool", "report identical"],
    );
    let pool_cell =
        |r: &CampaignReport| format!("{} hits / {} misses", r.perf.pool_hits, r.perf.pool_misses);
    for (name, report) in [
        ("fresh clones (pool_size=0)", &fresh),
        (
            if pooled_cfg.template.pool_size == 1 {
                "pooled (pool_size=1)"
            } else {
                "pooled"
            },
            &pooled,
        ),
    ] {
        let normalized = serde_json::to_string(&report.normalized()).expect("serializable");
        t5.row(vec![
            name.into(),
            format!("{:.1}ms", report.wall_us as f64 / 1e3),
            format!("{:.2}", report.rounds_per_sec()),
            pool_cell(report),
            if normalized == demo_normalized {
                "yes".into()
            } else {
                "NO — DETERMINISM VIOLATION".into()
            },
        ]);
    }
    t5.print();

    // S2: solver cache. Off vs. on; byte-identical by construction
    // (refutations only), the saved per-constraint work is the win.
    // Knobs forced like C2 so a `--config` that disables the cache still
    // yields a real off-vs-on comparison.
    //
    // Expect "0 refuted-cache hits" on this corpus: the cache keys on
    // structural constraint-chain hashes, and the per-seed input-length
    // constant folds into every chain, so grammar seeds of different
    // lengths never share a prefix chain to hit on. The win shows up in
    // the memo-hits column instead (see EXPERIMENTS.md S2 for the full
    // diagnosis; `dice-concolic::explore` documents the mechanism).
    let mut nocache_cfg = demo_cfg.clone();
    nocache_cfg.template.solver_cache = false;
    let nocache = if demo_cfg.template.solver_cache {
        run_demo(&nocache_cfg)
    } else {
        demo.clone()
    };
    let mut cache_cfg = demo_cfg.clone();
    cache_cfg.template.solver_cache = true;
    let cached = if demo_cfg.template.solver_cache {
        demo.clone()
    } else {
        run_demo(&cache_cfg)
    };
    let mut t6 = Table::new(
        "S2 — concolic refutation cache (demo27, identical budgets)",
        &["variant", "wall", "rounds/s", "solver", "report identical"],
    );
    let solver_cell = |r: &CampaignReport| {
        format!(
            "{} solves, {} refuted-cache hits, {} memo hits, {} covered flips skipped",
            r.perf.solver_queries,
            r.perf.solver_cache_hits,
            r.perf.unary_memo_hits,
            r.perf.covered_flips_skipped
        )
    };
    for (name, report) in [("cache off", &nocache), ("cache on", &cached)] {
        let normalized = serde_json::to_string(&report.normalized()).expect("serializable");
        t6.row(vec![
            name.into(),
            format!("{:.1}ms", report.wall_us as f64 / 1e3),
            format!("{:.2}", report.rounds_per_sec()),
            solver_cell(report),
            if normalized == demo_normalized {
                "yes".into()
            } else {
                "NO — DETERMINISM VIOLATION".into()
            },
        ]);
    }
    t6.print();

    maybe_write_json(&[&t1, &t2, &t3, &t4, &t5, &t6]);
}
