//! **T3 — Constraints cover code *and* configuration** (paper §3: "the
//! explored execution paths are comprehensive of both code and
//! configuration", via the interpreted config).
//!
//! The same seed messages run through the instrumented handler under
//! configurations of growing policy complexity. Recorded constraints and
//! explored paths must grow with the *configuration*, with the code fixed.

use dice_bench::{maybe_write_json, Table};
use dice_bgp::policy::{Match, Policy, PrefixFilter, Rule, Verdict};
use dice_bgp::{net, Asn, RouterConfig, RouterId};
use dice_concolic::{explore, ConcolicCtx, ConcolicProgram, ExploreConfig, SymInput};
use dice_core::{mark_update, GrammarConfig, SymbolicUpdateHandler, UpdateGrammar};
use dice_netsim::NodeId;

/// A config whose import policy has `rules` prefix/AS rules.
fn config_with_rules(rules_n: usize) -> RouterConfig {
    let mut rules = Vec::new();
    for i in 0..rules_n {
        rules.push(Rule {
            matches: vec![
                Match::PrefixIn(vec![PrefixFilter {
                    net: net(&format!("{}.0.0.0/8", 16 + i)),
                    min_len: 8,
                    max_len: 24,
                }]),
                Match::AsPathContains(Asn(64200 + i as u16)),
            ],
            actions: vec![dice_bgp::Action::SetLocalPref(150 + i as u32)],
            verdict: None,
        });
    }
    let policy = Policy {
        name: "imp".into(),
        rules,
        default: Verdict::Accept,
    };
    let mut cfg = RouterConfig::minimal(Asn(65001), RouterId(1)).with_neighbor(
        NodeId(2),
        Asn(65002),
        "imp",
        "all",
    );
    cfg = cfg.with_policy(policy);
    cfg
}

fn main() {
    let mut grammar = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 3);
    let seeds = vec![grammar.generate(), grammar.generate(), grammar.generate()];

    let mut table = Table::new(
        "T3 — recorded constraints scale with configuration complexity (code fixed)",
        &[
            "policy rules",
            "config complexity",
            "avg path constraints (fixed seed set)",
            "distinct paths (64 execs)",
            "branch coverage",
        ],
    );

    for rules_n in [0usize, 2, 4, 8, 16] {
        let cfg = config_with_rules(rules_n);
        let complexity = cfg.policy_complexity();

        // Average constraint count on the fixed seeds (no exploration).
        let mut handler = SymbolicUpdateHandler::new(cfg.clone(), NodeId(2));
        let mut total = 0usize;
        for bytes in &seeds {
            let mask = mark_update(bytes);
            let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes.clone(), mask));
            let _ = handler.run(&mut ctx);
            total += ctx.path().len();
        }
        let avg = total as f64 / seeds.len() as f64;

        // Exploration breadth under a fixed budget.
        let mut handler2 = SymbolicUpdateHandler::new(cfg, NodeId(2));
        let report = explore(
            &mut handler2,
            &seeds,
            &mark_update,
            &ExploreConfig {
                max_executions: 64,
                ..Default::default()
            },
        );

        table.row(vec![
            rules_n.to_string(),
            complexity.to_string(),
            format!("{avg:.1}"),
            report.distinct_paths.to_string(),
            report.final_coverage().to_string(),
        ]);
    }
    table.print();
    maybe_write_json(&[&table]);
}
