//! **F1 — The Figure 1 demo**: DiCE executing over a topology of 27 BGP
//! routers under Internet-like conditions.
//!
//! Regenerates the demo view: the DOT graph of the topology, per-tier
//! convergence statistics, and one DiCE round per tier (stub, transit,
//! tier-1 explorer) with exploration statistics.

use dice_bench::{fmt_nanos, maybe_write_json, Table};
use dice_bgp::BgpRouter;
use dice_core::{scenarios, DiceConfig, DiceRunner};
use dice_netsim::{NodeId, SimDuration, SimTime, Topology};

fn main() {
    let topo = Topology::demo27();
    eprintln!("{}", topo.to_dot(|n| format!("AS{}", 65000 + n.0)));

    let mut live = scenarios::demo27_system(1);
    let outcome = live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );

    let mut t1 = Table::new("F1a — demo27 convergence", &["metric", "value"]);
    let stats = live.trace().stats();
    t1.row(vec!["outcome".into(), format!("{outcome:?}")]);
    t1.row(vec!["converged at".into(), live.now().to_string()]);
    t1.row(vec![
        "messages delivered".into(),
        stats.msgs_delivered.to_string(),
    ]);
    t1.row(vec![
        "bytes delivered".into(),
        stats.bytes_delivered.to_string(),
    ]);
    t1.row(vec!["sessions up".into(), stats.sessions_up.to_string()]);
    let total_routes: usize = (0..27u32)
        .map(|i| {
            live.node(NodeId(i))
                .as_any()
                .downcast_ref::<BgpRouter>()
                .unwrap()
                .loc_rib()
                .len()
        })
        .sum();
    t1.row(vec![
        "total Loc-RIB entries".into(),
        total_routes.to_string(),
    ]);
    t1.print();

    let mut t2 = Table::new(
        "F1b — per-tier routing state",
        &["tier", "nodes", "avg loc-rib", "avg updates rx"],
    );
    for (tier, range) in [("tier-1", 0u32..3), ("tier-2", 3..11), ("stub", 11..27)] {
        let n = range.clone().count();
        let (mut rib, mut rx) = (0usize, 0u64);
        for i in range {
            let r = live
                .node(NodeId(i))
                .as_any()
                .downcast_ref::<BgpRouter>()
                .unwrap();
            rib += r.loc_rib().len();
            rx += r.stats().updates_rx;
        }
        t2.row(vec![
            tier.into(),
            n.to_string(),
            format!("{:.1}", rib as f64 / n as f64),
            format!("{:.1}", rx as f64 / n as f64),
        ]);
    }
    t2.print();

    // One DiCE round from each tier.
    let mut t3 = Table::new(
        "F1c — DiCE rounds across tiers (explorer node varies)",
        &[
            "explorer",
            "tier",
            "snapshot sim-latency",
            "paths",
            "coverage",
            "validated",
            "faults",
            "wall (ms)",
        ],
    );
    for (explorer, peer, tier) in [
        (NodeId(0), NodeId(1), "tier-1"),
        (NodeId(5), NodeId(2), "tier-2"),
        (NodeId(12), NodeId(4), "stub"),
    ] {
        let mut cfg = DiceConfig::new(explorer, peer);
        cfg.concolic_executions = 96;
        cfg.validate_top = 12;
        cfg.workers = 4;
        cfg.horizon = SimDuration::from_secs(90);
        let mut dice = DiceRunner::from_sim(cfg, &live);
        let report = dice.run_round(&mut live).expect("round");
        t3.row(vec![
            explorer.to_string(),
            tier.into(),
            fmt_nanos(report.snapshot.sim_duration_nanos),
            report.distinct_paths.to_string(),
            report.branch_coverage.to_string(),
            report.validated.to_string(),
            report.faults.len().to_string(),
            report.wall_ms.to_string(),
        ]);
    }
    t3.print();

    maybe_write_json(&[&t1, &t2, &t3]);
}
