//! **T1 — Fault detection across the three classes** (paper §1/§3:
//! "quickly detects faults that can occur due to programming errors,
//! policy conflicts, and operator mistakes").
//!
//! For each seeded scenario, runs one DiCE round and reports the budget
//! spent until first detection, plus a random-mutation baseline for the
//! programming-error class (the one requiring input synthesis).

use dice_bench::{fmt_nanos, maybe_write_json, Table};
use dice_concolic::{random_fuzz, RunStatus};
use dice_core::{
    mark_update, scenarios, DiceConfig, DiceRunner, FaultClass, GrammarConfig,
    SymbolicUpdateHandler, UpdateGrammar,
};
use dice_netsim::{NodeId, SimDuration, SimTime, Simulator};

struct Outcome {
    detected: bool,
    class: &'static str,
    executions: usize,
    distinct_paths: usize,
    validated_until_detection: usize,
    wall_ms: u64,
    snapshot_nanos: u64,
}

fn run_dice(live: &mut Simulator, mut cfg: DiceConfig, want: FaultClass) -> Outcome {
    cfg.workers = 4;
    let mut runner = DiceRunner::from_sim(cfg, live);
    let report = runner.run_round(live).expect("round");
    let detected = report.classes().contains(&want);
    let ordinal = report
        .detection_input_ordinal
        .get(&want.to_string())
        .copied()
        .unwrap_or(0);
    Outcome {
        detected,
        class: match want {
            FaultClass::ProgrammingError => "programming error",
            FaultClass::PolicyConflict => "policy conflict",
            FaultClass::OperatorMistake => "operator mistake",
        },
        executions: report.executions,
        distinct_paths: report.distinct_paths,
        validated_until_detection: ordinal,
        wall_ms: report.wall_ms,
        snapshot_nanos: report.snapshot.sim_duration_nanos,
    }
}

fn main() {
    let mut table = Table::new(
        "T1 — time/budget to first detection per fault class",
        &[
            "fault class",
            "detected",
            "concolic execs",
            "distinct paths",
            "inputs validated until detection",
            "snapshot (sim)",
            "round wall (ms)",
        ],
    );

    // Class 1: programming error (seeded parser defect on node 1).
    {
        let mut live = scenarios::buggy_parser_scenario(101);
        live.run_until(SimTime::from_nanos(10_000_000_000));
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 192;
        cfg.validate_top = 24;
        let o = run_dice(&mut live, cfg, FaultClass::ProgrammingError);
        table.row(vec![
            o.class.into(),
            o.detected.to_string(),
            o.executions.to_string(),
            o.distinct_paths.to_string(),
            o.validated_until_detection.to_string(),
            fmt_nanos(o.snapshot_nanos),
            o.wall_ms.to_string(),
        ]);
    }

    // Class 2: policy conflict (bad gadget).
    {
        let mut live = scenarios::bad_gadget_scenario(102);
        live.run_until(SimTime::from_nanos(20_000_000_000));
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 32;
        cfg.validate_top = 6;
        cfg.horizon = SimDuration::from_secs(120);
        let o = run_dice(&mut live, cfg, FaultClass::PolicyConflict);
        table.row(vec![
            o.class.into(),
            o.detected.to_string(),
            o.executions.to_string(),
            o.distinct_paths.to_string(),
            o.validated_until_detection.to_string(),
            fmt_nanos(o.snapshot_nanos),
            o.wall_ms.to_string(),
        ]);
    }

    // Class 3: operator mistake (prefix hijack).
    {
        let mut live = scenarios::hijack_scenario(103);
        live.run_until(SimTime::from_nanos(10_000_000_000));
        // Registry is created while healthy; the mistake happens afterwards.
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 48;
        cfg.validate_top = 8;
        let mut runner = DiceRunner::from_sim(cfg, &live);
        scenarios::apply_hijack(&mut live);
        live.run_until(SimTime::from_nanos(25_000_000_000));
        let report = runner.run_round(&mut live).expect("round");
        let detected = report.classes().contains(&FaultClass::OperatorMistake);
        table.row(vec![
            "operator mistake".into(),
            detected.to_string(),
            report.executions.to_string(),
            report.distinct_paths.to_string(),
            report
                .detection_input_ordinal
                .get("operator-mistake")
                .copied()
                .unwrap_or(0)
                .to_string(),
            fmt_nanos(report.snapshot.sim_duration_nanos),
            report.wall_ms.to_string(),
        ]);
    }

    table.print();

    // Baseline: random mutation against the programming-error handler.
    let mut baseline = Table::new(
        "T1b — programming-error class: concolic vs random-mutation baseline",
        &["method", "executions", "crash found", "first crash at"],
    );
    {
        let live = scenarios::buggy_parser_scenario(104);
        let router_cfg = live
            .node(NodeId(1))
            .as_any()
            .downcast_ref::<dice_bgp::BgpRouter>()
            .unwrap()
            .config()
            .clone();
        let mut grammar = UpdateGrammar::new(GrammarConfig::for_peer(scenarios::asn_of(0)), 7);
        let seeds = vec![grammar.generate(), grammar.generate_large_unknown()];

        let mut handler = SymbolicUpdateHandler::new(router_cfg.clone(), NodeId(0));
        let concolic = dice_concolic::explore(
            &mut handler,
            &seeds,
            &mark_update,
            &dice_concolic::ExploreConfig {
                max_executions: 256,
                ..Default::default()
            },
        );
        baseline.row(vec![
            "concolic (generational)".into(),
            concolic.executions.len().to_string(),
            concolic.first_crash().is_some().to_string(),
            concolic
                .first_crash()
                .map(|i| format!("#{i}"))
                .unwrap_or_else(|| "-".into()),
        ]);

        let mut handler2 = SymbolicUpdateHandler::new(router_cfg, NodeId(0));
        let random = random_fuzz(&mut handler2, &seeds, &mark_update, 256, 4242);
        let crashed = random
            .executions
            .iter()
            .position(|e| matches!(e.status, RunStatus::Crash(_)));
        baseline.row(vec![
            "random mutation".into(),
            random.executions.len().to_string(),
            crashed.is_some().to_string(),
            crashed
                .map(|i| format!("#{i}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    baseline.print();

    maybe_write_json(&[&table, &baseline]);
}
