//! **F2 — Path-exploration efficiency** (paper §2: concolic execution
//! "systematically explores all possible paths at one node"; insight (iii)
//! grammar-based fuzzing).
//!
//! Coverage and distinct-path curves versus executed inputs for four input
//! generators over the *same* instrumented UPDATE handler:
//!
//! * concolic, generational search (DiCE's default)
//! * concolic, DFS negation
//! * grammar-only (valid-by-construction messages, no solver)
//! * random byte mutation
//!
//! Expected shape (as in the paper): concolic strictly dominates; grammar
//! plateaus on the valid-message region; random barely leaves the framing
//! checks.

use dice_bench::{maybe_write_json, Table};
use dice_concolic::{
    explore, random_fuzz, ConcolicCtx, ConcolicProgram, Coverage, ExploreConfig, RunStatus,
    Strategy, SymInput,
};
use dice_core::{mark_update, scenarios, GrammarConfig, SymbolicUpdateHandler, UpdateGrammar};
use dice_netsim::NodeId;

const BUDGET: usize = 256;
const CHECKPOINTS: [usize; 6] = [8, 32, 64, 128, 192, 256];

fn coverage_at(timeline: &[usize], at: usize) -> String {
    if timeline.is_empty() {
        return "0".into();
    }
    let idx = at.min(timeline.len()).saturating_sub(1);
    timeline[idx].to_string()
}

/// Grammar-only baseline: run N fresh grammar messages, no mutation, no
/// solver — measures how far validity alone reaches.
fn grammar_only(
    handler: &mut SymbolicUpdateHandler,
    grammar: &mut UpdateGrammar,
    budget: usize,
) -> (Vec<usize>, usize, Option<usize>) {
    let mut coverage = Coverage::default();
    let mut timeline = Vec::with_capacity(budget);
    let mut paths = std::collections::BTreeSet::new();
    let mut first_crash = None;
    for i in 0..budget {
        let bytes = grammar.generate();
        let mask = mark_update(&bytes);
        let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes, mask));
        let status = handler.run(&mut ctx);
        if first_crash.is_none() && matches!(status, RunStatus::Crash(_)) {
            first_crash = Some(i);
        }
        coverage.add_path(ctx.path());
        paths.insert(ctx.path_signature());
        timeline.push(coverage.len());
    }
    (timeline, paths.len(), first_crash)
}

fn main() {
    // The handler under test: the buggy-parser scenario's middle router
    // (a policy-bearing config with the seeded defect).
    let live = scenarios::buggy_parser_scenario(55);
    let router_cfg = live
        .node(NodeId(1))
        .as_any()
        .downcast_ref::<dice_bgp::BgpRouter>()
        .unwrap()
        .config()
        .clone();
    let peer = NodeId(0);
    let peer_asn = scenarios::asn_of(0);

    let seeds = {
        let mut g = UpdateGrammar::new(GrammarConfig::for_peer(peer_asn), 1);
        vec![g.generate(), g.generate_large_unknown()]
    };

    let mut table = Table::new(
        "F2 — branch coverage vs inputs executed (same handler, 4 generators)",
        &[
            "method",
            "cov@8",
            "cov@32",
            "cov@64",
            "cov@128",
            "cov@192",
            "cov@256",
            "distinct paths",
            "crash found at",
        ],
    );

    let mut runs: Vec<(String, Vec<usize>, usize, Option<usize>)> = Vec::new();

    for (name, strategy) in [
        ("concolic/generational", Strategy::Generational),
        ("concolic/dfs", Strategy::Dfs),
    ] {
        let mut handler = SymbolicUpdateHandler::new(router_cfg.clone(), peer);
        let report = explore(
            &mut handler,
            &seeds,
            &mark_update,
            &ExploreConfig {
                strategy,
                max_executions: BUDGET,
                ..Default::default()
            },
        );
        runs.push((
            name.to_string(),
            report.coverage_timeline.clone(),
            report.distinct_paths,
            report.first_crash(),
        ));
    }
    {
        let mut handler = SymbolicUpdateHandler::new(router_cfg.clone(), peer);
        let mut grammar = UpdateGrammar::new(GrammarConfig::for_peer(peer_asn), 2);
        let (timeline, paths, crash) = grammar_only(&mut handler, &mut grammar, BUDGET);
        runs.push(("grammar-only".into(), timeline, paths, crash));
    }
    {
        let mut handler = SymbolicUpdateHandler::new(router_cfg.clone(), peer);
        let report = random_fuzz(&mut handler, &seeds, &mark_update, BUDGET, 777);
        let crash = report
            .executions
            .iter()
            .position(|e| matches!(e.status, RunStatus::Crash(_)));
        runs.push((
            "random-mutation".into(),
            report.coverage_timeline.clone(),
            report.distinct_paths,
            crash,
        ));
    }

    for (name, timeline, paths, crash) in &runs {
        table.row(vec![
            name.clone(),
            coverage_at(timeline, CHECKPOINTS[0]),
            coverage_at(timeline, CHECKPOINTS[1]),
            coverage_at(timeline, CHECKPOINTS[2]),
            coverage_at(timeline, CHECKPOINTS[3]),
            coverage_at(timeline, CHECKPOINTS[4]),
            coverage_at(timeline, CHECKPOINTS[5]),
            paths.to_string(),
            crash.map(|i| format!("#{i}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    table.print();

    // Shape assertions (soft): report rank inversions loudly.
    let cov_final = |i: usize| runs[i].1.last().copied().unwrap_or(0);
    if !(cov_final(0) >= cov_final(2) && cov_final(2) >= cov_final(3)) {
        eprintln!(
            "WARNING: expected coverage order concolic >= grammar >= random, got {} / {} / {}",
            cov_final(0),
            cov_final(2),
            cov_final(3)
        );
    }

    maybe_write_json(&[&table]);
}
