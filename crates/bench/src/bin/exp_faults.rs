//! **N1 — nemesis campaign: detection under channel loss and dynamics.**
//!
//! The paper's online-testing claim has to hold on *unreliable* federations:
//! drops, duplicates and reordering on every link, composed with the
//! partition/churn dynamics schedule. This binary sweeps the per-link loss
//! rate over a [`scenarios::nemesis_federation`] — the mixed BGP + gossip
//! system with **both** seeded defect classes armed (the BGP
//! unknown-attribute length overflow on router 1 and the gossip
//! digest-count overflow on node 2) — and asserts that every loss point
//! still detects both bug classes, emitting the detection-latency-vs-loss
//! curve.
//!
//! Detection effort is measured in *validated inputs until first
//! detection* (cumulative across rounds in sweep order, plus the
//! detecting round's input ordinal) — a deterministic, wall-clock-free
//! latency metric. Acceptance: at 5% loss each bug class is found within
//! twice its lossless effort.
//!
//! Flags:
//!
//! * `--smoke` — the {0, 5%} points only, with a wall-clock ceiling (CI
//!   regression gate for the channel-fidelity path).
//! * `--json PATH` — archive the raw rows as JSON (`BENCH_faults.json`
//!   is the committed trajectory file).

use dice_bench::{fmt_nanos, maybe_write_json, summarize_campaign, Table};
use dice_core::{scenarios, Campaign, CampaignReport};
use dice_netsim::{LinkFaults, NodeId, ScheduleSpec, SimDuration, SimTime};

/// The seeded-defect needles this bench must find at every loss point.
const BGP_BUG: &str = "unknown-attribute length overflow";
const GOSSIP_BUG: &str = "digest count overflow";

fn parse_smoke() -> bool {
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                // Handled by maybe_write_json; skip its path argument.
                args.next();
            }
            other => panic!("unknown flag {other:?}; supported: --smoke, --json <path>"),
        }
    }
    smoke
}

/// The nemesis dynamics overlay: one partition window and one churn cycle
/// scattered over the campaign, with the two buggy nodes (and the BGP
/// edge) protected so the *target* of exploration never leaves the system.
fn nemesis_schedule() -> ScheduleSpec {
    ScheduleSpec {
        partitions: 1,
        partition_len: SimDuration::from_millis(50),
        churn: 1,
        churn_len: SimDuration::from_millis(50),
        start: SimDuration::ZERO,
        // Zero window: both legs fire before the first sweep, so every
        // loss point explores a federation that just partitioned and
        // churned (the campaign drives the live system only briefly).
        window: SimDuration::ZERO,
        protect_first: 3,
    }
}

/// Validated inputs spent until the first fault matching `needle`,
/// walking rounds in sweep order. `None` when the campaign missed it.
fn detection_effort(report: &CampaignReport, needle: &str) -> Option<usize> {
    let mut cum = 0usize;
    for r in &report.rounds {
        if let Some(f) = r.faults.iter().find(|f| f.detail.contains(needle)) {
            let ordinal = r
                .detection_input_ordinal
                .get(&f.class.to_string())
                .copied()
                .unwrap_or(r.validated);
            return Some(cum + ordinal);
        }
        cum += r.validated;
    }
    None
}

struct LossPoint {
    loss: f64,
    report: CampaignReport,
    bgp_effort: usize,
    gossip_effort: usize,
}

fn measure(loss: f64) -> LossPoint {
    let mut live = scenarios::nemesis_federation(29);
    live.run_until(SimTime::from_nanos(12_000_000_000));
    let mut campaign = Campaign::new(&live)
        .explorers([NodeId(1), NodeId(2)])
        .rounds(2)
        .executions(160)
        .validate_top(16)
        .horizon(SimDuration::from_secs(30))
        .workers(2)
        .pair_workers(2)
        .schedule(nemesis_schedule());
    if loss > 0.0 {
        campaign = campaign
            .unreliable_links(true)
            .link_faults(LinkFaults::lossy(loss));
    }
    let report = campaign.run(&mut live).expect("nemesis campaign runs");

    let bgp_effort = detection_effort(&report, BGP_BUG)
        .unwrap_or_else(|| panic!("BGP defect missed at loss {loss}: {:?}", report.faults));
    let gossip_effort = detection_effort(&report, GOSSIP_BUG)
        .unwrap_or_else(|| panic!("gossip defect missed at loss {loss}: {:?}", report.faults));

    assert!(
        report.perf.churn_events >= 1,
        "the nemesis overlay must fire at loss {loss}: {:?}",
        report.perf
    );

    let perturbed =
        report.perf.frames_dropped + report.perf.frames_duplicated + report.perf.frames_reordered;
    if loss > 0.0 {
        assert!(
            perturbed > 0,
            "lossy clones must meter channel faults at loss {loss}: {:?}",
            report.perf
        );
    } else {
        assert_eq!(
            perturbed, 0,
            "reliable campaign must not perturb any frame: {:?}",
            report.perf
        );
    }

    LossPoint {
        loss,
        report,
        bgp_effort,
        gossip_effort,
    }
}

fn main() {
    let smoke = parse_smoke();
    let sweep: &[f64] = if smoke {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.01, 0.05, 0.20]
    };

    // dice-lint: allow(determinism-zone): bench bin measures host wall time
    let wall = std::time::Instant::now();

    let mut t1 = Table::new(
        "N1 — detection latency vs link loss (nemesis federation, both seeded defects, \
         partition + churn overlay)",
        &[
            "loss",
            "bgp effort (validated inputs)",
            "gossip effort (validated inputs)",
            "dropped",
            "duplicated",
            "reordered",
            "faults",
            "sim time",
        ],
    );
    let mut t2 = Table::new(
        "N1b — per-point campaign detail",
        &["campaign", "metric", "value"],
    );

    let points: Vec<LossPoint> = sweep.iter().map(|&loss| measure(loss)).collect();
    for p in &points {
        t1.row(vec![
            format!("{:.0}%", p.loss * 100.0),
            p.bgp_effort.to_string(),
            p.gossip_effort.to_string(),
            p.report.perf.frames_dropped.to_string(),
            p.report.perf.frames_duplicated.to_string(),
            p.report.perf.frames_reordered.to_string(),
            p.report.faults.len().to_string(),
            fmt_nanos(p.report.sim_nanos),
        ]);
        summarize_campaign(&mut t2, &format!("loss-{:.0}%", p.loss * 100.0), &p.report);
    }
    t1.print();
    t2.print();

    // Acceptance: at 5% loss both bug classes are found within twice the
    // lossless detection effort — loss perturbs the surrounding dynamics
    // but the retry/timeout machinery keeps exploration on budget.
    let lossless = &points[0];
    let at_5 = points
        .iter()
        .find(|p| (p.loss - 0.05).abs() < 1e-9)
        .expect("sweep includes the 5% point");
    assert!(
        at_5.bgp_effort <= 2 * lossless.bgp_effort,
        "BGP detection effort at 5% loss ({}) exceeds 2x lossless ({})",
        at_5.bgp_effort,
        lossless.bgp_effort
    );
    assert!(
        at_5.gossip_effort <= 2 * lossless.gossip_effort,
        "gossip detection effort at 5% loss ({}) exceeds 2x lossless ({})",
        at_5.gossip_effort,
        lossless.gossip_effort
    );

    let wall_s = wall.elapsed().as_secs_f64();
    let mut t3 = Table::new("N1c — harness", &["metric", "value"]);
    t3.row(vec![
        "sweep".into(),
        sweep
            .iter()
            .map(|l| format!("{:.0}%", l * 100.0))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    t3.row(vec![
        "sim time (all points)".into(),
        fmt_nanos(points.iter().map(|p| p.report.sim_nanos).sum()),
    ]);
    t3.row(vec!["total wall".into(), format!("{wall_s:.1}s")]);
    t3.print();

    // CI regression gate: the two-point smoke must stay well inside a
    // CI-minute.
    if smoke {
        assert!(
            wall_s < 120.0,
            "nemesis smoke took {wall_s:.1}s, over the 120s ceiling"
        );
    }

    maybe_write_json(&[&t1, &t2, &t3]);
}
