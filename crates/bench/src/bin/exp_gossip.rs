//! **G1 — gossip and mixed-protocol campaigns**: the second real workload
//! behind the SUT seam, proving the runtime tests *heterogeneous*
//! federations end to end.
//!
//! Campaigns:
//!
//! 1. **G1a** — a healthy gossip mesh: rounds/s, coverage union and
//!    per-explorer coverage for a federation that shares no code with BGP.
//! 2. **G1b** — detection latency for the seeded digest-count defect on a
//!    buggy gossip mesh (the gossip analogue of C1c's parser bug).
//! 3. **G1c** — the mixed BGP+gossip federation: one campaign, one
//!    snapshot protocol, two wire formats — the per-kind table shows both
//!    workloads swept in a single run.
//!
//! Flags:
//!
//! * `--smoke` — tiny budgets for CI (smaller mesh, fewer executions;
//!   G1b's exploration budget stays at full size — below ~64 executions
//!   the concolic search does not reach the seeded digest bug).
//! * `--repeat N` — rerun the G1a campaign `N` times on fresh identical
//!   meshes and append a `rounds/s min/median/max of N` row to its table.
//! * `--json PATH` — archive the raw rows as JSON (CI uploads this as the
//!   `BENCH_gossip` artifact; `BENCH_gossip.json` is the committed
//!   trajectory file).

use dice_bench::{
    detection_rows, maybe_write_json, parse_repeat, spread_rows, summarize_campaign, Table,
};
use dice_core::{scenarios, Campaign, CampaignReport, FaultClass};
use dice_netsim::{SimDuration, SimTime, Simulator};

fn parse_smoke() -> bool {
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json" | "--repeat" => {
                // Handled by maybe_write_json / parse_repeat; skip the
                // value argument.
                args.next();
            }
            other => {
                panic!("unknown flag {other:?}; supported: --smoke, --repeat <n>, --json <path>")
            }
        }
    }
    smoke
}

fn quiesce(sim: &mut Simulator) {
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(120_000_000_000),
    );
}

fn kind_rows(table: &mut Table, label: &str, report: &CampaignReport) {
    for k in &report.per_kind {
        table.row(vec![
            label.into(),
            k.kind.clone(),
            k.rounds.to_string(),
            k.coverage.to_string(),
            k.executions.to_string(),
            k.faults.to_string(),
            format!("{:.1}ms", k.wall_us as f64 / 1e3),
        ]);
    }
}

fn main() {
    let smoke = parse_smoke();
    let mesh_size = if smoke { 4 } else { 6 };
    let executions = if smoke { 24 } else { 64 };
    let validate_top = if smoke { 4 } else { 8 };

    // G1a: continuous-testing cost on a healthy gossip mesh. `--repeat N`
    // reruns it on fresh identical meshes; the median damps scheduler
    // noise (gossip reruns historically swing ±20% on the CI box).
    let run_mesh = || {
        let mut mesh = scenarios::gossip_mesh(mesh_size, 19);
        quiesce(&mut mesh);
        Campaign::new(&mesh)
            .executions(executions)
            .validate_top(validate_top)
            .horizon(SimDuration::from_secs(30))
            .workers(2)
            .pair_workers(2)
            .run(&mut mesh)
            .expect("gossip mesh campaign runs")
    };
    let repeat = parse_repeat();
    let healthy = run_mesh();
    let mut samples = vec![healthy.rounds_per_sec()];
    for _ in 1..repeat {
        samples.push(run_mesh().rounds_per_sec());
    }

    let mut t1 = Table::new(
        &format!("G1a — campaign over a healthy {mesh_size}-node gossip mesh"),
        &["campaign", "metric", "value"],
    );
    summarize_campaign(&mut t1, "gossip-mesh", &healthy);
    spread_rows(&mut t1, "gossip-mesh", &samples);
    t1.print();
    assert!(
        healthy.faults.is_empty(),
        "healthy mesh must stay clean: {:?}",
        healthy.faults
    );

    // G1b: detection latency for the seeded digest-count defect. The
    // exploration budget stays at full size even under --smoke: the
    // 10-seed corpus needs ~64 executions before generational search
    // crosses from the rumor arm into the buggy digest arm.
    let mut buggy = scenarios::buggy_gossip_scenario(if smoke { 3 } else { 4 }, 23);
    quiesce(&mut buggy);
    let faulty = Campaign::new(&buggy)
        .executions(128)
        .validate_top(8)
        .horizon(SimDuration::from_secs(30))
        .workers(2)
        .pair_workers(2)
        .run(&mut buggy)
        .expect("buggy gossip campaign runs");

    let mut t2 = Table::new(
        "G1b — gossip detection latency (seeded digest-count defect)",
        &["campaign", "metric", "value"],
    );
    summarize_campaign(&mut t2, "buggy-gossip", &faulty);
    detection_rows(&mut t2, "buggy-gossip", &faulty);
    t2.print();
    assert!(
        faulty.classes().contains(&FaultClass::ProgrammingError),
        "seeded gossip bug must be detected: {:?}",
        faulty.faults
    );

    // G1c: one campaign over the mixed BGP+gossip federation — both wire
    // formats explored for real in a single sweep.
    let mut mixed = scenarios::mixed_bgp_gossip(29, false);
    quiesce(&mut mixed);
    let mixed_report = Campaign::new(&mixed)
        .executions(executions)
        .validate_top(validate_top)
        .horizon(SimDuration::from_secs(30))
        .workers(2)
        .pair_workers(2)
        .run(&mut mixed)
        .expect("mixed campaign runs");

    let mut t3 = Table::new(
        "G1c — mixed BGP+gossip federation, per-protocol workload",
        &[
            "campaign",
            "kind",
            "rounds",
            "coverage",
            "executions",
            "faults",
            "wall",
        ],
    );
    kind_rows(&mut t3, "mixed", &mixed_report);
    t3.print();
    assert_eq!(
        mixed_report.per_kind.len(),
        2,
        "both protocol kinds must be swept: {:?}",
        mixed_report.per_kind
    );

    maybe_write_json(&[&t1, &t2, &t3]);
}
