//! **T2 — Checkpoint and snapshot overhead** (paper §2/§3: "lightweight
//! node checkpoints", "low overhead").
//!
//! Three sweeps:
//! 1. checkpoint size & clone time vs Loc-RIB size (single node);
//! 2. consistent-snapshot latency (simulated & wall) vs node count;
//! 3. clone-instantiation + validation throughput.

use dice_bench::{fmt_nanos, maybe_write_json, Table};
use dice_bgp::{BgpRouter, RouterConfig, RouterId};
use dice_core::scenarios;
use dice_core::snapshot::{take_consistent_snapshot, take_instant_snapshot};
use dice_netsim::{Node, NodeId, SimDuration, SimTime, Simulator, Topology};

/// A router with `routes` originated prefixes (to inflate the RIB).
fn fat_router(routes: u32) -> BgpRouter {
    let mut cfg = RouterConfig::minimal(dice_bgp::Asn(65001), RouterId(1));
    for i in 0..routes {
        cfg = cfg.with_network(dice_bgp::Ipv4Net::new(0x0A00_0000 | (i << 8), 24));
    }
    BgpRouter::new(cfg)
}

fn main() {
    // Sweep 1: checkpoint cost vs RIB size.
    let mut t1 = Table::new(
        "T2a — node checkpoint cost vs RIB size",
        &["routes", "state bytes", "clone time (avg of 100)"],
    );
    for routes in [10u32, 100, 500, 1000, 4000] {
        let mut sim = Simulator::new(Topology::with_nodes(1), 1);
        sim.set_node(NodeId(0), Box::new(fat_router(routes)));
        sim.start();
        sim.run_until(SimTime::from_nanos(1_000_000));
        let node = sim.node(NodeId(0));
        let bytes = node.state_size();
        // dice-lint: allow(determinism-zone): benchmark binary reports wall time by design
        let start = std::time::Instant::now();
        let mut clones: Vec<Box<dyn Node>> = Vec::with_capacity(100);
        for _ in 0..100 {
            clones.push(node.clone_node());
        }
        let avg = start.elapsed().as_nanos() as u64 / 100;
        drop(clones);
        t1.row(vec![routes.to_string(), bytes.to_string(), fmt_nanos(avg)]);
    }
    t1.print();

    // Sweep 2: consistent snapshot latency vs node count.
    let mut t2 = Table::new(
        "T2b — consistent snapshot latency vs system size",
        &[
            "nodes",
            "topology",
            "sim latency",
            "wall (us)",
            "in-flight msgs",
            "bytes",
        ],
    );
    let line_sizes = [5usize, 10, 20, 40];
    for &n in &line_sizes {
        let mut sim = scenarios::healthy_line(n, 42);
        sim.run_until(SimTime::from_nanos(30_000_000_000));
        let (shadow, m) = take_consistent_snapshot(&mut sim, NodeId(0), SimDuration::from_secs(30))
            .expect("snapshot");
        t2.row(vec![
            n.to_string(),
            "line".into(),
            fmt_nanos(m.sim_duration_nanos),
            m.wall_micros.to_string(),
            m.in_flight.to_string(),
            shadow.approx_bytes().to_string(),
        ]);
    }
    {
        let mut sim = scenarios::demo27_system(42);
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(300_000_000_000),
        );
        let (shadow, m) = take_consistent_snapshot(&mut sim, NodeId(5), SimDuration::from_secs(30))
            .expect("snapshot");
        t2.row(vec![
            "27".into(),
            "demo27 (Internet-like)".into(),
            fmt_nanos(m.sim_duration_nanos),
            m.wall_micros.to_string(),
            m.in_flight.to_string(),
            shadow.approx_bytes().to_string(),
        ]);
    }
    t2.print();

    // Sweep 3: clone + validate throughput (the per-input cost of phase 3).
    let mut t3 = Table::new(
        "T2c — per-input validation cost (clone + inject + run + check)",
        &["system", "clones", "total wall (ms)", "per-clone (ms)"],
    );
    for (name, mut sim) in [
        ("line-5", scenarios::healthy_line(5, 9)),
        ("demo27", scenarios::demo27_system(9)),
    ] {
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(300_000_000_000),
        );
        let (shadow, _) = take_instant_snapshot(&mut sim);
        let topo = sim.topology().clone();
        let n_clones = 32;
        // dice-lint: allow(determinism-zone): benchmark binary reports wall time by design
        let start = std::time::Instant::now();
        for i in 0..n_clones {
            let mut clone = Simulator::from_shadow(&shadow, &topo, i);
            let end = shadow.base_time() + SimDuration::from_secs(30);
            clone.run_until_quiet(SimDuration::from_secs(2), end);
        }
        let total = start.elapsed().as_millis() as u64;
        t3.row(vec![
            name.into(),
            n_clones.to_string(),
            total.to_string(),
            format!("{:.2}", total as f64 / n_clones as f64),
        ]);
    }
    t3.print();

    // Sweep 4: instant (uncoordinated) snapshot for scale comparison.
    let mut t4 = Table::new(
        "T2d — consistent (Chandy–Lamport) vs instant snapshot wall cost",
        &["system", "CL wall (us)", "instant wall (us)"],
    );
    for (name, mut sim) in [
        ("line-10", scenarios::healthy_line(10, 5)),
        ("demo27", scenarios::demo27_system(5)),
    ] {
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(300_000_000_000),
        );
        let (_, cl) = take_consistent_snapshot(&mut sim, NodeId(0), SimDuration::from_secs(30))
            .expect("snapshot");
        let (_, inst) = take_instant_snapshot(&mut sim);
        t4.row(vec![
            name.into(),
            cl.wall_micros.to_string(),
            inst.wall_micros.to_string(),
        ]);
    }
    t4.print();

    maybe_write_json(&[&t1, &t2, &t3, &t4]);
}
