//! **A1 — Ablation: consistent vs uncoordinated snapshots** (DESIGN.md §6.3).
//!
//! What does the Chandy–Lamport protocol buy? We snapshot a system
//! *mid-convergence* (update waves in flight) two ways:
//!
//! * **consistent** — the in-band CL protocol, capturing channel state;
//! * **uncoordinated** — each node checkpointed at a *different* virtual
//!   time (as naive per-node checkpointing would), dropping channel state.
//!
//! The metric is **causal-consistency violations**: for every session
//! `a — b`, compare what `a`'s Adj-RIB-Out says it sent toward `b` with
//! what `b`'s Adj-RIB-In says it received from `a`. In a consistent
//! snapshot every discrepancy is explained by a message captured as channel
//! state; in an uncoordinated snapshot, nodes are checkpointed at causally
//! incomparable instants, producing discrepancies no execution of the
//! system could exhibit — exactly the false-positive source DiCE's
//! checkers must not be exposed to.

use dice_bench::{maybe_write_json, Table};
use dice_bgp::BgpRouter;
use dice_core::scenarios;
use dice_core::snapshot::take_consistent_snapshot;
use dice_netsim::{NodeId, ShadowSnapshot, SimDuration, SimTime, Simulator};
use std::collections::BTreeMap;

/// Count adjacency discrepancies not explained by captured channel state.
fn causal_violations(shadow: &ShadowSnapshot, topo: &dice_netsim::Topology) -> usize {
    // Channel payload counts per directed pair.
    let mut channel_msgs: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for (src, dst, msgs) in shadow.in_flight() {
        *channel_msgs.entry((src.0, dst.0)).or_insert(0) += msgs.len();
    }
    let mut violations = 0usize;
    for e in topo.edges() {
        for (a, b) in [(e.a, e.b), (e.b, e.a)] {
            let (Some(na), Some(nb)) = (shadow.nodes().get(&a), shadow.nodes().get(&b)) else {
                continue;
            };
            let (Some(ra), Some(rb)) = (
                na.as_any().downcast_ref::<BgpRouter>(),
                nb.as_any().downcast_ref::<BgpRouter>(),
            ) else {
                continue;
            };
            // Prefixes a claims to have advertised to b but b has not
            // received (accept-all policies ⇒ attrs pass through).
            let mut missing = 0usize;
            for prefix in ra.loc_rib().iter().map(|(p, _)| *p) {
                let sent = ra.adj_rib_out().sent(b, &prefix).is_some();
                let got = rb.adj_rib_in().get(a, &prefix).is_some();
                if sent && !got {
                    missing += 1;
                }
            }
            let explained = channel_msgs.get(&(a.0, b.0)).copied().unwrap_or(0);
            violations += missing.saturating_sub(explained);
        }
    }
    violations
}

/// Uncoordinated snapshot: checkpoint each node at a different moment,
/// advancing the live system between checkpoints; drop channel state.
/// Nodes are visited in interleaved order (evens, then odds) — naive
/// per-node checkpointing guarantees no particular order, and adjacent
/// nodes end up checkpointed far apart in time, which is the point.
fn skewed_snapshot(sim: &mut Simulator, skew: SimDuration) -> ShadowSnapshot {
    let mut nodes = BTreeMap::new();
    let base = sim.now();
    let all: Vec<NodeId> = sim.topology().node_ids().collect();
    let ids: Vec<NodeId> = all
        .iter()
        .copied()
        .filter(|n| n.0 % 2 == 0)
        .chain(all.iter().copied().filter(|n| n.0 % 2 == 1))
        .collect();
    let sessions: Vec<(NodeId, NodeId)> = sim
        .topology()
        .edges()
        .iter()
        .filter(|e| sim.session_up(e.a, e.b))
        .map(|e| (e.a, e.b))
        .collect();
    for id in ids {
        nodes.insert(id, sim.node(id).clone_node());
        let next = sim.now() + skew;
        sim.run_until(next);
    }
    ShadowSnapshot::from_parts(base, nodes, Vec::new(), sessions)
}

/// A ring of accept-all routers (a cyclic topology is what makes channel
/// state non-trivial: markers and data race around the cycle).
fn ring_system(n: usize, seed: u64) -> Simulator {
    use dice_bgp::{BgpRouter as R, RouterConfig, RouterId};
    use dice_netsim::{LinkParams, Topology};
    let topo = Topology::ring(n, LinkParams::fixed(SimDuration::from_millis(8)));
    let mut sim = Simulator::new(topo.clone(), seed);
    for id in topo.node_ids() {
        let mut cfg = RouterConfig::minimal(scenarios::asn_of(id.0), RouterId(id.0 + 1))
            .with_network(scenarios::prefix_of(id.0));
        for m in topo.neighbors(id) {
            cfg = cfg.with_neighbor(m, scenarios::asn_of(m.0), "all", "all");
        }
        sim.set_node(id, Box::new(R::new(cfg)));
    }
    sim.start();
    sim
}

/// Converge the ring, then kick off a fresh announcement wave from node 0
/// and stop mid-wave, `lead` after the kick.
fn mid_wave_system(seed: u64, lead: SimDuration) -> Simulator {
    let mut sim = ring_system(8, seed);
    sim.run_until_quiet(
        SimDuration::from_secs(2),
        SimTime::from_nanos(120_000_000_000),
    );
    let kick = sim.now();
    sim.invoke_node(NodeId(0), |node, api| {
        let r = node.as_any_mut().downcast_mut::<BgpRouter>().unwrap();
        r.announce_network(dice_bgp::net("203.0.113.0/24"), true, api);
    });
    sim.run_until(kick + lead);
    sim
}

fn main() {
    let mut table = Table::new(
        "A1 — causal violations: consistent vs uncoordinated snapshots mid-wave (8-ring)",
        &[
            "trial",
            "wave lead",
            "in-flight (CL)",
            "CL violations",
            "uncoordinated violations",
        ],
    );

    let mut cl_total = 0usize;
    let mut skew_total = 0usize;
    let mut inflight_total = 0usize;
    let mut trials = 0usize;
    for trial in 0..8u64 {
        // Snapshot while the announcement wave is part-way around the ring.
        let lead = SimDuration::from_millis(2 + trial * 4);
        let mut live = mid_wave_system(300 + trial, lead);
        let Ok((cl_shadow, m)) =
            take_consistent_snapshot(&mut live, NodeId(0), SimDuration::from_secs(30))
        else {
            continue;
        };

        let mut live2 = mid_wave_system(300 + trial, lead);
        let skew_shadow = skewed_snapshot(&mut live2, SimDuration::from_millis(3));

        let topo = live.topology().clone();
        let cl_v = causal_violations(&cl_shadow, &topo);
        let skew_v = causal_violations(&skew_shadow, &topo);
        cl_total += cl_v;
        skew_total += skew_v;
        inflight_total += m.in_flight;
        trials += 1;
        table.row(vec![
            trial.to_string(),
            format!("{lead}"),
            m.in_flight.to_string(),
            cl_v.to_string(),
            skew_v.to_string(),
        ]);
    }
    table.row(vec![
        "TOTAL".into(),
        format!("{trials} trials"),
        inflight_total.to_string(),
        cl_total.to_string(),
        skew_total.to_string(),
    ]);
    table.print();

    assert_eq!(
        cl_total, 0,
        "consistent snapshots must have zero causal violations"
    );
    if skew_total == 0 {
        eprintln!("WARNING: expected uncoordinated snapshots to show causal violations");
    }
    maybe_write_json(&[&table]);
}
