//! **T1 — topology-size scale curves**: campaign throughput and snapshot
//! cost on internet-like topologies from 100 to 5000 nodes — the scale
//! the delta-snapshot refactor unlocks.
//!
//! For each size `n` the binary generates a seeded [`Topology::
//! internet_like`] graph (tier-1 clique, preferential-attachment
//! provider edges, lateral peering thinned as `8/n` so degree stays
//! constant-ish across sizes), builds the full Gao–Rexford BGP system
//! with a bounded originator set (4 prefixes — `n` originators would mean
//! `n²` RIB entries and convergence that dwarfs the campaign being
//! measured), converges it, and runs the same small campaign twice:
//!
//! * **delta on** (the default): phase-1 checkpoints re-capture only the
//!   nodes dirtied since the previous Chandy–Lamport cut; untouched
//!   slots share their `Arc` with the prior shadow. The binary asserts
//!   the steady-state recapture rate stays ≪ `n` — the acceptance
//!   criterion for delta snapshots at scale.
//! * **delta off**: every cut re-captures all `n` nodes, giving the
//!   monolithic snapshot-bytes baseline the curve is measured against.
//!
//! Flags:
//!
//! * `--smoke` — the 1k-node point only, with a wall-clock ceiling (CI
//!   regression gate for the scale path).
//! * `--json PATH` — archive the raw rows as JSON (`BENCH_topology.json`
//!   is the committed trajectory file).

use dice_bench::{fmt_nanos, maybe_write_json, summarize_campaign, Table};
use dice_core::{scenarios, Campaign, CampaignReport};
use dice_netsim::{InternetParams, NodeId, SimDuration, SimRng, SimTime, Simulator, Topology};

/// Prefixes originated regardless of topology size (see module docs).
const ORIGINATORS: usize = 4;

fn parse_smoke() -> bool {
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                // Handled by maybe_write_json; skip its path argument.
                args.next();
            }
            other => panic!("unknown flag {other:?}; supported: --smoke, --json <path>"),
        }
    }
    smoke
}

/// A seeded internet-like topology with the lateral peering probability
/// scaled down as `8/n`, keeping expected peer degree roughly constant so
/// the curve measures size, not densification.
fn internet(n: usize) -> Topology {
    let params = InternetParams {
        peering_prob: (8.0 / n as f64).min(0.15),
        ..InternetParams::default()
    };
    let mut rng = SimRng::seed_from_u64(0xD1CE_0000 + n as u64);
    Topology::internet_like(n, &params, &mut rng)
}

struct SizePoint {
    n: usize,
    edges: usize,
    build_ms: f64,
    converge_ms: f64,
    delta: CampaignReport,
    full: CampaignReport,
}

fn campaign(live: &mut Simulator, delta: bool) -> CampaignReport {
    Campaign::new(live)
        .explorers([NodeId(0)])
        .max_peers_per_explorer(2)
        .rounds(3)
        .executions(16)
        .validate_top(4)
        .horizon(SimDuration::from_secs(30))
        .workers(2)
        .pair_workers(2)
        .delta_snapshots(delta)
        .run(live)
        .expect("topology campaign runs")
}

fn measure(n: usize) -> SizePoint {
    // dice-lint: allow(determinism-zone): bench bin measures host wall time
    let t0 = std::time::Instant::now();
    let topo = internet(n);
    let edges = topo.edges().len();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // dice-lint: allow(determinism-zone): bench bin measures host wall time
    let t1 = std::time::Instant::now();
    let mut live = scenarios::build_system_with_originators(&topo, ORIGINATORS, 17);
    live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(600_000_000_000),
    );
    let converge_ms = t1.elapsed().as_secs_f64() * 1e3;

    // Delta first (the production default), then the monolithic baseline
    // on the same — still quiescent — live system.
    let delta = campaign(&mut live, true);
    let full = campaign(&mut live, false);

    // Acceptance: with one explorer and `rounds(3)` the campaign takes 3
    // cuts; the first captures all `n` nodes cold, so the steady-state
    // recapture rate is what the remaining cuts averaged. "≪ n" here
    // means under n/8 per cut — on a quiescent federation the real
    // number is near zero (only nodes touched by snapshot bookkeeping).
    let cuts = 3u64;
    let total = delta.perf.nodes_recaptured;
    assert!(
        total >= n as u64,
        "first cut must capture the whole {n}-node system, got {total}"
    );
    let steady = (total - n as u64) / (cuts - 1);
    assert!(
        steady * 8 < n as u64,
        "steady-state recapture {steady}/cut is not ≪ {n} nodes"
    );
    // The baseline, by contrast, pays the full system on every cut.
    assert_eq!(
        full.perf.nodes_recaptured,
        cuts * n as u64,
        "delta-off must recapture everything each cut"
    );

    SizePoint {
        n,
        edges,
        build_ms,
        converge_ms,
        delta,
        full,
    }
}

fn main() {
    let smoke = parse_smoke();
    let sizes: &[usize] = if smoke { &[1000] } else { &[100, 1000, 5000] };

    // dice-lint: allow(determinism-zone): bench bin measures host wall time
    let wall = std::time::Instant::now();

    let mut t1 = Table::new(
        "T1 — scale curves on internet-like topologies (3 cuts, 4 originated prefixes)",
        &[
            "nodes",
            "edges",
            "build",
            "converge",
            "rounds/s",
            "full snapshot bytes",
            "delta bytes",
            "recaptured (total of 3 cuts)",
        ],
    );
    let mut t2 = Table::new(
        "T1b — per-size campaign detail (delta snapshots on)",
        &["campaign", "metric", "value"],
    );

    let points: Vec<SizePoint> = sizes.iter().map(|&n| measure(n)).collect();
    for p in &points {
        t1.row(vec![
            p.n.to_string(),
            p.edges.to_string(),
            format!("{:.1}ms", p.build_ms),
            format!("{:.1}ms", p.converge_ms),
            format!("{:.2}", p.delta.rounds_per_sec()),
            p.full.perf.snapshot_bytes.to_string(),
            p.delta.perf.snapshot_delta_bytes.to_string(),
            p.delta.perf.nodes_recaptured.to_string(),
        ]);
        summarize_campaign(&mut t2, &format!("internet-{}", p.n), &p.delta);
        assert!(
            p.delta.faults.is_empty(),
            "healthy internet-{} campaign must stay clean: {:?}",
            p.n,
            p.delta.faults
        );
    }
    t1.print();
    t2.print();

    let wall_s = wall.elapsed().as_secs_f64();
    let mut t3 = Table::new("T1c — harness", &["metric", "value"]);
    t3.row(vec!["sizes".into(), format!("{sizes:?}")]);
    t3.row(vec![
        "sim time (delta runs)".into(),
        fmt_nanos(points.iter().map(|p| p.delta.sim_nanos).sum()),
    ]);
    t3.row(vec!["total wall".into(), format!("{wall_s:.1}s")]);
    t3.print();

    // CI regression gate: the 1k-node smoke must stay comfortably inside
    // a CI-minute — delta capture is what keeps it there.
    if smoke {
        assert!(
            wall_s < 120.0,
            "1k-node smoke took {wall_s:.1}s, over the 120s ceiling"
        );
    }

    maybe_write_json(&[&t1, &t2, &t3]);
}
