//! **W1 — zero-copy wire path**: heap allocations per encoded datagram,
//! pooled vs fresh, plus the end-to-end knob ablation.
//!
//! Two tables:
//!
//! * **W1a** — allocation counts measured by a counting global allocator:
//!   for each wire workload (transit-grade BGP UPDATE, 32-entry gossip
//!   digest, 64-byte rumor), the fresh path (`encode`, one new `Vec` per
//!   datagram) against the steady-state pooled path (`BufPool::acquire` →
//!   `encode_into` → recycle). The pooled steady state must allocate at
//!   least 2x less per datagram — the headline claim of the zero-copy PR.
//! * **W1b** — the same machinery end-to-end: an identical campaign run
//!   with the wire pool and batched delivery toggled, reporting the new
//!   perf counters and checking the normalized reports stay
//!   byte-identical (the knobs are pure allocation/scheduling wins).
//!
//! Flags: `--smoke` (smaller budgets for CI), `--json PATH` (archive rows,
//! committed as `BENCH_wire.json`).

use dice_bench::wire_workload::{bgp_update, gossip_digest, gossip_rumor};
use dice_bench::{maybe_write_json, Table};
use dice_core::{scenarios, Campaign, CampaignReport};
use dice_netsim::{BufPool, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation (and reallocation — a grown `Vec` costs
/// a new block) passing through the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` `iters` times (after one untimed warmup call) and return the
/// mean `(allocations, allocated bytes)` per call.
fn measure(iters: u64, mut f: impl FnMut()) -> (f64, f64) {
    f(); // warmup: first pooled acquire is allowed its miss
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    for _ in 0..iters {
        f();
    }
    let da = ALLOCS.load(Ordering::Relaxed) - a0;
    let db = ALLOC_BYTES.load(Ordering::Relaxed) - b0;
    (da as f64 / iters as f64, db as f64 / iters as f64)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: u64 = if smoke { 2_000 } else { 20_000 };

    // W1a: allocations per encoded datagram.
    let mut t1 = Table::new(
        "W1a — heap allocations per encoded datagram (fresh vs pooled)",
        &[
            "workload",
            "variant",
            "allocs/datagram",
            "alloc bytes/datagram",
            "ratio",
        ],
    );
    let bgp = bgp_update();
    let digest = gossip_digest();
    let rumor = gossip_rumor();
    let pool = BufPool::new();

    let mut run_pair = |name: &str, fresh: &mut dyn FnMut(), pooled: &mut dyn FnMut()| {
        let (fa, fb) = measure(iters, &mut *fresh);
        let (pa, pb) = measure(iters, &mut *pooled);
        let ratio = if pa > 0.0 {
            format!("{:.1}x fewer", fa / pa)
        } else {
            format!("{fa:.2} -> 0 (allocation-free)")
        };
        t1.row(vec![
            name.into(),
            "fresh encode".into(),
            format!("{fa:.2}"),
            format!("{fb:.1}"),
            String::new(),
        ]);
        t1.row(vec![
            name.into(),
            "pooled encode_into".into(),
            format!("{pa:.2}"),
            format!("{pb:.1}"),
            ratio,
        ]);
    };

    run_pair(
        "bgp update",
        &mut || {
            std::hint::black_box(dice_bgp::wire::encode(&bgp));
        },
        &mut || {
            let mut buf = pool.acquire();
            dice_bgp::wire::encode_into(&bgp, buf.as_mut_vec());
            std::hint::black_box(buf.len());
            pool.recycle(buf.into());
        },
    );
    run_pair(
        "gossip digest",
        &mut || {
            std::hint::black_box(dice_gossip::wire::encode(&digest));
        },
        &mut || {
            let mut buf = pool.acquire();
            dice_gossip::wire::encode_into(&digest, buf.as_mut_vec());
            std::hint::black_box(buf.len());
            pool.recycle(buf.into());
        },
    );
    run_pair(
        "gossip rumor",
        &mut || {
            std::hint::black_box(dice_gossip::wire::encode(&rumor));
        },
        &mut || {
            let mut buf = pool.acquire();
            dice_gossip::wire::encode_into(&rumor, buf.as_mut_vec());
            std::hint::black_box(buf.len());
            pool.recycle(buf.into());
        },
    );
    t1.print();

    // W1b: the knobs end-to-end on an identical campaign.
    let executions = if smoke { 24 } else { 48 };
    let validate_top = if smoke { 4 } else { 6 };
    let run = |wire_pool: bool, batch: bool| -> CampaignReport {
        let mut sim = scenarios::healthy_line(3, 5);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        Campaign::new(&sim)
            .executions(executions)
            .validate_top(validate_top)
            .wire_pool(wire_pool)
            .batch_delivery(batch)
            .run(&mut sim)
            .expect("campaign runs")
    };
    let base = run(true, true);
    let base_normalized = serde_json::to_string(&base.normalized()).expect("serializable");
    let mut t2 = Table::new(
        "W1b — wire knobs end-to-end (identical campaign, byte-identity check)",
        &[
            "variant",
            "wire bytes",
            "buf pool",
            "batches (max)",
            "report identical",
        ],
    );
    for (name, wire_pool, batch) in [
        ("pool on, batch on (default)", true, true),
        ("pool off, batch on", false, true),
        ("pool on, batch off", true, false),
        ("pool off, batch off", false, false),
    ] {
        let report = if wire_pool && batch {
            base.clone()
        } else {
            run(wire_pool, batch)
        };
        let normalized = serde_json::to_string(&report.normalized()).expect("serializable");
        let perf = &report.perf;
        t2.row(vec![
            name.into(),
            perf.wire_bytes.to_string(),
            format!("{} hits / {} misses", perf.buf_hits, perf.buf_misses),
            format!(
                "{} ({} frames)",
                perf.delivered_batches, perf.max_batch_occupancy
            ),
            if normalized == base_normalized {
                "yes".into()
            } else {
                "NO — DETERMINISM VIOLATION".into()
            },
        ]);
    }
    t2.print();

    maybe_write_json(&[&t1, &t2]);
}
