//! **F3 — One DiCE round, phase by phase** (paper Figure 2: choose explorer
//! → establish consistent shadow snapshot → explore inputs over cloned
//! snapshots → check).
//!
//! Prints the timeline of a single round against the 27-router demo with
//! wall and simulated timestamps per phase.

use dice_bench::{fmt_nanos, maybe_write_json, Table};
use dice_concolic::{explore, ExploreConfig};
use dice_core::snapshot::take_consistent_snapshot;
use dice_core::{
    check::{default_checkers, flips_baseline, run_checkers, CheckContext},
    scenarios, SutCatalog,
};
use dice_netsim::{NodeId, SimDuration, SimTime, Simulator};

fn main() {
    let mut table = Table::new(
        "F3 — phase timeline of one DiCE round (27-router demo)",
        &["phase", "wall (ms)", "simulated time", "notes"],
    );
    // dice-lint: allow(determinism-zone): benchmark binary reports wall time by design
    let wall0 = std::time::Instant::now();

    // Phase 0: the deployed system.
    let mut live = scenarios::demo27_system(3);
    live.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::from_nanos(300_000_000_000),
    );
    table.row(vec![
        "0 deployed system converged".into(),
        wall0.elapsed().as_millis().to_string(),
        live.now().to_string(),
        "27 routers, Gao-Rexford policies".into(),
    ]);

    // Phase 1: consistent snapshot from the explorer.
    let explorer = NodeId(5);
    let peer = NodeId(2);
    let (shadow, metrics) =
        take_consistent_snapshot(&mut live, explorer, SimDuration::from_secs(30)).unwrap();
    table.row(vec![
        "1 shadow snapshot established".into(),
        wall0.elapsed().as_millis().to_string(),
        live.now().to_string(),
        format!(
            "{} checkpoints, {} in-flight msgs, CL took {}",
            metrics.nodes,
            metrics.in_flight,
            fmt_nanos(metrics.sim_duration_nanos)
        ),
    ]);

    // Phase 2: concolic exploration at the explorer node, through the
    // protocol-agnostic SUT seam.
    let catalog = SutCatalog::default();
    let sut = catalog
        .resolve(shadow.nodes()[&explorer].as_ref())
        .expect("explorer is explorable");
    let plan = sut.exploration_plan(peer, 1, 8).unwrap();
    let mut program = plan.program;
    let exploration = explore(
        &mut *program,
        &plan.seeds,
        &plan.marker,
        &ExploreConfig {
            max_executions: 96,
            ..Default::default()
        },
    );
    table.row(vec![
        "2 concolic exploration".into(),
        wall0.elapsed().as_millis().to_string(),
        live.now().to_string(),
        format!(
            "{} executions, {} distinct paths, {} solver queries",
            exploration.executions.len(),
            exploration.distinct_paths,
            exploration.solver.queries
        ),
    ]);

    // Phase 3: three clones explored input-by-input.
    let topo = live.topology().clone();
    let baseline = flips_baseline(&catalog, &shadow);
    let checkers = default_checkers(20);
    let registry = catalog.build_registry(&live, 99);
    let mut verdicts = 0usize;
    for (k, exec) in exploration.executions.iter().take(3).enumerate() {
        let mut clone = Simulator::from_shadow(&shadow, &topo, k as u64);
        clone.deliver_direct(peer, explorer, &exec.input);
        let end = shadow.base_time() + SimDuration::from_secs(60);
        let quiet = clone.run_until_quiet(SimDuration::from_secs(5), end);
        let cx = CheckContext {
            sim: &clone,
            catalog: &catalog,
            registry: &registry,
            baseline_flips: &baseline,
            quiet,
            injected: true,
        };
        let report = run_checkers(&checkers, &cx);
        verdicts += report.verdicts.len();
        table.row(vec![
            format!("3.{} clone explored", k + 1),
            wall0.elapsed().as_millis().to_string(),
            clone.now().to_string(),
            format!(
                "input {}B, quiesced={:?}, {} verdicts",
                exec.input.len(),
                quiet,
                report.verdicts.len()
            ),
        ]);
    }

    // Phase 4: verdict aggregation through the narrow interface.
    table.row(vec![
        "4 verdicts aggregated".into(),
        wall0.elapsed().as_millis().to_string(),
        live.now().to_string(),
        format!("{verdicts} local verdicts shared (digests + pass/fail only)"),
    ]);

    table.print();
    maybe_write_json(&[&table]);
}
