//! # dice-bench — the experiment harness
//!
//! One binary per table/figure of the evaluation (see DESIGN.md §4 and
//! EXPERIMENTS.md):
//!
//! | target | experiment |
//! |---|---|
//! | `exp_demo27` | F1 — the 27-router Figure 1 demo |
//! | `exp_detection` | T1 — detection of the three fault classes |
//! | `exp_overhead` | T2 — checkpoint/snapshot overhead |
//! | `exp_exploration` | F2 — concolic vs grammar vs random coverage |
//! | `exp_code_config` | T3 — constraints scale with configuration |
//! | `exp_workflow` | F3 — one round's phase timeline |
//! | `exp_snapshot_consistency` | A1 — consistent vs uncoordinated snapshots |
//! | `exp_campaign` | C1 — federation-scale campaign throughput and detection latency |
//! | `exp_gossip` | G1 — gossip pub/sub and mixed-protocol campaigns |
//! | `exp_topo` | T1 — rounds/s and snapshot-bytes curves vs topology size |
//!
//! Criterion micro-benches (`snapshot_bench`, `handler_bench`,
//! `solver_bench`) cover T4 (instrumentation and snapshot tax).
//!
//! Each binary prints a Markdown table to stdout and, when `--json PATH`
//! is given, writes the raw rows as JSON for archival.

use std::fmt::Write as _;

/// Fixed, realistic wire-path workloads shared by the `wire_path`
/// criterion bench and the `exp_wire` allocation experiment, so the time
/// and allocation sides of W1 measure the same messages.
pub mod wire_workload {
    use dice_bgp::wire::{Message, UpdateMsg};
    use dice_bgp::{net, AsPath, Community, Ipv4Addr, PathAttrs};
    use dice_gossip::{GossipFrame, Rumor};

    /// A transit-grade BGP UPDATE: two withdrawals, a 4-hop AS_PATH,
    /// MED + LOCAL_PREF, three communities, eight announced prefixes.
    pub fn bgp_update() -> Message {
        let mut attrs = PathAttrs {
            as_path: AsPath::sequence([65001, 65007, 65021, 65100]),
            next_hop: Ipv4Addr(0x0a00_0001),
            med: Some(50),
            local_pref: Some(120),
            ..PathAttrs::default()
        };
        for c in [0xFDE8_0001u32, 0xFDE8_0002, 0xFDE8_0100] {
            attrs.communities.insert(Community(c));
        }
        let nlri = (0..8u32).map(|i| net(&format!("10.{i}.0.0/16"))).collect();
        Message::Update(UpdateMsg {
            withdrawn: vec![net("192.0.2.0/24"), net("198.51.100.0/24")],
            attrs: Some(attrs),
            nlri,
        })
    }

    /// An anti-entropy digest over 32 `(topic, id)` pairs.
    pub fn gossip_digest() -> GossipFrame {
        GossipFrame::Digest((0..32u16).map(|t| (t, u32::from(t) * 7 + 1)).collect())
    }

    /// A rumor push with a 64-byte payload.
    pub fn gossip_rumor() -> GossipFrame {
        GossipFrame::Rumor(Rumor {
            topic: 5,
            id: 421,
            origin: 65007,
            ttl: 4,
            payload: (0..64u8).collect(),
        })
    }
}

/// A simple Markdown table builder for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render as Markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String], out: &mut String| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:<w$} |", c, w = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&self.header, &mut out);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep, &mut out);
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The rows as JSON (array of objects keyed by header).
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|r| {
                let obj: serde_json::Map<String, serde_json::Value> = self
                    .header
                    .iter()
                    .zip(r)
                    .map(|(h, c)| (h.clone(), serde_json::Value::String(c.clone())))
                    .collect();
                serde_json::Value::Object(obj)
            })
            .collect();
        serde_json::json!({ "title": self.title, "rows": rows })
    }
}

/// Write experiment artifacts as JSON when `--json PATH` was passed.
pub fn maybe_write_json(tables: &[&Table]) {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(path) = args.next() {
                let v: Vec<serde_json::Value> = tables.iter().map(|t| t.to_json()).collect();
                let body = serde_json::to_string_pretty(&v).expect("serializable");
                std::fs::write(&path, body).unwrap_or_else(|e| {
                    eprintln!("failed to write {path}: {e}");
                });
                eprintln!("wrote {path}");
            }
        }
    }
}

/// Append the standard campaign summary rows (rounds, wall, rounds/s,
/// sim time, executions, validations, coverage union, faults by class) to
/// a `[campaign, metric, value]`-shaped table. Shared by every campaign
/// experiment binary so the committed trajectory files keep one format.
pub fn summarize_campaign(table: &mut Table, label: &str, report: &dice_core::CampaignReport) {
    let mut by_class: std::collections::BTreeMap<String, usize> = Default::default();
    for f in &report.faults {
        *by_class.entry(f.class.to_string()).or_default() += 1;
    }
    let faults = if by_class.is_empty() {
        "none".into()
    } else {
        by_class
            .iter()
            .map(|(c, n)| format!("{c}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let perf = &report.perf;
    let rows: [(&str, String); 13] = [
        ("rounds", report.rounds.len().to_string()),
        ("wall", format!("{:.1}ms", report.wall_us as f64 / 1e3)),
        ("rounds/s", format!("{:.2}", report.rounds_per_sec())),
        ("sim time consumed", fmt_nanos(report.sim_nanos)),
        ("concolic executions", report.executions_total.to_string()),
        ("inputs validated", report.validated_total.to_string()),
        ("coverage union", report.coverage_union.to_string()),
        ("faults by class", faults),
        ("snapshot bytes", perf.snapshot_bytes.to_string()),
        (
            "clone pool",
            format!(
                "{} hits / {} misses ({:.0}% reuse)",
                perf.pool_hits,
                perf.pool_misses,
                perf.pool_hit_rate() * 100.0
            ),
        ),
        (
            "solver cache",
            format!(
                "{} refuted / {} solves ({:.0}% hit rate), {} memo hits, {} covered flips skipped",
                perf.solver_cache_hits,
                perf.solver_queries,
                perf.solver_cache_hit_rate() * 100.0,
                perf.unary_memo_hits,
                perf.covered_flips_skipped
            ),
        ),
        (
            "wire path",
            format!(
                "{} bytes, buf pool {} hits / {} misses, {} batches (max {} frames)",
                perf.wire_bytes,
                perf.buf_hits,
                perf.buf_misses,
                perf.delivered_batches,
                perf.max_batch_occupancy
            ),
        ),
        (
            "delta snapshots",
            format!(
                "{} delta bytes, {} nodes recaptured, {} churn events",
                perf.snapshot_delta_bytes, perf.nodes_recaptured, perf.churn_events
            ),
        ),
    ];
    for (metric, value) in rows {
        table.row(vec![label.into(), metric.into(), value]);
    }
}

/// Read `--repeat N` from argv (default 1). Experiment binaries rerun
/// their primary campaign `N` times on fresh identical systems and report
/// the spread via [`spread_rows`], damping scheduler noise in the
/// committed trajectory files.
pub fn parse_repeat() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--repeat" {
            let n = args
                .next()
                .unwrap_or_else(|| panic!("--repeat needs a count"));
            return n
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("bad --repeat {n}: {e}"))
                .max(1);
        }
    }
    1
}

/// `(min, median, max)` of a sample set; the median of an even count is
/// the mean of the two middle samples. Panics on an empty slice.
pub fn min_median_max(samples: &[f64]) -> (f64, f64, f64) {
    assert!(!samples.is_empty(), "no samples");
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let median = if s.len() % 2 == 1 {
        s[s.len() / 2]
    } else {
        (s[s.len() / 2 - 1] + s[s.len() / 2]) / 2.0
    };
    (s[0], median, s[s.len() - 1])
}

/// Append a `rounds/s min/median/max of N` row to a
/// `[campaign, metric, value]`-shaped table when more than one sample was
/// collected (`--repeat 1`, the default, leaves the table unchanged).
pub fn spread_rows(table: &mut Table, label: &str, rounds_per_sec: &[f64]) {
    if rounds_per_sec.len() < 2 {
        return;
    }
    let (min, median, max) = min_median_max(rounds_per_sec);
    table.row(vec![
        label.into(),
        format!("rounds/s min/median/max of {}", rounds_per_sec.len()),
        format!("{min:.2} / {median:.2} / {max:.2}"),
    ]);
}

/// Append one `first <class> detection` row per detected fault class to a
/// `[campaign, metric, value]`-shaped table.
pub fn detection_rows(table: &mut Table, label: &str, report: &dice_core::CampaignReport) {
    for d in &report.detection {
        table.row(vec![
            label.into(),
            format!("first {} detection", d.class),
            format!(
                "round {} ({} via {}), input #{}, {:.1}ms cumulative",
                d.round,
                d.explorer,
                d.inject_peer,
                d.input_ordinal,
                d.wall_us_cum as f64 / 1e3
            ),
        ]);
    }
}

/// Format a nanosecond count as a human duration string.
pub fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "23456".into()]);
        let md = t.render();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| name  | value |"));
        assert!(md.contains("| alpha | 1     |"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_shape() {
        let mut t = Table::new("J", &["k"]);
        t.row(vec!["v".into()]);
        let j = t.to_json();
        assert_eq!(j["title"], "J");
        assert_eq!(j["rows"][0]["k"], "v");
    }

    #[test]
    fn min_median_max_handles_odd_and_even_counts() {
        assert_eq!(min_median_max(&[3.0, 1.0, 2.0]), (1.0, 2.0, 3.0));
        assert_eq!(min_median_max(&[4.0, 1.0, 3.0, 2.0]), (1.0, 2.5, 4.0));
        assert_eq!(min_median_max(&[5.0]), (5.0, 5.0, 5.0));
    }

    #[test]
    fn spread_rows_noop_below_two_samples() {
        let mut t = Table::new("S", &["campaign", "metric", "value"]);
        spread_rows(&mut t, "x", &[1.0]);
        assert!(!t.render().contains("min/median/max"));
        spread_rows(&mut t, "x", &[2.0, 1.0, 4.0]);
        assert!(t.render().contains("1.00 / 2.00 / 4.00"));
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(fmt_nanos(500), "500ns");
        assert_eq!(fmt_nanos(1_500), "1us");
        assert_eq!(fmt_nanos(2_500_000), "2.5ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
