//! BGP path attributes (RFC 4271 §4.3, RFC 1997 communities).
//!
//! The attribute bag [`PathAttrs`] preserves unknown optional-transitive
//! attributes verbatim (flags included), as a real router must — this is
//! also where the seeded "programming error" of the evaluation lives: a
//! BIRD-style mishandling of an unknown attribute's extended length.

use crate::types::{Asn, Community, Ipv4Addr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Attribute flag bits.
pub mod flags {
    /// Attribute is optional (not well-known).
    pub const OPTIONAL: u8 = 0x80;
    /// Attribute is transitive.
    pub const TRANSITIVE: u8 = 0x40;
    /// Attribute was forwarded by a router that did not understand it.
    pub const PARTIAL: u8 = 0x20;
    /// Attribute length is two octets.
    pub const EXT_LEN: u8 = 0x10;
}

/// Attribute type codes.
pub mod code {
    /// ORIGIN, well-known mandatory.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH, well-known mandatory.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP, well-known mandatory.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC, optional non-transitive.
    pub const MED: u8 = 4;
    /// LOCAL_PREF, well-known (iBGP).
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE, well-known discretionary.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR, optional transitive.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITY, optional transitive (RFC 1997).
    pub const COMMUNITY: u8 = 8;
}

/// The ORIGIN attribute value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Origin {
    /// Learned from an IGP.
    #[default]
    Igp = 0,
    /// Learned via EGP.
    Egp = 1,
    /// Origin unknown.
    Incomplete = 2,
}

impl Origin {
    /// Decode from the wire value.
    pub fn from_u8(v: u8) -> Option<Origin> {
        match v {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

/// AS_PATH segment kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Unordered set (from aggregation); counts as one hop.
    Set = 1,
    /// Ordered sequence of traversed ASes.
    Sequence = 2,
}

impl SegmentKind {
    /// Decode from the wire value.
    pub fn from_u8(v: u8) -> Option<SegmentKind> {
        match v {
            1 => Some(SegmentKind::Set),
            2 => Some(SegmentKind::Sequence),
            _ => None,
        }
    }
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsPathSegment {
    /// Set or sequence.
    pub kind: SegmentKind,
    /// Member AS numbers (max 255 per segment on the wire).
    pub asns: Vec<Asn>,
}

/// The AS_PATH attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AsPath {
    /// Segments in wire order.
    pub segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// The empty path (locally originated routes).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// A pure sequence path.
    pub fn sequence(asns: impl IntoIterator<Item = u16>) -> Self {
        let asns: Vec<Asn> = asns.into_iter().map(Asn).collect();
        if asns.is_empty() {
            return AsPath::empty();
        }
        AsPath {
            segments: vec![AsPathSegment {
                kind: SegmentKind::Sequence,
                asns,
            }],
        }
    }

    /// Path length for the decision process: sequences count per-AS,
    /// each set counts as 1 (RFC 4271 §9.1.2.2.a).
    pub fn path_len(&self) -> u32 {
        self.segments
            .iter()
            .map(|s| match s.kind {
                SegmentKind::Sequence => s.asns.len() as u32,
                SegmentKind::Set => 1,
            })
            .sum()
    }

    /// Whether the path mentions `asn` anywhere (loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| s.asns.contains(&asn))
    }

    /// The leftmost AS (the neighbor that sent us the route), if any.
    pub fn first_asn(&self) -> Option<Asn> {
        self.segments.first().and_then(|s| match s.kind {
            SegmentKind::Sequence => s.asns.first().copied(),
            SegmentKind::Set => None,
        })
    }

    /// The rightmost AS (the originator), if any.
    pub fn origin_asn(&self) -> Option<Asn> {
        self.segments.last().and_then(|s| match s.kind {
            SegmentKind::Sequence => s.asns.last().copied(),
            SegmentKind::Set => None,
        })
    }

    /// Prepend `asn` `count` times (eBGP export).
    pub fn prepend(&mut self, asn: Asn, count: u8) {
        if count == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(seg)
                if seg.kind == SegmentKind::Sequence && seg.asns.len() + count as usize <= 255 =>
            {
                for _ in 0..count {
                    seg.asns.insert(0, asn);
                }
            }
            _ => {
                self.segments.insert(
                    0,
                    AsPathSegment {
                        kind: SegmentKind::Sequence,
                        asns: vec![asn; count as usize],
                    },
                );
            }
        }
    }

    /// All ASNs in order of appearance (sets flattened).
    pub fn all_asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns.iter().copied())
    }
}

impl core::fmt::Display for AsPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg.kind {
                SegmentKind::Sequence => {
                    let parts: Vec<String> = seg.asns.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                SegmentKind::Set => {
                    let parts: Vec<String> = seg.asns.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

/// An attribute this implementation does not interpret, preserved verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawAttr {
    /// Original flag octet.
    pub flags: u8,
    /// Type code.
    pub code: u8,
    /// Raw value bytes.
    pub value: Vec<u8>,
}

/// The parsed attribute bag of an UPDATE (or of a RIB entry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathAttrs {
    /// ORIGIN (well-known mandatory).
    pub origin: Origin,
    /// AS_PATH (well-known mandatory).
    pub as_path: AsPath,
    /// NEXT_HOP (well-known mandatory).
    pub next_hop: Ipv4Addr,
    /// MULTI_EXIT_DISC, if present.
    pub med: Option<u32>,
    /// LOCAL_PREF, if present (iBGP / policy-assigned).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE marker.
    pub atomic_aggregate: bool,
    /// AGGREGATOR (asn, speaker), if present.
    pub aggregator: Option<(Asn, Ipv4Addr)>,
    /// COMMUNITY values, deduplicated and ordered.
    pub communities: BTreeSet<Community>,
    /// Unknown optional-transitive attributes carried through.
    pub unknown: Vec<RawAttr>,
}

impl Default for PathAttrs {
    fn default() -> Self {
        PathAttrs {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop: Ipv4Addr(0),
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: BTreeSet::new(),
            unknown: Vec::new(),
        }
    }
}

impl PathAttrs {
    /// Attribute bag for a locally originated route.
    pub fn originated(next_hop: Ipv4Addr) -> Self {
        PathAttrs {
            next_hop,
            ..Default::default()
        }
    }

    /// Effective LOCAL_PREF for the decision process (default 100).
    pub fn effective_local_pref(&self) -> u32 {
        self.local_pref.unwrap_or(100)
    }

    /// Effective MED (missing treated as 0, i.e. best).
    pub fn effective_med(&self) -> u32 {
        self.med.unwrap_or(0)
    }

    /// Whether the community is present.
    pub fn has_community(&self, c: Community) -> bool {
        self.communities.contains(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_codes() {
        assert_eq!(Origin::from_u8(0), Some(Origin::Igp));
        assert_eq!(Origin::from_u8(1), Some(Origin::Egp));
        assert_eq!(Origin::from_u8(2), Some(Origin::Incomplete));
        assert_eq!(Origin::from_u8(3), None);
        assert!(Origin::Igp < Origin::Egp && Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn path_len_counts_sets_as_one() {
        let p = AsPath {
            segments: vec![
                AsPathSegment {
                    kind: SegmentKind::Sequence,
                    asns: vec![Asn(1), Asn(2)],
                },
                AsPathSegment {
                    kind: SegmentKind::Set,
                    asns: vec![Asn(3), Asn(4), Asn(5)],
                },
            ],
        };
        assert_eq!(p.path_len(), 3);
    }

    #[test]
    fn prepend_extends_leading_sequence() {
        let mut p = AsPath::sequence([20, 30]);
        p.prepend(Asn(10), 2);
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].asns, vec![Asn(10), Asn(10), Asn(20), Asn(30)]);
        assert_eq!(p.first_asn(), Some(Asn(10)));
        assert_eq!(p.origin_asn(), Some(Asn(30)));
    }

    #[test]
    fn prepend_to_empty_creates_segment() {
        let mut p = AsPath::empty();
        p.prepend(Asn(7), 1);
        assert_eq!(p.path_len(), 1);
        assert_eq!(p.first_asn(), Some(Asn(7)));
    }

    #[test]
    fn prepend_zero_is_noop() {
        let mut p = AsPath::sequence([1]);
        p.prepend(Asn(9), 0);
        assert_eq!(p.path_len(), 1);
    }

    #[test]
    fn loop_detection_sees_sets() {
        let p = AsPath {
            segments: vec![
                AsPathSegment {
                    kind: SegmentKind::Sequence,
                    asns: vec![Asn(1)],
                },
                AsPathSegment {
                    kind: SegmentKind::Set,
                    asns: vec![Asn(9)],
                },
            ],
        };
        assert!(p.contains(Asn(9)));
        assert!(p.contains(Asn(1)));
        assert!(!p.contains(Asn(2)));
    }

    #[test]
    fn display_formats() {
        let p = AsPath {
            segments: vec![
                AsPathSegment {
                    kind: SegmentKind::Sequence,
                    asns: vec![Asn(10), Asn(20)],
                },
                AsPathSegment {
                    kind: SegmentKind::Set,
                    asns: vec![Asn(30), Asn(40)],
                },
            ],
        };
        assert_eq!(p.to_string(), "10 20 {30,40}");
    }

    #[test]
    fn effective_defaults() {
        let a = PathAttrs::default();
        assert_eq!(a.effective_local_pref(), 100);
        assert_eq!(a.effective_med(), 0);
        let b = PathAttrs {
            local_pref: Some(300),
            med: Some(5),
            ..Default::default()
        };
        assert_eq!(b.effective_local_pref(), 300);
        assert_eq!(b.effective_med(), 5);
    }

    #[test]
    fn originated_bag_is_minimal() {
        let a = PathAttrs::originated(Ipv4Addr(0x0A000001));
        assert_eq!(a.as_path.path_len(), 0);
        assert_eq!(a.origin, Origin::Igp);
        assert!(a.communities.is_empty());
    }
}
