//! Router configuration and the BIRD-lite textual config language.
//!
//! Operators write filters in a small language modeled on BIRD's; the parser
//! lowers it to the data-driven [`Policy`] structures which are then
//! *interpreted* at run time. DiCE's concolic engine records constraints
//! through that interpretation, so explored paths cover configuration as
//! well as code.
//!
//! ```text
//! router as 65001 id 10.0.0.1;
//! hold 90;
//! network 10.1.0.0/16;
//! owned 10.1.0.0/16;
//! neighbor node 3 as 65002 import IMP export EXP;
//! filter IMP {
//!     if prefix in [ 10.0.0.0/8{8,24} ] then { localpref 200; accept; }
//!     if aspath contains 65003 then reject;
//!     accept;
//! }
//! filter EXP { accept; }
//! ```

use crate::attrs::Origin;
use crate::policy::{Action, Match, Policy, PrefixFilter, Rule, Verdict};
use crate::types::{Asn, Community, Ipv4Net, RouterId};
use dice_netsim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-neighbor session configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborConfig {
    /// Simulator node hosting the peer.
    pub node: NodeId,
    /// Expected peer AS (validated against the OPEN).
    pub asn: Asn,
    /// Name of the import policy.
    pub import: String,
    /// Name of the export policy.
    pub export: String,
}

/// Seeded-bug switches: deliberately planted defects used by the
/// fault-detection experiments. All default to off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BugSwitches {
    /// BIRD-style signed-length defect: the handler stores the value length
    /// of unknown high-numbered attributes (type >= 0xF0) in a signed 8-bit
    /// temporary; lengths >= 0x90 overflow and trip an internal assertion,
    /// crashing the daemon.
    pub attr_overflow_crash: bool,
}

/// Complete configuration of one BGP router.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Own AS number.
    pub asn: Asn,
    /// BGP identifier.
    pub router_id: RouterId,
    /// Prefixes this router originates.
    pub networks: Vec<Ipv4Net>,
    /// Prefixes this router *legitimately* owns (for origin attestation).
    /// A misconfiguration may make `networks` exceed `owned` — that is the
    /// operator-mistake fault class.
    pub owned: Vec<Ipv4Net>,
    /// Neighbor sessions.
    pub neighbors: Vec<NeighborConfig>,
    /// Named policies referenced by neighbors.
    pub policies: BTreeMap<String, Policy>,
    /// Proposed hold time in seconds.
    pub hold_time: u16,
    /// Seeded-bug switches.
    pub bugs: BugSwitches,
}

impl RouterConfig {
    /// A minimal config with accept-all policies.
    pub fn minimal(asn: Asn, router_id: RouterId) -> Self {
        let mut policies = BTreeMap::new();
        policies.insert("all".to_string(), Policy::accept_all("all"));
        RouterConfig {
            asn,
            router_id,
            networks: Vec::new(),
            owned: Vec::new(),
            neighbors: Vec::new(),
            policies,
            hold_time: 90,
            bugs: BugSwitches::default(),
        }
    }

    /// Add a neighbor using the named policies.
    pub fn with_neighbor(
        mut self,
        node: NodeId,
        asn: Asn,
        import: impl Into<String>,
        export: impl Into<String>,
    ) -> Self {
        self.neighbors.push(NeighborConfig {
            node,
            asn,
            import: import.into(),
            export: export.into(),
        });
        self
    }

    /// Originate (and own) a prefix.
    pub fn with_network(mut self, n: Ipv4Net) -> Self {
        self.networks.push(n);
        if !self.owned.contains(&n) {
            self.owned.push(n);
        }
        self
    }

    /// Register a named policy.
    pub fn with_policy(mut self, p: Policy) -> Self {
        self.policies.insert(p.name.clone(), p);
        self
    }

    /// The neighbor entry for a node, if configured.
    pub fn neighbor(&self, node: NodeId) -> Option<&NeighborConfig> {
        self.neighbors.iter().find(|n| n.node == node)
    }

    /// Cross-check internal consistency (policy references, duplicates).
    pub fn validate(&self) -> Result<(), ConfigError> {
        for n in &self.neighbors {
            if !self.policies.contains_key(&n.import) {
                return Err(ConfigError::UnknownPolicy(n.import.clone()));
            }
            if !self.policies.contains_key(&n.export) {
                return Err(ConfigError::UnknownPolicy(n.export.clone()));
            }
        }
        let mut seen = Vec::new();
        for n in &self.neighbors {
            if seen.contains(&n.node) {
                return Err(ConfigError::DuplicateNeighbor(n.node));
            }
            seen.push(n.node);
        }
        Ok(())
    }

    /// Total policy complexity (for the code-vs-config experiment).
    pub fn policy_complexity(&self) -> usize {
        self.policies.values().map(|p| p.complexity()).sum()
    }
}

/// Configuration errors (validation and parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A neighbor references a policy that is not defined.
    UnknownPolicy(String),
    /// Two neighbor blocks name the same node.
    DuplicateNeighbor(NodeId),
    /// Textual parse error with line number and explanation.
    Parse {
        /// 1-based line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::UnknownPolicy(p) => write!(f, "reference to undefined policy {p:?}"),
            ConfigError::DuplicateNeighbor(n) => write!(f, "duplicate neighbor {n}"),
            ConfigError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

// ---------------------------------------------------------------------
// BIRD-lite parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(u64),
    Prefix(Ipv4Net, Option<(u8, u8)>), // 10.0.0.0/8 or 10.0.0.0/8{8,24}
    Community(Community),
    Addr(u32),
    Punct(char),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ConfigError {
        ConfigError::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek_ch(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_ch()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek_ch() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Produce the next token (with its line), or None at EOF.
    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>, ConfigError> {
        self.skip_ws();
        let line = self.line;
        let Some(c) = self.peek_ch() else {
            return Ok(None);
        };
        if c.is_ascii_alphabetic() || c == '_' {
            let start = self.pos;
            while matches!(self.peek_ch(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                self.bump();
            }
            return Ok(Some((
                Tok::Ident(self.src[start..self.pos].to_string()),
                line,
            )));
        }
        if c.is_ascii_digit() {
            return self.lex_numberish().map(|t| Some((t, line)));
        }
        if "{};[],<=:".contains(c) {
            self.bump();
            return Ok(Some((Tok::Punct(c), line)));
        }
        Err(self.err(format!("unexpected character {c:?}")))
    }

    /// Numbers, addresses, prefixes, communities — all start with a digit.
    fn lex_numberish(&mut self) -> Result<Tok, ConfigError> {
        let start = self.pos;
        while matches!(self.peek_ch(), Some(c) if c.is_ascii_digit() || c == '.') {
            self.bump();
        }
        let head = &self.src[start..self.pos];
        match self.peek_ch() {
            Some('/') => {
                self.bump();
                let lstart = self.pos;
                while matches!(self.peek_ch(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
                let len: u8 = self.src[lstart..self.pos]
                    .parse()
                    .map_err(|_| self.err("bad prefix length"))?;
                let full = format!("{head}/{len}");
                let net: Ipv4Net = full
                    .parse()
                    .map_err(|e| self.err(format!("bad prefix {full:?}: {e}")))?;
                // Optional {min,max} range.
                if self.peek_ch() == Some('{') {
                    self.bump();
                    let range = self.lex_range()?;
                    return Ok(Tok::Prefix(net, Some(range)));
                }
                Ok(Tok::Prefix(net, None))
            }
            Some(':') => {
                self.bump();
                let vstart = self.pos;
                while matches!(self.peek_ch(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
                let a: u16 = head.parse().map_err(|_| self.err("bad community asn"))?;
                let v: u16 = self.src[vstart..self.pos]
                    .parse()
                    .map_err(|_| self.err("bad community value"))?;
                Ok(Tok::Community(Community::from_pair(a, v)))
            }
            _ => {
                if head.contains('.') {
                    let a: crate::types::Ipv4Addr = head
                        .parse()
                        .map_err(|e| self.err(format!("bad address: {e}")))?;
                    Ok(Tok::Addr(a.0))
                } else {
                    let n: u64 = head.parse().map_err(|_| self.err("bad number"))?;
                    Ok(Tok::Number(n))
                }
            }
        }
    }

    fn lex_range(&mut self) -> Result<(u8, u8), ConfigError> {
        let read_num = |lx: &mut Self| -> Result<u8, ConfigError> {
            let s = lx.pos;
            while matches!(lx.peek_ch(), Some(c) if c.is_ascii_digit()) {
                lx.bump();
            }
            lx.src[s..lx.pos]
                .parse()
                .map_err(|_| lx.err("bad range bound"))
        };
        let lo = read_num(self)?;
        if self.bump() != Some(',') {
            return Err(self.err("expected ',' in length range"));
        }
        let hi = read_num(self)?;
        if self.bump() != Some('}') {
            return Err(self.err("expected '}' after length range"));
        }
        if lo > hi || hi > 32 {
            return Err(self.err("invalid length range"));
        }
        Ok((lo, hi))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ConfigError {
        let line = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0);
        ConfigError::Parse {
            line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Tok, ConfigError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ConfigError> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(self.err(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ConfigError> {
        match self.next()? {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(self.err(format!("expected keyword {kw:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ConfigError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<u64, ConfigError> {
        match self.next()? {
            Tok::Number(n) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn prefix(&mut self) -> Result<Ipv4Net, ConfigError> {
        match self.next()? {
            Tok::Prefix(p, None) => Ok(p),
            other => Err(self.err(format!("expected prefix, found {other:?}"))),
        }
    }
}

/// Parse a complete router configuration from BIRD-lite text.
pub fn parse_config(src: &str) -> Result<RouterConfig, ConfigError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lx.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, pos: 0 };

    let mut cfg = RouterConfig::minimal(Asn(0), RouterId(0));
    cfg.policies.clear();
    let mut have_router = false;

    while p.peek().is_some() {
        let kw = p.ident()?;
        match kw.as_str() {
            "router" => {
                p.expect_ident("as")?;
                cfg.asn = Asn(p.number()? as u16);
                p.expect_ident("id")?;
                cfg.router_id = RouterId(match p.next()? {
                    Tok::Addr(a) => a,
                    Tok::Number(n) => n as u32,
                    other => return Err(p.err(format!("expected router id, found {other:?}"))),
                });
                p.expect_punct(';')?;
                have_router = true;
            }
            "hold" => {
                cfg.hold_time = p.number()? as u16;
                p.expect_punct(';')?;
            }
            "network" => {
                let n = p.prefix()?;
                cfg.networks.push(n);
                p.expect_punct(';')?;
            }
            "owned" => {
                let n = p.prefix()?;
                cfg.owned.push(n);
                p.expect_punct(';')?;
            }
            "neighbor" => {
                p.expect_ident("node")?;
                let node = NodeId(p.number()? as u32);
                p.expect_ident("as")?;
                let asn = Asn(p.number()? as u16);
                p.expect_ident("import")?;
                let import = p.ident()?;
                p.expect_ident("export")?;
                let export = p.ident()?;
                p.expect_punct(';')?;
                cfg.neighbors.push(NeighborConfig {
                    node,
                    asn,
                    import,
                    export,
                });
            }
            "filter" => {
                let name = p.ident()?;
                let policy = parse_filter(&mut p, &name)?;
                cfg.policies.insert(name, policy);
            }
            "bug" => {
                let which = p.ident()?;
                match which.as_str() {
                    "attr-overflow-crash" => cfg.bugs.attr_overflow_crash = true,
                    other => return Err(p.err(format!("unknown bug switch {other:?}"))),
                }
                p.expect_punct(';')?;
            }
            other => return Err(p.err(format!("unknown top-level keyword {other:?}"))),
        }
    }

    if !have_router {
        return Err(ConfigError::Parse {
            line: 1,
            msg: "missing `router as … id …;`".into(),
        });
    }
    cfg.validate()?;
    Ok(cfg)
}

fn parse_filter(p: &mut Parser, name: &str) -> Result<Policy, ConfigError> {
    p.expect_punct('{')?;
    let mut rules = Vec::new();
    loop {
        match p.peek() {
            Some(Tok::Punct('}')) => {
                p.next()?;
                break;
            }
            Some(Tok::Ident(kw)) if kw == "if" => {
                p.next()?;
                let matches = parse_conditions(p)?;
                p.expect_ident("then")?;
                let (actions, verdict) = parse_rule_body(p)?;
                rules.push(Rule {
                    matches,
                    actions,
                    verdict,
                });
            }
            Some(Tok::Ident(kw)) if kw == "accept" => {
                p.next()?;
                p.expect_punct(';')?;
                rules.push(Rule::accept(vec![Match::Any]));
            }
            Some(Tok::Ident(kw)) if kw == "reject" => {
                p.next()?;
                p.expect_punct(';')?;
                rules.push(Rule::reject(vec![Match::Any]));
            }
            other => return Err(p.err(format!("unexpected token in filter: {other:?}"))),
        }
    }
    Ok(Policy {
        name: name.to_string(),
        rules,
        default: Verdict::Reject,
    })
}

fn parse_conditions(p: &mut Parser) -> Result<Vec<Match>, ConfigError> {
    let mut out = vec![parse_condition(p)?];
    while matches!(p.peek(), Some(Tok::Ident(k)) if k == "and") {
        p.next()?;
        out.push(parse_condition(p)?);
    }
    Ok(out)
}

fn parse_condition(p: &mut Parser) -> Result<Match, ConfigError> {
    let kw = p.ident()?;
    match kw.as_str() {
        "true" => Ok(Match::Any),
        "prefix" => {
            p.expect_ident("in")?;
            p.expect_punct('[')?;
            let mut filters = Vec::new();
            loop {
                match p.next()? {
                    Tok::Prefix(net, None) => filters.push(PrefixFilter::exact(net)),
                    Tok::Prefix(net, Some((lo, hi))) => filters.push(PrefixFilter {
                        net,
                        min_len: lo,
                        max_len: hi,
                    }),
                    other => return Err(p.err(format!("expected prefix in set, found {other:?}"))),
                }
                match p.next()? {
                    Tok::Punct(',') => continue,
                    Tok::Punct(']') => break,
                    other => return Err(p.err(format!("expected ',' or ']', found {other:?}"))),
                }
            }
            Ok(Match::PrefixIn(filters))
        }
        "prefixlen" => {
            let min = p.number()? as u8;
            p.expect_punct(':')?;
            let max = p.number()? as u8;
            Ok(Match::PrefixLenIn { min, max })
        }
        "aspath" => {
            let sub = p.ident()?;
            match sub.as_str() {
                "contains" => Ok(Match::AsPathContains(Asn(p.number()? as u16))),
                "length" => {
                    p.expect_punct('<')?;
                    p.expect_punct('=')?;
                    Ok(Match::AsPathLenAtMost(p.number()? as u32))
                }
                other => Err(p.err(format!("unknown aspath predicate {other:?}"))),
            }
        }
        "originated" => Ok(Match::OriginatedBy(Asn(p.number()? as u16))),
        "community" => match p.next()? {
            Tok::Community(c) => Ok(Match::HasCommunity(c)),
            other => Err(p.err(format!("expected community literal, found {other:?}"))),
        },
        "origin" => {
            let o = p.ident()?;
            let origin = match o.as_str() {
                "igp" => Origin::Igp,
                "egp" => Origin::Egp,
                "incomplete" => Origin::Incomplete,
                other => return Err(p.err(format!("unknown origin {other:?}"))),
            };
            Ok(Match::OriginIs(origin))
        }
        other => Err(p.err(format!("unknown condition {other:?}"))),
    }
}

fn parse_rule_body(p: &mut Parser) -> Result<(Vec<Action>, Option<Verdict>), ConfigError> {
    let mut actions = Vec::new();
    let mut verdict = None;
    let block = matches!(p.peek(), Some(Tok::Punct('{')));
    if block {
        p.next()?;
    }
    loop {
        let kw = p.ident()?;
        match kw.as_str() {
            "accept" => {
                verdict = Some(Verdict::Accept);
                p.expect_punct(';')?;
            }
            "reject" => {
                verdict = Some(Verdict::Reject);
                p.expect_punct(';')?;
            }
            "localpref" => {
                actions.push(Action::SetLocalPref(p.number()? as u32));
                p.expect_punct(';')?;
            }
            "med" => {
                actions.push(Action::SetMed(p.number()? as u32));
                p.expect_punct(';')?;
            }
            "prepend" => {
                actions.push(Action::Prepend(p.number()? as u8));
                p.expect_punct(';')?;
            }
            "community" => {
                let op = p.ident()?;
                let c = match p.next()? {
                    Tok::Community(c) => c,
                    other => return Err(p.err(format!("expected community, found {other:?}"))),
                };
                match op.as_str() {
                    "add" => actions.push(Action::AddCommunity(c)),
                    "remove" => actions.push(Action::RemoveCommunity(c)),
                    other => return Err(p.err(format!("unknown community op {other:?}"))),
                }
                p.expect_punct(';')?;
            }
            other => return Err(p.err(format!("unknown action {other:?}"))),
        }
        if !block {
            break; // single-statement body
        }
        if matches!(p.peek(), Some(Tok::Punct('}'))) {
            p.next()?;
            break;
        }
    }
    Ok((actions, verdict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::net;

    const SAMPLE: &str = r#"
        # Edge router of AS 65001.
        router as 65001 id 10.0.0.1;
        hold 90;
        network 10.1.0.0/16;
        owned 10.1.0.0/16;
        neighbor node 3 as 65002 import IMP export EXP;
        neighbor node 4 as 65003 import IMP export EXP;
        filter IMP {
            if prefix in [ 10.0.0.0/8{8,24}, 192.0.2.0/24 ] then { localpref 200; community add 65001:1; accept; }
            if aspath contains 64666 then reject;
            if aspath length <= 6 and origin igp then { med 10; }
            accept;
        }
        filter EXP {
            if community 65001:666 then reject;
            accept;
        }
    "#;

    #[test]
    fn full_config_parses() {
        let cfg = parse_config(SAMPLE).unwrap();
        assert_eq!(cfg.asn, Asn(65001));
        assert_eq!(cfg.router_id.to_string(), "10.0.0.1");
        assert_eq!(cfg.hold_time, 90);
        assert_eq!(cfg.networks, vec![net("10.1.0.0/16")]);
        assert_eq!(cfg.owned, vec![net("10.1.0.0/16")]);
        assert_eq!(cfg.neighbors.len(), 2);
        assert_eq!(cfg.neighbors[0].node, NodeId(3));
        assert_eq!(cfg.neighbors[0].asn, Asn(65002));
        assert_eq!(cfg.policies.len(), 2);
        let imp = &cfg.policies["IMP"];
        assert_eq!(imp.rules.len(), 4);
        assert_eq!(imp.default, Verdict::Reject);
    }

    #[test]
    fn parsed_policy_behaves() {
        let cfg = parse_config(SAMPLE).unwrap();
        let imp = &cfg.policies["IMP"];
        let attrs = crate::attrs::PathAttrs {
            as_path: crate::attrs::AsPath::sequence([65002]),
            next_hop: crate::types::Ipv4Addr(0x0A000001),
            ..Default::default()
        };
        // In the prefix set: accepted with LP 200 and tag.
        let out = imp.apply(&net("10.5.0.0/16"), &attrs, Asn(65001)).unwrap();
        assert_eq!(out.local_pref, Some(200));
        assert!(out.has_community(Community::from_pair(65001, 1)));
        // Poisoned AS: rejected.
        let poisoned = crate::attrs::PathAttrs {
            as_path: crate::attrs::AsPath::sequence([65002, 64666]),
            ..attrs.clone()
        };
        assert!(imp
            .apply(&net("172.16.0.0/12"), &poisoned, Asn(65001))
            .is_none());
        // Otherwise: non-terminal med rule fires, then trailing accept.
        let out = imp
            .apply(&net("172.16.0.0/12"), &attrs, Asn(65001))
            .unwrap();
        assert_eq!(out.med, Some(10));
    }

    #[test]
    fn prefix_range_syntax() {
        let cfg = parse_config(
            "router as 1 id 1; filter F { if prefix in [ 10.0.0.0/8{16,24} ] then accept; }",
        )
        .unwrap();
        let f = &cfg.policies["F"];
        let attrs = crate::attrs::PathAttrs::default();
        assert!(f.apply(&net("10.1.0.0/16"), &attrs, Asn(1)).is_some());
        assert!(f.apply(&net("10.0.0.0/8"), &attrs, Asn(1)).is_none());
    }

    #[test]
    fn bug_switch_parses() {
        let cfg = parse_config("router as 1 id 1; bug attr-overflow-crash;").unwrap();
        assert!(cfg.bugs.attr_overflow_crash);
    }

    #[test]
    fn error_reports_line() {
        let src = "router as 1 id 1;\nnetwork banana;\n";
        match parse_config(src) {
            Err(ConfigError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_policy_reference_rejected() {
        let src = "router as 1 id 1; neighbor node 2 as 3 import NOPE export NOPE;";
        assert!(matches!(
            parse_config(src),
            Err(ConfigError::UnknownPolicy(_))
        ));
    }

    #[test]
    fn duplicate_neighbor_rejected() {
        let src = r#"
            router as 1 id 1;
            filter F { accept; }
            neighbor node 2 as 3 import F export F;
            neighbor node 2 as 4 import F export F;
        "#;
        assert!(matches!(
            parse_config(src),
            Err(ConfigError::DuplicateNeighbor(_))
        ));
    }

    #[test]
    fn missing_router_block_rejected() {
        assert!(parse_config("hold 90;").is_err());
    }

    #[test]
    fn single_statement_then_body() {
        let cfg =
            parse_config("router as 1 id 1; filter F { if true then reject; accept; }").unwrap();
        let f = &cfg.policies["F"];
        assert_eq!(f.rules.len(), 2);
        assert_eq!(f.rules[0].verdict, Some(Verdict::Reject));
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let cfg = parse_config("# hi\nrouter as 7 id 9; # trailing\n").unwrap();
        assert_eq!(cfg.asn, Asn(7));
        assert_eq!(cfg.router_id, RouterId(9));
    }

    #[test]
    fn builder_api_validates() {
        let cfg = RouterConfig::minimal(Asn(1), RouterId(1)).with_neighbor(
            NodeId(2),
            Asn(2),
            "all",
            "missing",
        );
        assert!(matches!(cfg.validate(), Err(ConfigError::UnknownPolicy(_))));
    }
}
