//! The BGP decision process (RFC 4271 §9.1): rank candidate routes and
//! report *which step* was decisive.
//!
//! The decisive step matters to DiCE twice over: the trace uses it to
//! explain best-route changes, and the concolic handler marks the
//! "is this route preferred" condition symbolic to explore both outcomes of
//! route selection (§3 of the paper).

use crate::rib::Route;
use serde::{Deserialize, Serialize};

/// Which step of the decision process selected the winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionReason {
    /// Only one candidate existed.
    OnlyRoute,
    /// Higher LOCAL_PREF won.
    LocalPref,
    /// Shorter AS_PATH won.
    AsPathLen,
    /// Lower ORIGIN won.
    Origin,
    /// Lower MED won (same neighbor AS).
    Med,
    /// eBGP beat iBGP.
    EbgpOverIbgp,
    /// Lower peer router-id broke the tie.
    RouterId,
    /// Lower peer address broke the final tie.
    PeerAddr,
}

/// Compare two candidate routes; `true` means `a` is preferred over `b`.
/// Also returns the decisive step.
pub fn prefer(a: &Route, b: &Route) -> (bool, DecisionReason) {
    // 1. LOCAL_PREF, higher wins.
    let (lpa, lpb) = (
        a.attrs.effective_local_pref(),
        b.attrs.effective_local_pref(),
    );
    if lpa != lpb {
        return (lpa > lpb, DecisionReason::LocalPref);
    }
    // 2. AS_PATH length, shorter wins.
    let (pla, plb) = (a.attrs.as_path.path_len(), b.attrs.as_path.path_len());
    if pla != plb {
        return (pla < plb, DecisionReason::AsPathLen);
    }
    // 3. ORIGIN, lower wins (IGP < EGP < INCOMPLETE).
    if a.attrs.origin != b.attrs.origin {
        return (a.attrs.origin < b.attrs.origin, DecisionReason::Origin);
    }
    // 4. MED, lower wins, only comparable between routes from the same
    //    neighboring AS.
    if a.attrs.as_path.first_asn() == b.attrs.as_path.first_asn() {
        let (ma, mb) = (a.attrs.effective_med(), b.attrs.effective_med());
        if ma != mb {
            return (ma < mb, DecisionReason::Med);
        }
    }
    // 5. eBGP over iBGP: locally originated (None) ranks as local, which we
    //    treat as preferred over any learned route at this step.
    match (a.from_peer, b.from_peer) {
        (None, Some(_)) => return (true, DecisionReason::EbgpOverIbgp),
        (Some(_), None) => return (false, DecisionReason::EbgpOverIbgp),
        _ => {}
    }
    // 6. Lowest peer router id.
    if a.peer_router_id != b.peer_router_id {
        return (
            a.peer_router_id < b.peer_router_id,
            DecisionReason::RouterId,
        );
    }
    // 7. Lowest peer address (node id as proxy).
    let (pa, pb) = (a.from_peer.unwrap_or(0), b.from_peer.unwrap_or(0));
    (pa <= pb, DecisionReason::PeerAddr)
}

/// Pick the best route among candidates; returns the winner and the reason
/// it beat the runner-up (or [`DecisionReason::OnlyRoute`]).
pub fn select<'a>(
    candidates: impl IntoIterator<Item = &'a Route>,
) -> Option<(&'a Route, DecisionReason)> {
    let mut it = candidates.into_iter();
    let first = it.next()?;
    let mut best = first;
    let mut reason = DecisionReason::OnlyRoute;
    for cand in it {
        let (cand_wins, r) = prefer(cand, best);
        if cand_wins {
            best = cand;
            reason = r;
        } else {
            // Remember why the incumbent survived its closest challenge.
            reason = r;
        }
    }
    Some((best, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, Origin, PathAttrs};
    use crate::types::Ipv4Addr;

    fn route(f: impl FnOnce(&mut Route)) -> Route {
        let mut r = Route {
            attrs: PathAttrs {
                as_path: AsPath::sequence([65002]),
                next_hop: Ipv4Addr(0x0A000001),
                ..Default::default()
            },
            from_peer: Some(1),
            peer_router_id: 1,
        };
        f(&mut r);
        r
    }

    #[test]
    fn local_pref_dominates() {
        let a = route(|r| {
            r.attrs.local_pref = Some(200);
            r.attrs.as_path = AsPath::sequence([1, 2, 3, 4]);
        });
        let b = route(|r| r.attrs.local_pref = Some(100));
        let (wins, reason) = prefer(&a, &b);
        assert!(wins, "higher LOCAL_PREF wins despite longer path");
        assert_eq!(reason, DecisionReason::LocalPref);
    }

    #[test]
    fn shorter_path_wins() {
        let a = route(|r| r.attrs.as_path = AsPath::sequence([1]));
        let b = route(|r| r.attrs.as_path = AsPath::sequence([1, 2]));
        let (wins, reason) = prefer(&a, &b);
        assert!(wins);
        assert_eq!(reason, DecisionReason::AsPathLen);
    }

    #[test]
    fn origin_ordering() {
        let a = route(|r| r.attrs.origin = Origin::Igp);
        let b = route(|r| r.attrs.origin = Origin::Incomplete);
        let (wins, reason) = prefer(&a, &b);
        assert!(wins);
        assert_eq!(reason, DecisionReason::Origin);
    }

    #[test]
    fn med_only_within_same_neighbor_as() {
        let a = route(|r| {
            r.attrs.as_path = AsPath::sequence([7, 9]);
            r.attrs.med = Some(10);
        });
        let b = route(|r| {
            r.attrs.as_path = AsPath::sequence([7, 8]);
            r.attrs.med = Some(5);
        });
        let (wins, reason) = prefer(&b, &a);
        assert!(wins, "same first AS: lower MED wins");
        assert_eq!(reason, DecisionReason::Med);

        // Different first AS: MED skipped, falls to router id.
        let c = route(|r| {
            r.attrs.as_path = AsPath::sequence([6, 9]);
            r.attrs.med = Some(999);
            r.peer_router_id = 0;
        });
        let (wins, reason) = prefer(&c, &a);
        assert!(wins);
        assert_eq!(reason, DecisionReason::RouterId);
    }

    #[test]
    fn local_origination_beats_learned() {
        let mut local = Route::local(PathAttrs::originated(Ipv4Addr(1)));
        local.attrs.local_pref = Some(100);
        let learned = route(|r| r.attrs.local_pref = Some(100));
        // Same LP; local has shorter (empty) path, which decides first.
        let (wins, reason) = prefer(&local, &learned);
        assert!(wins);
        assert_eq!(reason, DecisionReason::AsPathLen);
    }

    #[test]
    fn router_id_tiebreak() {
        let a = route(|r| r.peer_router_id = 5);
        let b = route(|r| r.peer_router_id = 9);
        let (wins, reason) = prefer(&a, &b);
        assert!(wins);
        assert_eq!(reason, DecisionReason::RouterId);
    }

    #[test]
    fn select_finds_overall_best() {
        let routes = [
            route(|r| {
                r.attrs.local_pref = Some(100);
                r.peer_router_id = 3;
            }),
            route(|r| {
                r.attrs.local_pref = Some(300);
                r.peer_router_id = 2;
            }),
            route(|r| {
                r.attrs.local_pref = Some(200);
                r.peer_router_id = 1;
            }),
        ];
        let (best, _) = select(routes.iter()).unwrap();
        assert_eq!(best.attrs.local_pref, Some(300));
    }

    #[test]
    fn select_empty_is_none() {
        assert!(select(std::iter::empty()).is_none());
    }

    #[test]
    fn select_single_is_only_route() {
        let r = route(|_| {});
        let (_, reason) = select(std::iter::once(&r)).unwrap();
        assert_eq!(reason, DecisionReason::OnlyRoute);
    }

    #[test]
    fn preference_is_total_and_antisymmetric() {
        // For distinguishable routes, exactly one direction wins.
        let a = route(|r| r.attrs.local_pref = Some(110));
        let b = route(|r| r.attrs.local_pref = Some(120));
        let (ab, _) = prefer(&a, &b);
        let (ba, _) = prefer(&b, &a);
        assert!(ab != ba);
    }
}
