//! The per-neighbor BGP session finite-state machine.
//!
//! The simulator's reliable channel plays the role of TCP, so the
//! Connect/Active states collapse into the transport's session-up event:
//! `Idle --(transport up)--> OpenSent --(OPEN ok)--> OpenConfirm
//! --(KEEPALIVE)--> Established`. Every deviation produces an
//! [`FsmEvent`] the router turns into a NOTIFICATION + reset, per RFC 4271.

use serde::{Deserialize, Serialize};

/// Session state (RFC 4271 §8.2.2, transport states folded into `Idle`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SessionState {
    /// No transport session; nothing sent.
    #[default]
    Idle,
    /// Transport is up and our OPEN is sent.
    OpenSent,
    /// Peer's OPEN accepted, our KEEPALIVE sent.
    OpenConfirm,
    /// Full routing exchange in progress.
    Established,
}

/// What the FSM tells the router to do after consuming an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmEvent {
    /// No externally visible action.
    None,
    /// Session reached Established: originate and sync the table.
    SessionEstablished,
    /// Protocol violation: send NOTIFICATION with these codes and reset.
    ProtocolError {
        /// NOTIFICATION error code.
        code: u8,
        /// NOTIFICATION error subcode.
        subcode: u8,
        /// Human-readable reason for the trace.
        reason: &'static str,
    },
}

/// Per-neighbor FSM with negotiated timers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PeerFsm {
    /// Current state.
    pub state: SessionState,
    /// Hold time agreed with the peer (seconds); 0 disables keepalives.
    pub negotiated_hold: u16,
}

impl PeerFsm {
    /// Transport session came up: we send OPEN and move to OpenSent.
    pub fn on_transport_up(&mut self) {
        self.state = SessionState::OpenSent;
    }

    /// Transport session dropped: back to Idle, forget negotiation.
    pub fn on_transport_down(&mut self) {
        self.state = SessionState::Idle;
        self.negotiated_hold = 0;
    }

    /// Peer's OPEN arrived. `asn_ok` is whether the peer AS matched the
    /// configured expectation.
    pub fn on_open(&mut self, asn_ok: bool, my_hold: u16, their_hold: u16) -> FsmEvent {
        match self.state {
            SessionState::OpenSent => {
                if !asn_ok {
                    return FsmEvent::ProtocolError {
                        code: crate::wire::notif::OPEN_ERROR,
                        subcode: 2, // Bad Peer AS
                        reason: "peer AS does not match configuration",
                    };
                }
                self.negotiated_hold = my_hold.min(their_hold);
                self.state = SessionState::OpenConfirm;
                FsmEvent::None
            }
            _ => FsmEvent::ProtocolError {
                code: crate::wire::notif::FSM_ERROR,
                subcode: 0,
                reason: "OPEN outside OpenSent",
            },
        }
    }

    /// Peer's KEEPALIVE arrived.
    pub fn on_keepalive(&mut self) -> FsmEvent {
        match self.state {
            SessionState::OpenConfirm => {
                self.state = SessionState::Established;
                FsmEvent::SessionEstablished
            }
            SessionState::Established => FsmEvent::None,
            _ => FsmEvent::ProtocolError {
                code: crate::wire::notif::FSM_ERROR,
                subcode: 0,
                reason: "KEEPALIVE before OPEN exchange",
            },
        }
    }

    /// Peer's UPDATE arrived (validity of the body is the router's concern).
    pub fn on_update(&mut self) -> FsmEvent {
        match self.state {
            SessionState::Established => FsmEvent::None,
            _ => FsmEvent::ProtocolError {
                code: crate::wire::notif::FSM_ERROR,
                subcode: 0,
                reason: "UPDATE outside Established",
            },
        }
    }

    /// Keepalive interval derived from the negotiated hold time (hold/3).
    pub fn keepalive_secs(&self) -> u16 {
        self.negotiated_hold / 3
    }

    /// Whether routing messages may flow.
    pub fn is_established(&self) -> bool {
        self.state == SessionState::Established
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_to_established() {
        let mut f = PeerFsm::default();
        assert_eq!(f.state, SessionState::Idle);
        f.on_transport_up();
        assert_eq!(f.state, SessionState::OpenSent);
        assert_eq!(f.on_open(true, 90, 30), FsmEvent::None);
        assert_eq!(f.state, SessionState::OpenConfirm);
        assert_eq!(f.negotiated_hold, 30, "hold time is the minimum of both");
        assert_eq!(f.on_keepalive(), FsmEvent::SessionEstablished);
        assert!(f.is_established());
        assert_eq!(f.keepalive_secs(), 10);
    }

    #[test]
    fn bad_peer_as_rejected() {
        let mut f = PeerFsm::default();
        f.on_transport_up();
        match f.on_open(false, 90, 90) {
            FsmEvent::ProtocolError { code, subcode, .. } => {
                assert_eq!((code, subcode), (crate::wire::notif::OPEN_ERROR, 2));
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn update_before_established_is_fsm_error() {
        let mut f = PeerFsm::default();
        f.on_transport_up();
        assert!(matches!(f.on_update(), FsmEvent::ProtocolError { .. }));
    }

    #[test]
    fn keepalive_in_established_is_benign() {
        let mut f = PeerFsm::default();
        f.on_transport_up();
        f.on_open(true, 90, 90);
        f.on_keepalive();
        assert_eq!(f.on_keepalive(), FsmEvent::None);
    }

    #[test]
    fn open_twice_is_fsm_error() {
        let mut f = PeerFsm::default();
        f.on_transport_up();
        f.on_open(true, 90, 90);
        assert!(matches!(
            f.on_open(true, 90, 90),
            FsmEvent::ProtocolError { .. }
        ));
    }

    #[test]
    fn transport_down_resets_negotiation() {
        let mut f = PeerFsm::default();
        f.on_transport_up();
        f.on_open(true, 90, 60);
        f.on_transport_down();
        assert_eq!(f.state, SessionState::Idle);
        assert_eq!(f.negotiated_hold, 0);
    }
}
