//! # dice-bgp — a BIRD-like BGP router substrate
//!
//! A compact but real BGP-4 implementation in the spirit of the BIRD daemon,
//! built as the system-under-test for DiCE (SIGCOMM'11). It implements the
//! code paths the paper instruments:
//!
//! * **Wire format** ([`wire`]): RFC 4271 framing and the OPEN / UPDATE /
//!   NOTIFICATION / KEEPALIVE codecs, with the full §6 error taxonomy.
//! * **Session FSM** ([`fsm`]): Idle → OpenSent → OpenConfirm → Established,
//!   hold/keepalive timers, NOTIFICATION-on-error.
//! * **RIBs** ([`rib`]): Adj-RIB-In, Loc-RIB (with best-route flip counters
//!   used by oscillation checkers), Adj-RIB-Out with delta suppression.
//! * **Decision process** ([`decision`]): the §9.1 ranking with decisive-step
//!   reporting.
//! * **Policy engine** ([`policy`]): BIRD-style filters as *interpreted
//!   data* — the property DiCE exploits to cover configuration with concolic
//!   execution — plus a Gao–Rexford policy generator for Internet-like
//!   topologies.
//! * **Config language** ([`config`]): a BIRD-lite textual configuration
//!   parser (`router`, `network`, `neighbor`, `filter` blocks).
//! * **The router** ([`router`]): a [`dice_netsim::Node`] wiring it all
//!   together, including seeded-bug switches used by the fault-detection
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod config;
pub mod decision;
pub mod fsm;
pub mod policy;
pub mod rib;
pub mod router;
pub mod types;
pub mod wire;

pub use attrs::{AsPath, AsPathSegment, Origin, PathAttrs, RawAttr, SegmentKind};
pub use config::{BugSwitches, ConfigError, NeighborConfig, RouterConfig};
pub use decision::{prefer, select, DecisionReason};
pub use fsm::{FsmEvent, PeerFsm, SessionState};
pub use policy::{Action, Match, Policy, PrefixFilter, Rule, Verdict};
pub use rib::{AdjRibIn, AdjRibOut, LocRib, Route, Selected};
pub use router::{BgpRouter, RouterStats};
pub use types::{addr, net, Asn, Community, Ipv4Addr, Ipv4Net, RouterId};
pub use wire::{decode, encode, DecodeError, Message, NotificationMsg, OpenMsg, UpdateMsg};
