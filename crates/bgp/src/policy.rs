//! The data-driven routing policy engine.
//!
//! Policies are *data*, interpreted rule-by-rule at run time — exactly like
//! BIRD's filter language. This matters for DiCE: because the interpreter's
//! branches depend on both the input route and the configuration, concolic
//! execution over the interpreter records constraints that cover **code and
//! configuration simultaneously** (the paper's §3 point about BIRD's
//! configuration interpreter).
//!
//! A policy is an ordered list of rules; a rule is a conjunction of matches,
//! a list of actions, and an optional terminal verdict. The first rule whose
//! matches all hold applies its actions; if it carries a verdict, evaluation
//! stops. Routes that fall off the end get the policy default.

use crate::attrs::{Origin, PathAttrs};
use crate::types::{Asn, Community, Ipv4Net};
use serde::{Deserialize, Serialize};

/// One entry of a prefix set: a base prefix plus an acceptable length range
/// (BIRD's `10.0.0.0/8{8,24}` notation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixFilter {
    /// Base prefix that must cover the candidate.
    pub net: Ipv4Net,
    /// Minimum acceptable prefix length.
    pub min_len: u8,
    /// Maximum acceptable prefix length.
    pub max_len: u8,
}

impl PrefixFilter {
    /// Exact-match filter for one prefix.
    pub fn exact(net: Ipv4Net) -> Self {
        PrefixFilter {
            net,
            min_len: net.len(),
            max_len: net.len(),
        }
    }

    /// `net` or any more-specific prefix (`{len,32}`).
    pub fn or_longer(net: Ipv4Net) -> Self {
        PrefixFilter {
            net,
            min_len: net.len(),
            max_len: 32,
        }
    }

    /// Whether `candidate` matches this filter.
    pub fn matches(&self, candidate: &Ipv4Net) -> bool {
        self.net.covers(candidate)
            && candidate.len() >= self.min_len
            && candidate.len() <= self.max_len
    }
}

/// A predicate over (prefix, attributes, peer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Match {
    /// Prefix matches any filter in the set.
    PrefixIn(Vec<PrefixFilter>),
    /// Prefix length within the inclusive range.
    PrefixLenIn {
        /// Minimum length.
        min: u8,
        /// Maximum length.
        max: u8,
    },
    /// AS_PATH mentions the given AS anywhere.
    AsPathContains(Asn),
    /// AS_PATH length (sets count 1) is at most this.
    AsPathLenAtMost(u32),
    /// AS_PATH originates from the given AS.
    OriginatedBy(Asn),
    /// The COMMUNITY attribute carries this value.
    HasCommunity(Community),
    /// The ORIGIN attribute equals this value.
    OriginIs(Origin),
    /// Always true (for unconditional action rules).
    Any,
}

impl Match {
    /// Evaluate the predicate on a candidate route.
    pub fn eval(&self, prefix: &Ipv4Net, attrs: &PathAttrs) -> bool {
        match self {
            Match::PrefixIn(filters) => filters.iter().any(|f| f.matches(prefix)),
            Match::PrefixLenIn { min, max } => prefix.len() >= *min && prefix.len() <= *max,
            Match::AsPathContains(asn) => attrs.as_path.contains(*asn),
            Match::AsPathLenAtMost(n) => attrs.as_path.path_len() <= *n,
            Match::OriginatedBy(asn) => attrs.as_path.origin_asn() == Some(*asn),
            Match::HasCommunity(c) => attrs.has_community(*c),
            Match::OriginIs(o) => attrs.origin == *o,
            Match::Any => true,
        }
    }
}

/// An attribute transformation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Set LOCAL_PREF.
    SetLocalPref(u32),
    /// Set MED.
    SetMed(u32),
    /// Add a community value.
    AddCommunity(Community),
    /// Remove a community value.
    RemoveCommunity(Community),
    /// Prepend own AS `count` extra times at export.
    Prepend(u8),
}

impl Action {
    /// Apply the transformation to an attribute bag. `own_asn` is needed
    /// for prepending.
    pub fn apply(&self, attrs: &mut PathAttrs, own_asn: Asn) {
        match self {
            Action::SetLocalPref(v) => attrs.local_pref = Some(*v),
            Action::SetMed(v) => attrs.med = Some(*v),
            Action::AddCommunity(c) => {
                attrs.communities.insert(*c);
            }
            Action::RemoveCommunity(c) => {
                attrs.communities.remove(c);
            }
            Action::Prepend(count) => attrs.as_path.prepend(own_asn, *count),
        }
    }
}

/// Accept or reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Let the route through (with accumulated modifications).
    Accept,
    /// Drop the route.
    Reject,
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// All must hold for the rule to fire (empty = always fires).
    pub matches: Vec<Match>,
    /// Applied in order when the rule fires.
    pub actions: Vec<Action>,
    /// Terminal verdict; `None` continues to the next rule.
    pub verdict: Option<Verdict>,
}

impl Rule {
    /// A rule that accepts everything it matches.
    pub fn accept(matches: Vec<Match>) -> Self {
        Rule {
            matches,
            actions: vec![],
            verdict: Some(Verdict::Accept),
        }
    }

    /// A rule that rejects everything it matches.
    pub fn reject(matches: Vec<Match>) -> Self {
        Rule {
            matches,
            actions: vec![],
            verdict: Some(Verdict::Reject),
        }
    }
}

/// An ordered rule list with a default verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    /// Policy name (referenced from neighbor configs).
    pub name: String,
    /// Rules, evaluated first-match-wins.
    pub rules: Vec<Rule>,
    /// Verdict when no rule produced one.
    pub default: Verdict,
}

impl Policy {
    /// The accept-everything policy.
    pub fn accept_all(name: impl Into<String>) -> Self {
        Policy {
            name: name.into(),
            rules: vec![],
            default: Verdict::Accept,
        }
    }

    /// The reject-everything policy.
    pub fn reject_all(name: impl Into<String>) -> Self {
        Policy {
            name: name.into(),
            rules: vec![],
            default: Verdict::Reject,
        }
    }

    /// Interpret the policy on `(prefix, attrs)`. On `Accept`, returns the
    /// transformed attribute bag; on `Reject`, `None`.
    ///
    /// This interpreter is deliberately written as a sequence of
    /// data-dependent branches — its concolic twin in `dice-core` mirrors it
    /// branch for branch.
    pub fn apply(&self, prefix: &Ipv4Net, attrs: &PathAttrs, own_asn: Asn) -> Option<PathAttrs> {
        let mut out = attrs.clone();
        for rule in &self.rules {
            let fires = rule.matches.iter().all(|m| m.eval(prefix, &out));
            if fires {
                for a in &rule.actions {
                    a.apply(&mut out, own_asn);
                }
                match rule.verdict {
                    Some(Verdict::Accept) => return Some(out),
                    Some(Verdict::Reject) => return None,
                    None => {}
                }
            }
        }
        match self.default {
            Verdict::Accept => Some(out),
            Verdict::Reject => None,
        }
    }

    /// Rough complexity measure (rule count + match/action arity), used by
    /// the code-vs-config experiment.
    pub fn complexity(&self) -> usize {
        self.rules
            .iter()
            .map(|r| 1 + r.matches.len() + r.actions.len())
            .sum()
    }
}

/// Communities used by the Gao–Rexford policy generator to tag where a
/// route was learned.
pub mod gao_rexford {
    use super::*;
    use crate::types::Community;

    /// Community tag: learned from a customer.
    pub fn tag_customer(asn: Asn) -> Community {
        Community::from_pair(asn.0, 1)
    }
    /// Community tag: learned from a peer.
    pub fn tag_peer(asn: Asn) -> Community {
        Community::from_pair(asn.0, 2)
    }
    /// Community tag: learned from a provider.
    pub fn tag_provider(asn: Asn) -> Community {
        Community::from_pair(asn.0, 3)
    }

    /// LOCAL_PREF assigned to customer routes.
    pub const LP_CUSTOMER: u32 = 200;
    /// LOCAL_PREF assigned to peer routes.
    pub const LP_PEER: u32 = 100;
    /// LOCAL_PREF assigned to provider routes.
    pub const LP_PROVIDER: u32 = 50;

    /// Import policy for a neighbor with the given role: tag and set
    /// LOCAL_PREF by the Gao–Rexford preference order
    /// (customer > peer > provider).
    pub fn import_policy(own: Asn, role: dice_netsim::NeighborRole) -> Policy {
        use dice_netsim::NeighborRole as R;
        let (lp, tag) = match role {
            R::Customer => (LP_CUSTOMER, tag_customer(own)),
            R::Peer => (LP_PEER, tag_peer(own)),
            R::Provider | R::Unlabeled => (LP_PROVIDER, tag_provider(own)),
        };
        Policy {
            name: format!("gr-import-{:?}", role).to_lowercase(),
            rules: vec![Rule {
                matches: vec![Match::Any],
                actions: vec![Action::SetLocalPref(lp), Action::AddCommunity(tag)],
                verdict: Some(Verdict::Accept),
            }],
            default: Verdict::Accept,
        }
    }

    /// Export policy toward a neighbor with the given role: the
    /// no-valley rule — routes learned from peers/providers are exported
    /// only to customers.
    pub fn export_policy(own: Asn, role: dice_netsim::NeighborRole) -> Policy {
        use dice_netsim::NeighborRole as R;
        match role {
            // To customers: everything.
            R::Customer => Policy::accept_all(format!("gr-export-{role:?}").to_lowercase()),
            // To peers and providers: own routes + customer routes only.
            R::Peer | R::Provider | R::Unlabeled => Policy {
                name: format!("gr-export-{role:?}").to_lowercase(),
                rules: vec![
                    Rule::reject(vec![Match::HasCommunity(tag_peer(own))]),
                    Rule::reject(vec![Match::HasCommunity(tag_provider(own))]),
                ],
                default: Verdict::Accept,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::net;

    fn attrs_with_path(asns: &[u16]) -> PathAttrs {
        PathAttrs {
            as_path: crate::attrs::AsPath::sequence(asns.iter().copied()),
            next_hop: crate::types::Ipv4Addr(0x0A000001),
            ..Default::default()
        }
    }

    #[test]
    fn prefix_filter_range() {
        let f = PrefixFilter {
            net: net("10.0.0.0/8"),
            min_len: 16,
            max_len: 24,
        };
        assert!(f.matches(&net("10.1.0.0/16")));
        assert!(f.matches(&net("10.1.2.0/24")));
        assert!(!f.matches(&net("10.0.0.0/8")), "too short");
        assert!(!f.matches(&net("10.1.2.128/25")), "too long");
        assert!(!f.matches(&net("11.0.0.0/16")), "outside base");
    }

    #[test]
    fn exact_and_or_longer() {
        let e = PrefixFilter::exact(net("192.0.2.0/24"));
        assert!(e.matches(&net("192.0.2.0/24")));
        assert!(!e.matches(&net("192.0.2.0/25")));
        let o = PrefixFilter::or_longer(net("192.0.2.0/24"));
        assert!(o.matches(&net("192.0.2.0/25")));
        assert!(o.matches(&net("192.0.2.128/26")));
        assert!(!o.matches(&net("192.0.0.0/16")));
    }

    #[test]
    fn first_match_wins() {
        let p = Policy {
            name: "t".into(),
            rules: vec![
                Rule {
                    matches: vec![Match::PrefixIn(vec![PrefixFilter::or_longer(net(
                        "10.0.0.0/8",
                    ))])],
                    actions: vec![Action::SetLocalPref(500)],
                    verdict: Some(Verdict::Accept),
                },
                Rule::reject(vec![Match::Any]),
            ],
            default: Verdict::Reject,
        };
        let a = attrs_with_path(&[65002]);
        let hit = p.apply(&net("10.1.0.0/16"), &a, Asn(65001)).unwrap();
        assert_eq!(hit.local_pref, Some(500));
        assert!(p.apply(&net("172.16.0.0/12"), &a, Asn(65001)).is_none());
    }

    #[test]
    fn non_terminal_rules_accumulate() {
        let p = Policy {
            name: "t".into(),
            rules: vec![
                Rule {
                    matches: vec![Match::Any],
                    actions: vec![Action::AddCommunity(Community::from_pair(1, 1))],
                    verdict: None,
                },
                Rule {
                    matches: vec![Match::Any],
                    actions: vec![Action::AddCommunity(Community::from_pair(1, 2))],
                    verdict: Some(Verdict::Accept),
                },
            ],
            default: Verdict::Reject,
        };
        let out = p
            .apply(&net("10.0.0.0/8"), &attrs_with_path(&[2]), Asn(1))
            .unwrap();
        assert!(out.has_community(Community::from_pair(1, 1)));
        assert!(out.has_community(Community::from_pair(1, 2)));
    }

    #[test]
    fn aspath_matches() {
        let a = attrs_with_path(&[65002, 65003, 65004]);
        assert!(Match::AsPathContains(Asn(65003)).eval(&net("10.0.0.0/8"), &a));
        assert!(!Match::AsPathContains(Asn(65009)).eval(&net("10.0.0.0/8"), &a));
        assert!(Match::OriginatedBy(Asn(65004)).eval(&net("10.0.0.0/8"), &a));
        assert!(!Match::OriginatedBy(Asn(65002)).eval(&net("10.0.0.0/8"), &a));
        assert!(Match::AsPathLenAtMost(3).eval(&net("10.0.0.0/8"), &a));
        assert!(!Match::AsPathLenAtMost(2).eval(&net("10.0.0.0/8"), &a));
    }

    #[test]
    fn actions_transform() {
        let mut a = attrs_with_path(&[65002]);
        Action::SetLocalPref(250).apply(&mut a, Asn(65001));
        Action::SetMed(10).apply(&mut a, Asn(65001));
        Action::AddCommunity(Community::from_pair(65001, 7)).apply(&mut a, Asn(65001));
        Action::Prepend(2).apply(&mut a, Asn(65001));
        assert_eq!(a.local_pref, Some(250));
        assert_eq!(a.med, Some(10));
        assert!(a.has_community(Community::from_pair(65001, 7)));
        assert_eq!(a.as_path.path_len(), 3);
        assert_eq!(a.as_path.first_asn(), Some(Asn(65001)));
        Action::RemoveCommunity(Community::from_pair(65001, 7)).apply(&mut a, Asn(65001));
        assert!(!a.has_community(Community::from_pair(65001, 7)));
    }

    #[test]
    fn default_verdicts() {
        let acc = Policy::accept_all("a");
        let rej = Policy::reject_all("r");
        let a = attrs_with_path(&[2]);
        assert!(acc.apply(&net("10.0.0.0/8"), &a, Asn(1)).is_some());
        assert!(rej.apply(&net("10.0.0.0/8"), &a, Asn(1)).is_none());
    }

    #[test]
    fn gao_rexford_no_valley() {
        use dice_netsim::NeighborRole as R;
        let own = Asn(65001);
        // Route learned from a peer, tagged by import...
        let imported = gao_rexford::import_policy(own, R::Peer)
            .apply(&net("10.0.0.0/8"), &attrs_with_path(&[65002]), own)
            .unwrap();
        assert_eq!(imported.local_pref, Some(gao_rexford::LP_PEER));
        // ...must not be exported to another peer or a provider.
        assert!(gao_rexford::export_policy(own, R::Peer)
            .apply(&net("10.0.0.0/8"), &imported, own)
            .is_none());
        assert!(gao_rexford::export_policy(own, R::Provider)
            .apply(&net("10.0.0.0/8"), &imported, own)
            .is_none());
        // ...but may be exported to a customer.
        assert!(gao_rexford::export_policy(own, R::Customer)
            .apply(&net("10.0.0.0/8"), &imported, own)
            .is_some());
    }

    #[test]
    fn gao_rexford_customer_routes_go_everywhere() {
        use dice_netsim::NeighborRole as R;
        let own = Asn(65001);
        let imported = gao_rexford::import_policy(own, R::Customer)
            .apply(&net("10.0.0.0/8"), &attrs_with_path(&[65002]), own)
            .unwrap();
        assert_eq!(imported.local_pref, Some(gao_rexford::LP_CUSTOMER));
        for role in [R::Customer, R::Peer, R::Provider] {
            assert!(
                gao_rexford::export_policy(own, role)
                    .apply(&net("10.0.0.0/8"), &imported, own)
                    .is_some(),
                "customer routes export to {role:?}"
            );
        }
    }

    #[test]
    fn complexity_counts() {
        let p = Policy {
            name: "c".into(),
            rules: vec![Rule {
                matches: vec![Match::Any, Match::OriginIs(Origin::Igp)],
                actions: vec![Action::SetMed(1)],
                verdict: Some(Verdict::Accept),
            }],
            default: Verdict::Accept,
        };
        assert_eq!(p.complexity(), 4);
        assert_eq!(Policy::accept_all("x").complexity(), 0);
    }
}
