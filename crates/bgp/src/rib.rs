//! Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//!
//! All maps are `BTreeMap`s so iteration order — and therefore the entire
//! simulation — is deterministic.

use crate::attrs::PathAttrs;
use crate::decision::DecisionReason;
use crate::types::Ipv4Net;
use dice_netsim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A route candidate: attributes plus provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Attribute bag after import-policy transformation.
    pub attrs: PathAttrs,
    /// The peer we learned it from; `None` for locally originated routes.
    pub from_peer: Option<u32>,
    /// Peer's router id (decision-process tiebreak).
    pub peer_router_id: u32,
}

impl Route {
    /// A locally originated route.
    pub fn local(attrs: PathAttrs) -> Self {
        Route {
            attrs,
            from_peer: None,
            peer_router_id: 0,
        }
    }
}

/// Per-peer store of accepted routes (post-import-policy).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdjRibIn {
    tables: BTreeMap<u32, BTreeMap<Ipv4Net, Route>>,
}

impl AdjRibIn {
    /// Insert or replace the route for `prefix` from `peer`.
    pub fn insert(&mut self, peer: NodeId, prefix: Ipv4Net, route: Route) {
        self.tables.entry(peer.0).or_default().insert(prefix, route);
    }

    /// Remove the route for `prefix` from `peer`; returns whether present.
    pub fn remove(&mut self, peer: NodeId, prefix: &Ipv4Net) -> bool {
        self.tables
            .get_mut(&peer.0)
            .map(|t| t.remove(prefix).is_some())
            .unwrap_or(false)
    }

    /// Drop every route learned from `peer` (session loss), returning the
    /// affected prefixes.
    pub fn flush_peer(&mut self, peer: NodeId) -> Vec<Ipv4Net> {
        self.tables
            .remove(&peer.0)
            .map(|t| t.into_keys().collect())
            .unwrap_or_default()
    }

    /// All candidate routes for `prefix` across peers, in peer order.
    pub fn candidates<'a>(&'a self, prefix: &'a Ipv4Net) -> impl Iterator<Item = &'a Route> + 'a {
        self.tables.values().filter_map(move |t| t.get(prefix))
    }

    /// The route for `prefix` from a specific peer.
    pub fn get(&self, peer: NodeId, prefix: &Ipv4Net) -> Option<&Route> {
        self.tables.get(&peer.0).and_then(|t| t.get(prefix))
    }

    /// Total number of stored routes.
    pub fn route_count(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// All prefixes known from any peer.
    pub fn all_prefixes(&self) -> Vec<Ipv4Net> {
        let mut v: Vec<Ipv4Net> = self
            .tables
            .values()
            .flat_map(|t| t.keys().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Approximate byte footprint for checkpoint accounting.
    pub fn approx_bytes(&self) -> usize {
        self.route_count() * 64
    }
}

/// A selected best route with the decision step that chose it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selected {
    /// The winning route.
    pub route: Route,
    /// Which decision-process step was decisive.
    pub reason: DecisionReason,
}

/// The local RIB: one best route per prefix.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocRib {
    routes: BTreeMap<Ipv4Net, Selected>,
    /// Count of best-route changes per prefix (oscillation evidence for the
    /// DiCE checkers).
    pub flips: BTreeMap<Ipv4Net, u64>,
}

impl LocRib {
    /// Install `sel` as best for `prefix`; returns `true` when this changed
    /// the selection (and bumps the flip counter).
    pub fn install(&mut self, prefix: Ipv4Net, sel: Selected) -> bool {
        let changed = match self.routes.get(&prefix) {
            Some(prev) => prev.route != sel.route,
            None => true,
        };
        if changed {
            *self.flips.entry(prefix).or_insert(0) += 1;
            self.routes.insert(prefix, sel);
        }
        changed
    }

    /// Remove the best route for `prefix`; returns `true` when present.
    pub fn withdraw(&mut self, prefix: &Ipv4Net) -> bool {
        let removed = self.routes.remove(prefix).is_some();
        if removed {
            *self.flips.entry(*prefix).or_insert(0) += 1;
        }
        removed
    }

    /// Current best route for `prefix`.
    pub fn best(&self, prefix: &Ipv4Net) -> Option<&Selected> {
        self.routes.get(prefix)
    }

    /// Iterate all (prefix, best) pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Net, &Selected)> {
        self.routes.iter()
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Total best-route flips across prefixes since start.
    pub fn total_flips(&self) -> u64 {
        self.flips.values().sum()
    }

    /// Approximate byte footprint for checkpoint accounting.
    pub fn approx_bytes(&self) -> usize {
        self.routes.len() * 72 + self.flips.len() * 12
    }
}

/// What we last advertised to each peer, to compute deltas and withdrawals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdjRibOut {
    tables: BTreeMap<u32, BTreeMap<Ipv4Net, PathAttrs>>,
}

impl AdjRibOut {
    /// Record an advertisement; returns `true` if it differs from what was
    /// previously sent (callers skip duplicate updates).
    pub fn advertise(&mut self, peer: NodeId, prefix: Ipv4Net, attrs: PathAttrs) -> bool {
        let t = self.tables.entry(peer.0).or_default();
        match t.get(&prefix) {
            Some(prev) if *prev == attrs => false,
            _ => {
                t.insert(prefix, attrs);
                true
            }
        }
    }

    /// Record a withdrawal; returns `true` if the prefix had been advertised.
    pub fn withdraw(&mut self, peer: NodeId, prefix: &Ipv4Net) -> bool {
        self.tables
            .get_mut(&peer.0)
            .map(|t| t.remove(prefix).is_some())
            .unwrap_or(false)
    }

    /// Forget everything sent to `peer` (session loss).
    pub fn flush_peer(&mut self, peer: NodeId) {
        self.tables.remove(&peer.0);
    }

    /// What was last sent to `peer` for `prefix`.
    pub fn sent(&self, peer: NodeId, prefix: &Ipv4Net) -> Option<&PathAttrs> {
        self.tables.get(&peer.0).and_then(|t| t.get(prefix))
    }

    /// Total advertised entries.
    pub fn route_count(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Approximate byte footprint for checkpoint accounting.
    pub fn approx_bytes(&self) -> usize {
        self.route_count() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::types::{net, Ipv4Addr};

    fn route(path: &[u16], peer: u32) -> Route {
        Route {
            attrs: PathAttrs {
                as_path: AsPath::sequence(path.iter().copied()),
                next_hop: Ipv4Addr(0x0A000001),
                ..Default::default()
            },
            from_peer: Some(peer),
            peer_router_id: peer,
        }
    }

    #[test]
    fn adj_rib_in_insert_replace_remove() {
        let mut rib = AdjRibIn::default();
        let p = net("10.0.0.0/8");
        rib.insert(NodeId(1), p, route(&[65002], 1));
        assert_eq!(rib.route_count(), 1);
        rib.insert(NodeId(1), p, route(&[65003], 1)); // replace
        assert_eq!(rib.route_count(), 1);
        assert_eq!(
            rib.get(NodeId(1), &p).unwrap().attrs.as_path,
            AsPath::sequence([65003])
        );
        assert!(rib.remove(NodeId(1), &p));
        assert!(!rib.remove(NodeId(1), &p));
        assert_eq!(rib.route_count(), 0);
    }

    #[test]
    fn candidates_span_peers() {
        let mut rib = AdjRibIn::default();
        let p = net("10.0.0.0/8");
        rib.insert(NodeId(1), p, route(&[65002], 1));
        rib.insert(NodeId(2), p, route(&[65003, 65004], 2));
        assert_eq!(rib.candidates(&p).count(), 2);
        assert_eq!(rib.all_prefixes(), vec![p]);
    }

    #[test]
    fn flush_peer_returns_prefixes() {
        let mut rib = AdjRibIn::default();
        rib.insert(NodeId(1), net("10.0.0.0/8"), route(&[2], 1));
        rib.insert(NodeId(1), net("11.0.0.0/8"), route(&[2], 1));
        rib.insert(NodeId(2), net("10.0.0.0/8"), route(&[3], 2));
        let flushed = rib.flush_peer(NodeId(1));
        assert_eq!(flushed.len(), 2);
        assert_eq!(rib.route_count(), 1);
    }

    #[test]
    fn loc_rib_flip_accounting() {
        let mut rib = LocRib::default();
        let p = net("10.0.0.0/8");
        let sel = |peer| Selected {
            route: route(&[65002], peer),
            reason: DecisionReason::OnlyRoute,
        };
        assert!(rib.install(p, sel(1)));
        assert!(!rib.install(p, sel(1)), "same route is not a flip");
        assert!(rib.install(p, sel(2)));
        assert!(rib.withdraw(&p));
        assert!(!rib.withdraw(&p));
        assert_eq!(rib.total_flips(), 3);
    }

    #[test]
    fn adj_rib_out_dedup() {
        let mut out = AdjRibOut::default();
        let p = net("10.0.0.0/8");
        let a = route(&[65001], 0).attrs;
        assert!(out.advertise(NodeId(1), p, a.clone()));
        assert!(
            !out.advertise(NodeId(1), p, a.clone()),
            "identical re-advertisement suppressed"
        );
        let mut b = a.clone();
        b.med = Some(9);
        assert!(out.advertise(NodeId(1), p, b));
        assert!(out.withdraw(NodeId(1), &p));
        assert!(!out.withdraw(NodeId(1), &p));
    }
}
