//! The BGP speaker: a [`dice_netsim::Node`] implementing the full pipeline
//! BIRD runs for each peer — session FSM, UPDATE parsing, import policy,
//! decision process, export policy, and route propagation.
//!
//! The UPDATE path (`handle_update` → `recompute_and_propagate`) is the code
//! DiCE's concolic twin mirrors branch-for-branch; keep the two in sync
//! (see `dice-core/src/handler.rs`).

use core::any::Any;
use std::collections::BTreeSet;

use dice_netsim::{Node, NodeApi, NodeId, SessionEvent, SimDuration};
use serde::{Deserialize, Serialize};

use crate::attrs::PathAttrs;
use crate::config::RouterConfig;
use crate::decision::{select, DecisionReason};
use crate::fsm::{FsmEvent, PeerFsm, SessionState};
use crate::rib::{AdjRibIn, AdjRibOut, LocRib, Route, Selected};
use crate::types::{Community, Ipv4Addr, Ipv4Net};
use crate::wire::{self, Message, NotificationMsg, OpenMsg, UpdateMsg};

/// Timer token layout: `(peer_node_id << 8) | kind`.
mod timer {
    pub const KEEPALIVE: u64 = 1;
    pub const HOLD: u64 = 2;
    pub const DEFERRED_RESET: u64 = 3;

    pub fn token(peer: u32, kind: u64) -> u64 {
        ((peer as u64) << 8) | kind
    }
    pub fn split(token: u64) -> (u32, u64) {
        ((token >> 8) as u32, token & 0xFF)
    }
}

/// Aggregate protocol counters, used by checkers and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// UPDATE messages received.
    pub updates_rx: u64,
    /// UPDATE messages sent.
    pub updates_tx: u64,
    /// KEEPALIVEs received.
    pub keepalives_rx: u64,
    /// NOTIFICATIONs received.
    pub notifications_rx: u64,
    /// NOTIFICATIONs sent.
    pub notifications_tx: u64,
    /// Messages that failed to decode.
    pub decode_errors: u64,
    /// Announcements dropped by AS-path loop detection.
    pub loop_rejects: u64,
    /// Announcements dropped by import policy.
    pub policy_rejects: u64,
}

/// A BIRD-like BGP router node.
#[derive(Debug, Clone)]
pub struct BgpRouter {
    config: RouterConfig,
    fsms: std::collections::BTreeMap<u32, PeerFsm>,
    peer_router_ids: std::collections::BTreeMap<u32, u32>,
    adj_in: AdjRibIn,
    loc_rib: LocRib,
    adj_out: AdjRibOut,
    stats: RouterStats,
}

impl BgpRouter {
    /// Build a router from a validated config.
    pub fn new(config: RouterConfig) -> Self {
        config.validate().expect("invalid router config");
        BgpRouter {
            config,
            fsms: Default::default(),
            peer_router_ids: Default::default(),
            adj_in: AdjRibIn::default(),
            loc_rib: LocRib::default(),
            adj_out: AdjRibOut::default(),
            stats: RouterStats::default(),
        }
    }

    /// This router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The local RIB (best routes).
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// The per-peer accepted routes.
    pub fn adj_rib_in(&self) -> &AdjRibIn {
        &self.adj_in
    }

    /// What this router last advertised to each peer.
    pub fn adj_rib_out(&self) -> &AdjRibOut {
        &self.adj_out
    }

    /// Protocol counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Session FSM state toward `peer`.
    pub fn session_state(&self, peer: NodeId) -> SessionState {
        self.fsms.get(&peer.0).map(|f| f.state).unwrap_or_default()
    }

    fn own_addr(&self) -> Ipv4Addr {
        Ipv4Addr(self.config.router_id.0)
    }

    fn local_route(&self, prefix: &Ipv4Net) -> Option<Route> {
        if self.config.networks.contains(prefix) {
            Some(Route::local(PathAttrs::originated(self.own_addr())))
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Operator actions (invoked via `Simulator::invoke_node`)
    // ------------------------------------------------------------------

    /// Operator action: begin originating `prefix`. When `legitimate` the
    /// prefix is also added to the owned set; a hijack is announcing without
    /// owning.
    pub fn announce_network(&mut self, prefix: Ipv4Net, legitimate: bool, api: &mut NodeApi<'_>) {
        if !self.config.networks.contains(&prefix) {
            self.config.networks.push(prefix);
        }
        if legitimate && !self.config.owned.contains(&prefix) {
            self.config.owned.push(prefix);
        }
        api.trace(
            "config",
            format!("announce {prefix} legitimate={legitimate}"),
        );
        self.recompute_and_propagate(prefix, api);
    }

    /// Operator action: stop originating `prefix`.
    pub fn withdraw_network(&mut self, prefix: Ipv4Net, api: &mut NodeApi<'_>) {
        self.config.networks.retain(|n| n != &prefix);
        api.trace("config", format!("withdraw {prefix}"));
        self.recompute_and_propagate(prefix, api);
    }

    /// Operator action: replace a named policy. Takes effect for routes
    /// processed after the change (a session reset forces re-evaluation,
    /// as with a hard clear on real routers).
    pub fn replace_policy(&mut self, policy: crate::policy::Policy, api: &mut NodeApi<'_>) {
        api.trace("config", format!("replace policy {}", policy.name));
        self.config.policies.insert(policy.name.clone(), policy);
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    fn send_message(&mut self, to: NodeId, msg: &Message, api: &mut NodeApi<'_>, quiet: bool) {
        // Zero-copy wire path: encode straight into a pool-leased buffer.
        let mut buf = api.buf();
        wire::encode_into(msg, buf.as_mut_vec());
        match msg {
            Message::Update(_) => self.stats.updates_tx += 1,
            Message::Notification(_) => self.stats.notifications_tx += 1,
            _ => {}
        }
        if quiet {
            api.send_quiet(to, buf);
        } else {
            api.send(to, buf);
        }
    }

    fn protocol_error(
        &mut self,
        peer: NodeId,
        code: u8,
        subcode: u8,
        reason: &str,
        api: &mut NodeApi<'_>,
    ) {
        api.trace("notif", format!("to {peer}: {code}/{subcode} {reason}"));
        let msg = Message::Notification(NotificationMsg {
            code,
            subcode,
            data: Vec::new(),
        });
        self.send_message(peer, &msg, api, false);
        // Defer the transport reset slightly so the NOTIFICATION is
        // delivered before the channel drops (mirrors TCP close semantics).
        api.set_timer(
            SimDuration::from_millis(10),
            timer::token(peer.0, timer::DEFERRED_RESET),
        );
    }

    fn on_established(&mut self, peer: NodeId, api: &mut NodeApi<'_>) {
        api.trace("session", format!("established with {peer}"));
        let snapshot: Vec<(Ipv4Net, Route)> = self
            .loc_rib
            .iter()
            .map(|(p, s)| (*p, s.route.clone()))
            .collect();
        for (prefix, route) in snapshot {
            self.export_route(peer, prefix, &route, api);
        }
    }

    /// The seeded programming error (see [`crate::config::BugSwitches`]):
    /// returns true when the handler must "crash".
    fn bug_attr_overflow_trips(&self, attrs: &PathAttrs) -> bool {
        self.config.bugs.attr_overflow_crash
            && attrs
                .unknown
                .iter()
                .any(|raw| raw.code >= 0xF0 && raw.value.len() >= 0x90)
    }

    fn handle_update(&mut self, peer: NodeId, upd: UpdateMsg, api: &mut NodeApi<'_>) {
        self.stats.updates_rx += 1;
        let neighbor = match self.config.neighbor(peer) {
            Some(n) => n.clone(),
            None => return,
        };
        let mut affected: BTreeSet<Ipv4Net> = BTreeSet::new();

        for w in &upd.withdrawn {
            if self.adj_in.remove(peer, w) {
                affected.insert(*w);
            }
        }

        if let Some(attrs) = &upd.attrs {
            if !upd.nlri.is_empty() {
                if self.bug_attr_overflow_trips(attrs) {
                    api.crash("seeded bug: unknown-attribute length overflow in update handler");
                    return;
                }
                if attrs.as_path.contains(self.config.asn) {
                    // AS-path loop: ignore the announcements (RFC 4271 §9).
                    self.stats.loop_rejects += 1;
                } else if attrs.as_path.first_asn() != Some(neighbor.asn) {
                    // eBGP first-AS check (RFC 4271 §6.3).
                    self.protocol_error(
                        peer,
                        wire::notif::UPDATE_ERROR,
                        11,
                        "first AS in path is not the peer AS",
                        api,
                    );
                    return;
                } else {
                    let import = self.config.policies[&neighbor.import].clone();
                    let peer_rid = self.peer_router_ids.get(&peer.0).copied().unwrap_or(peer.0);
                    for p in &upd.nlri {
                        match import.apply(p, attrs, self.config.asn) {
                            Some(imported) => {
                                self.adj_in.insert(
                                    peer,
                                    *p,
                                    Route {
                                        attrs: imported,
                                        from_peer: Some(peer.0),
                                        peer_router_id: peer_rid,
                                    },
                                );
                                affected.insert(*p);
                            }
                            None => {
                                self.stats.policy_rejects += 1;
                                if self.adj_in.remove(peer, p) {
                                    affected.insert(*p);
                                }
                            }
                        }
                    }
                }
            }
        }

        for p in affected {
            self.recompute_and_propagate(p, api);
        }
    }

    /// Phase 2 + 3 of the decision process for one prefix: select the best
    /// route and push deltas to every established peer.
    pub fn recompute_and_propagate(&mut self, prefix: Ipv4Net, api: &mut NodeApi<'_>) {
        let mut candidates: Vec<Route> = Vec::new();
        if let Some(local) = self.local_route(&prefix) {
            candidates.push(local);
        }
        candidates.extend(self.adj_in.candidates(&prefix).cloned());

        match select(candidates.iter()) {
            Some((best, reason)) => {
                let best = best.clone();
                if self.loc_rib.install(
                    prefix,
                    Selected {
                        route: best.clone(),
                        reason,
                    },
                ) {
                    api.trace(
                        "best",
                        format!(
                            "{prefix} path[{}] lp{}",
                            best.attrs.as_path,
                            best.attrs.effective_local_pref()
                        ),
                    );
                    let peers: Vec<NodeId> = self.established_peers();
                    for q in peers {
                        self.export_route(q, prefix, &best, api);
                    }
                }
            }
            None => {
                if self.loc_rib.withdraw(&prefix) {
                    api.trace("best", format!("{prefix} unreachable"));
                    let peers: Vec<NodeId> = self.established_peers();
                    for q in peers {
                        if self.adj_out.withdraw(q, &prefix) {
                            let msg = Message::Update(UpdateMsg {
                                withdrawn: vec![prefix],
                                attrs: None,
                                nlri: vec![],
                            });
                            self.send_message(q, &msg, api, false);
                        }
                    }
                }
            }
        }
    }

    fn established_peers(&self) -> Vec<NodeId> {
        self.fsms
            .iter()
            .filter(|(_, f)| f.is_established())
            .map(|(id, _)| NodeId(*id))
            .collect()
    }

    /// Export `route` for `prefix` toward `q`, applying export policy and
    /// eBGP attribute rewriting; sends a withdraw if policy now rejects.
    fn export_route(&mut self, q: NodeId, prefix: Ipv4Net, route: &Route, api: &mut NodeApi<'_>) {
        // Split horizon: never advertise a route back to the peer it came from.
        if route.from_peer == Some(q.0) {
            if self.adj_out.withdraw(q, &prefix) {
                let msg = Message::Update(UpdateMsg {
                    withdrawn: vec![prefix],
                    attrs: None,
                    nlri: vec![],
                });
                self.send_message(q, &msg, api, false);
            }
            return;
        }
        let neighbor = match self.config.neighbor(q) {
            Some(n) => n.clone(),
            None => return,
        };
        let export = self.config.policies[&neighbor.export].clone();
        match export.apply(&prefix, &route.attrs, self.config.asn) {
            Some(mut out) => {
                // eBGP rewrite: prepend own AS, next-hop self, strip
                // LOCAL_PREF and internal (own-ASN) communities.
                out.as_path.prepend(self.config.asn, 1);
                out.next_hop = self.own_addr();
                out.local_pref = None;
                let own = self.config.asn.0;
                out.communities = out
                    .communities
                    .iter()
                    .copied()
                    .filter(|c: &Community| c.asn_part() != own)
                    .collect();
                if self.adj_out.advertise(q, prefix, out.clone()) {
                    let msg = Message::Update(UpdateMsg {
                        withdrawn: vec![],
                        attrs: Some(out),
                        nlri: vec![prefix],
                    });
                    self.send_message(q, &msg, api, false);
                }
            }
            None => {
                if self.adj_out.withdraw(q, &prefix) {
                    let msg = Message::Update(UpdateMsg {
                        withdrawn: vec![prefix],
                        attrs: None,
                        nlri: vec![],
                    });
                    self.send_message(q, &msg, api, false);
                }
            }
        }
    }

    fn arm_session_timers(&mut self, peer: NodeId, api: &mut NodeApi<'_>) {
        let fsm = self.fsms.entry(peer.0).or_default();
        let hold = fsm.negotiated_hold;
        if hold > 0 {
            api.set_timer(
                SimDuration::from_secs(hold as u64),
                timer::token(peer.0, timer::HOLD),
            );
            api.set_timer(
                SimDuration::from_secs(fsm.keepalive_secs().max(1) as u64),
                timer::token(peer.0, timer::KEEPALIVE),
            );
        }
    }
}

impl Node for BgpRouter {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for prefix in self.config.networks.clone() {
            let route = Route::local(PathAttrs::originated(self.own_addr()));
            self.loc_rib.install(
                prefix,
                Selected {
                    route,
                    reason: DecisionReason::OnlyRoute,
                },
            );
            api.trace("best", format!("{prefix} local"));
        }
    }

    fn on_session(&mut self, peer: NodeId, ev: SessionEvent, api: &mut NodeApi<'_>) {
        if self.config.neighbor(peer).is_none() {
            return;
        }
        match ev {
            SessionEvent::Up => {
                let fsm = self.fsms.entry(peer.0).or_default();
                fsm.on_transport_up();
                let open = Message::Open(OpenMsg {
                    version: 4,
                    asn: self.config.asn,
                    hold_time: self.config.hold_time,
                    router_id: self.config.router_id,
                    opt_params: vec![],
                });
                self.send_message(peer, &open, api, false);
                // RFC 4271 arms the hold timer on entering OpenSent. Without
                // it, a lost OPEN leaves both peers deadlocked in OpenSent
                // with nothing scheduled to retry; with it, hold expiry
                // tears the half-open session down and the transport's
                // auto-reconnect drives a fresh OPEN exchange.
                if self.config.hold_time > 0 {
                    api.set_timer(
                        SimDuration::from_secs(self.config.hold_time as u64),
                        timer::token(peer.0, timer::HOLD),
                    );
                }
            }
            SessionEvent::Down(reason) => {
                api.trace("session", format!("down with {peer}: {reason:?}"));
                if let Some(fsm) = self.fsms.get_mut(&peer.0) {
                    fsm.on_transport_down();
                }
                api.cancel_timer(timer::token(peer.0, timer::KEEPALIVE));
                api.cancel_timer(timer::token(peer.0, timer::HOLD));
                api.cancel_timer(timer::token(peer.0, timer::DEFERRED_RESET));
                let affected = self.adj_in.flush_peer(peer);
                self.adj_out.flush_peer(peer);
                for p in affected {
                    self.recompute_and_propagate(p, api);
                }
            }
        }
    }

    fn on_message(&mut self, from: NodeId, data: &[u8], api: &mut NodeApi<'_>) {
        let neighbor = match self.config.neighbor(from) {
            Some(n) => n.clone(),
            None => return,
        };
        let msg = match wire::decode(data) {
            Ok((msg, _)) => msg,
            Err(e) => {
                self.stats.decode_errors += 1;
                let (code, subcode) = e.notification_codes();
                self.protocol_error(from, code, subcode, &format!("decode: {e}"), api);
                return;
            }
        };
        // Any valid message refreshes the hold timer.
        if let Some(fsm) = self.fsms.get(&from.0) {
            if fsm.negotiated_hold > 0 {
                api.set_timer(
                    SimDuration::from_secs(fsm.negotiated_hold as u64),
                    timer::token(from.0, timer::HOLD),
                );
            }
        }
        match msg {
            Message::Open(open) => {
                let asn_ok = open.asn == neighbor.asn;
                let my_hold = self.config.hold_time;
                let fsm = self.fsms.entry(from.0).or_default();
                match fsm.on_open(asn_ok, my_hold, open.hold_time) {
                    FsmEvent::None => {
                        self.peer_router_ids.insert(from.0, open.router_id.0);
                        self.send_message(from, &Message::Keepalive, api, true);
                        self.arm_session_timers(from, api);
                    }
                    FsmEvent::ProtocolError {
                        code,
                        subcode,
                        reason,
                    } => {
                        self.protocol_error(from, code, subcode, reason, api);
                    }
                    FsmEvent::SessionEstablished => unreachable!("OPEN cannot establish"),
                }
            }
            Message::Keepalive => {
                self.stats.keepalives_rx += 1;
                let fsm = self.fsms.entry(from.0).or_default();
                match fsm.on_keepalive() {
                    FsmEvent::SessionEstablished => self.on_established(from, api),
                    FsmEvent::None => {}
                    FsmEvent::ProtocolError {
                        code,
                        subcode,
                        reason,
                    } => {
                        self.protocol_error(from, code, subcode, reason, api);
                    }
                }
            }
            Message::Update(upd) => {
                let fsm = self.fsms.entry(from.0).or_default();
                match fsm.on_update() {
                    FsmEvent::None => self.handle_update(from, upd, api),
                    FsmEvent::ProtocolError {
                        code,
                        subcode,
                        reason,
                    } => {
                        self.protocol_error(from, code, subcode, reason, api);
                    }
                    FsmEvent::SessionEstablished => unreachable!("UPDATE cannot establish"),
                }
            }
            Message::Notification(n) => {
                self.stats.notifications_rx += 1;
                api.trace("notif", format!("from {from}: {}/{}", n.code, n.subcode));
                api.reset_session(from);
            }
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut NodeApi<'_>) {
        let (peer, kind) = timer::split(token);
        let peer = NodeId(peer);
        match kind {
            timer::KEEPALIVE => {
                let (established, interval) = match self.fsms.get(&peer.0) {
                    Some(f) => (
                        f.is_established() || f.state == SessionState::OpenConfirm,
                        f.keepalive_secs(),
                    ),
                    None => (false, 0),
                };
                if established && interval > 0 {
                    self.send_message(peer, &Message::Keepalive, api, true);
                    api.set_timer(
                        SimDuration::from_secs(interval.max(1) as u64),
                        timer::token(peer.0, timer::KEEPALIVE),
                    );
                }
            }
            timer::HOLD => {
                let relevant = self
                    .fsms
                    .get(&peer.0)
                    .map(|f| f.state != SessionState::Idle)
                    .unwrap_or(false);
                if relevant {
                    self.protocol_error(
                        peer,
                        wire::notif::HOLD_EXPIRED,
                        0,
                        "hold timer expired",
                        api,
                    );
                }
            }
            timer::DEFERRED_RESET => {
                api.reset_session(peer);
            }
            _ => {}
        }
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }

    fn state_size(&self) -> usize {
        self.adj_in.approx_bytes()
            + self.loc_rib.approx_bytes()
            + self.adj_out.approx_bytes()
            + self.fsms.len() * 16
            + 256 // config estimate
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::types::{net, Asn, RouterId};
    use dice_netsim::{LinkParams, SimTime, Simulator, Topology};

    /// Convenience: a router config for node `i` (AS 65000+i) peering with
    /// all `neighbors`, accept-all policies.
    pub(crate) fn simple_config(i: u32, neighbors: &[u32]) -> RouterConfig {
        let mut cfg = RouterConfig::minimal(Asn(65000 + i as u16), RouterId(0x0A000000 + i));
        for &n in neighbors {
            cfg = cfg.with_neighbor(NodeId(n), Asn(65000 + n as u16), "all", "all");
        }
        cfg
    }

    fn build_sim(n: usize, edges: &[(u32, u32)], configs: Vec<RouterConfig>) -> Simulator {
        let mut topo = Topology::with_nodes(n);
        for &(a, b) in edges {
            topo.add_edge(
                NodeId(a),
                NodeId(b),
                LinkParams::fixed(dice_netsim::SimDuration::from_millis(5)),
                dice_netsim::Relationship::Unlabeled,
            );
        }
        let mut sim = Simulator::new(topo, 7);
        for (i, cfg) in configs.into_iter().enumerate() {
            sim.set_node(NodeId(i as u32), Box::new(BgpRouter::new(cfg)));
        }
        sim.start();
        sim
    }

    fn router(sim: &Simulator, i: u32) -> &BgpRouter {
        sim.node(NodeId(i))
            .as_any()
            .downcast_ref::<BgpRouter>()
            .unwrap()
    }

    #[test]
    fn two_routers_exchange_routes() {
        let cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/8"));
        let cfg1 = simple_config(1, &[0]).with_network(net("20.0.0.0/8"));
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));

        let r0 = router(&sim, 0);
        let r1 = router(&sim, 1);
        assert!(r0.session_state(NodeId(1)) == SessionState::Established);
        assert!(r1.session_state(NodeId(0)) == SessionState::Established);
        // Each learned the other's prefix.
        assert!(r0.loc_rib().best(&net("20.0.0.0/8")).is_some());
        assert!(r1.loc_rib().best(&net("10.0.0.0/8")).is_some());
        // AS path is the peer's AS.
        let learned = &r0.loc_rib().best(&net("20.0.0.0/8")).unwrap().route;
        assert_eq!(learned.attrs.as_path.first_asn(), Some(Asn(65001)));
        assert_eq!(learned.from_peer, Some(1));
    }

    #[test]
    fn route_propagates_through_chain() {
        // 0 - 1 - 2: node 0 originates; node 2 must learn via 1 with path
        // 65001 65000.
        let cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/8"));
        let cfg1 = simple_config(1, &[0, 2]);
        let cfg2 = simple_config(2, &[1]);
        let mut sim = build_sim(3, &[(0, 1), (1, 2)], vec![cfg0, cfg1, cfg2]);
        sim.run_until(SimTime::from_nanos(8_000_000_000));
        let r2 = router(&sim, 2);
        let best = r2
            .loc_rib()
            .best(&net("10.0.0.0/8"))
            .expect("route propagated");
        let asns: Vec<Asn> = best.route.attrs.as_path.all_asns().collect();
        assert_eq!(asns, vec![Asn(65001), Asn(65000)]);
    }

    #[test]
    fn withdrawal_propagates() {
        let cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/8"));
        let cfg1 = simple_config(1, &[0, 2]);
        let cfg2 = simple_config(2, &[1]);
        let mut sim = build_sim(3, &[(0, 1), (1, 2)], vec![cfg0, cfg1, cfg2]);
        sim.run_until(SimTime::from_nanos(8_000_000_000));
        assert!(router(&sim, 2).loc_rib().best(&net("10.0.0.0/8")).is_some());

        // Operator withdraws the network on node 0.
        sim.invoke_node(NodeId(0), |node, api| {
            let r = node.as_any_mut().downcast_mut::<BgpRouter>().unwrap();
            r.withdraw_network(net("10.0.0.0/8"), api);
        });
        sim.run_until(SimTime::from_nanos(16_000_000_000));
        assert!(router(&sim, 2).loc_rib().best(&net("10.0.0.0/8")).is_none());
        assert!(router(&sim, 1).loc_rib().best(&net("10.0.0.0/8")).is_none());
    }

    #[test]
    fn loop_prevention_blocks_own_as() {
        let cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/8"));
        let cfg1 = simple_config(1, &[0]);
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));

        // Inject an update whose AS path already contains node 0's AS
        // (65000), as if 1 were re-exporting a route learned from 0.
        let attrs = PathAttrs {
            as_path: crate::attrs::AsPath::sequence([65001, 65000]),
            next_hop: Ipv4Addr(0x0A000002),
            ..Default::default()
        };
        let msg = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![net("33.0.0.0/8")],
        });
        sim.deliver_direct(NodeId(1), NodeId(0), &wire::encode(&msg));
        let r0 = router(&sim, 0);
        assert_eq!(r0.stats().loop_rejects, 1);
        assert!(
            r0.loc_rib().best(&net("33.0.0.0/8")).is_none(),
            "looped announcement must not be installed"
        );
        // Own prefix stays locally originated.
        let best = r0.loc_rib().best(&net("10.0.0.0/8")).unwrap();
        assert!(best.route.from_peer.is_none());
    }

    #[test]
    fn import_policy_filters_prefix() {
        // Node 1 rejects 10/8 at import.
        let cfg0 = simple_config(0, &[1])
            .with_network(net("10.0.0.0/8"))
            .with_network(net("20.0.0.0/8"));
        let mut cfg1 = simple_config(1, &[0]);
        cfg1 = cfg1.with_policy(Policy {
            name: "no10".into(),
            rules: vec![crate::policy::Rule::reject(vec![
                crate::policy::Match::PrefixIn(vec![crate::policy::PrefixFilter::or_longer(net(
                    "10.0.0.0/8",
                ))]),
            ])],
            default: crate::policy::Verdict::Accept,
        });
        cfg1.neighbors[0].import = "no10".into();
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(6_000_000_000));
        let r1 = router(&sim, 1);
        assert!(
            r1.loc_rib().best(&net("10.0.0.0/8")).is_none(),
            "filtered at import"
        );
        assert!(
            r1.loc_rib().best(&net("20.0.0.0/8")).is_some(),
            "other prefix accepted"
        );
        assert!(r1.stats().policy_rejects > 0);
    }

    #[test]
    fn seeded_bug_crashes_router() {
        let cfg0 = simple_config(0, &[1]);
        let mut cfg1 = simple_config(1, &[0]);
        cfg1.bugs.attr_overflow_crash = true;
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));

        // Craft the killer update: unknown transitive attr 0xF5 with a
        // 0x90-byte value.
        let mut attrs = PathAttrs {
            as_path: crate::attrs::AsPath::sequence([65000]),
            next_hop: Ipv4Addr(0x0A000001),
            ..Default::default()
        };
        attrs.unknown.push(crate::attrs::RawAttr {
            flags: crate::attrs::flags::OPTIONAL | crate::attrs::flags::TRANSITIVE,
            code: 0xF5,
            value: vec![0xAA; 0x90],
        });
        let msg = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![net("99.0.0.0/8")],
        });
        let bytes = wire::encode(&msg);
        sim.deliver_direct(NodeId(0), NodeId(1), &bytes);
        assert!(
            sim.crashed(NodeId(1)).is_some(),
            "seeded bug must crash the node"
        );
    }

    #[test]
    fn same_update_without_bug_is_harmless() {
        let cfg0 = simple_config(0, &[1]);
        let cfg1 = simple_config(1, &[0]); // bug switch off
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        let mut attrs = PathAttrs {
            as_path: crate::attrs::AsPath::sequence([65000]),
            next_hop: Ipv4Addr(0x0A000001),
            ..Default::default()
        };
        attrs.unknown.push(crate::attrs::RawAttr {
            flags: crate::attrs::flags::OPTIONAL | crate::attrs::flags::TRANSITIVE,
            code: 0xF5,
            value: vec![0xAA; 0x90],
        });
        let msg = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![net("99.0.0.0/8")],
        });
        sim.deliver_direct(NodeId(0), NodeId(1), &wire::encode(&msg));
        assert!(sim.crashed(NodeId(1)).is_none());
        assert!(router(&sim, 1).loc_rib().best(&net("99.0.0.0/8")).is_some());
    }

    #[test]
    fn garbage_message_triggers_notification_and_reset() {
        let cfg0 = simple_config(0, &[1]);
        let cfg1 = simple_config(1, &[0]);
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        assert_eq!(
            router(&sim, 1).session_state(NodeId(0)),
            SessionState::Established
        );
        sim.deliver_direct(NodeId(0), NodeId(1), &[0u8; 40]);
        assert_eq!(router(&sim, 1).stats().decode_errors, 1);
        // The deferred reset tears the session down...
        sim.run_until(SimTime::from_nanos(6_000_000_000));
        assert_eq!(router(&sim, 1).session_state(NodeId(0)), SessionState::Idle);
        // ...and auto-reconnect re-establishes it.
        sim.run_until(SimTime::from_nanos(20_000_000_000));
        assert_eq!(
            router(&sim, 1).session_state(NodeId(0)),
            SessionState::Established
        );
    }

    #[test]
    fn session_loss_flushes_learned_routes() {
        let cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/8"));
        let cfg1 = simple_config(1, &[0]);
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        assert!(router(&sim, 1).loc_rib().best(&net("10.0.0.0/8")).is_some());
        sim.inject_link_down(NodeId(0), NodeId(1));
        sim.run_until(SimTime::from_nanos(6_000_000_000));
        assert!(router(&sim, 1).loc_rib().best(&net("10.0.0.0/8")).is_none());
    }

    #[test]
    fn hold_timer_survives_blackhole_and_reestablishes_on_heal() {
        // Channel-fidelity survival: converge reliably, then blackhole the
        // link (drop = 1.0, keepalives included). The hold timer must tear
        // the session down through the NOTIFICATION + deferred-reset path,
        // and once the channel heals, auto-reconnect must re-establish and
        // re-advertise — no operator intervention.
        let mut cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/8"));
        let mut cfg1 = simple_config(1, &[0]).with_network(net("20.0.0.0/8"));
        cfg0.hold_time = 9;
        cfg1.hold_time = 9;
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        assert_eq!(
            router(&sim, 0).session_state(NodeId(1)),
            SessionState::Established
        );
        assert!(router(&sim, 0).loc_rib().best(&net("20.0.0.0/8")).is_some());

        sim.set_link_faults(dice_netsim::LinkFaults {
            drop: 1.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: dice_netsim::SimDuration::ZERO,
            burst: None,
        });
        sim.set_unreliable_links(true);
        sim.run_until(SimTime::from_nanos(30_000_000_000));
        assert_ne!(
            router(&sim, 0).session_state(NodeId(1)),
            SessionState::Established,
            "hold timer must expire under total loss"
        );
        assert!(
            router(&sim, 0).loc_rib().best(&net("20.0.0.0/8")).is_none(),
            "learned routes flushed on reset"
        );

        sim.set_unreliable_links(false);
        sim.run_until(SimTime::from_nanos(60_000_000_000));
        assert_eq!(
            router(&sim, 0).session_state(NodeId(1)),
            SessionState::Established,
            "auto-reconnect must re-establish after the channel heals"
        );
        assert!(
            router(&sim, 0).loc_rib().best(&net("20.0.0.0/8")).is_some(),
            "routes re-advertised after re-establishment"
        );
        assert!(router(&sim, 1).loc_rib().best(&net("10.0.0.0/8")).is_some());
    }

    #[test]
    fn keepalives_ride_out_moderate_loss() {
        // 10% independent drop: enough keepalives get through each hold
        // window that the session stays up and converged state persists.
        let mut cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/8"));
        let mut cfg1 = simple_config(1, &[0]).with_network(net("20.0.0.0/8"));
        cfg0.hold_time = 9;
        cfg1.hold_time = 9;
        let mut sim = build_sim(2, &[(0, 1)], vec![cfg0, cfg1]);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        sim.set_link_faults(dice_netsim::LinkFaults {
            drop: 0.1,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: dice_netsim::SimDuration::ZERO,
            burst: None,
        });
        sim.set_unreliable_links(true);
        sim.run_until(SimTime::from_nanos(65_000_000_000));
        for (me, peer, prefix) in [(0, 1, "20.0.0.0/8"), (1, 0, "10.0.0.0/8")] {
            assert_eq!(
                router(&sim, me).session_state(NodeId(peer)),
                SessionState::Established,
                "router {me} session must ride out 10% loss"
            );
            assert!(
                router(&sim, me).loc_rib().best(&net(prefix)).is_some(),
                "router {me} keeps its learned route"
            );
        }
    }

    #[test]
    fn hijack_draws_traffic_with_longer_prefix() {
        // 0 owns 10.0/16 and announces it; 2 (attacker) announces 10.0.0/24
        // (more specific). Node 1 prefers the more specific for covered
        // addresses — modeled here by both being installed as distinct
        // prefixes.
        let cfg0 = simple_config(0, &[1]).with_network(net("10.0.0.0/16"));
        let cfg1 = simple_config(1, &[0, 2]);
        let cfg2 = simple_config(2, &[1]);
        let mut sim = build_sim(3, &[(0, 1), (1, 2)], vec![cfg0, cfg1, cfg2]);
        sim.run_until(SimTime::from_nanos(8_000_000_000));
        // Attacker action: announce a prefix it does not own.
        sim.invoke_node(NodeId(2), |node, api| {
            let r = node.as_any_mut().downcast_mut::<BgpRouter>().unwrap();
            r.announce_network(net("10.0.0.0/24"), false, api);
        });
        sim.run_until(SimTime::from_nanos(16_000_000_000));
        let r1 = router(&sim, 1);
        let hijacked = r1
            .loc_rib()
            .best(&net("10.0.0.0/24"))
            .expect("hijack visible");
        assert_eq!(hijacked.route.attrs.as_path.origin_asn(), Some(Asn(65002)));
        // Legitimate covering route still present.
        assert!(r1.loc_rib().best(&net("10.0.0.0/16")).is_some());
    }

    #[test]
    fn state_size_grows_with_rib() {
        let cfg0 = simple_config(0, &[1]);
        let mut many = simple_config(1, &[0]);
        for i in 0..64u32 {
            many = many.with_network(Ipv4Net::new(0x0B000000 + (i << 8), 24));
        }
        let r_small = BgpRouter::new(cfg0);
        let r_big = BgpRouter::new(many.clone());
        // Populate loc-rib via on_start.
        let mut sim = build_sim(2, &[(0, 1)], vec![simple_config(0, &[1]), many]);
        sim.run_until(SimTime::from_nanos(1_000_000));
        let big_size = router(&sim, 1).state_size();
        assert!(big_size > r_small.state_size());
        let _ = r_big;
    }
}
