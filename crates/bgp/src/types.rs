//! Fundamental BGP value types: AS numbers, router ids, IPv4 prefixes,
//! communities.

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

/// A 2-octet autonomous-system number (classic BGP-4 encoding).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u16);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A BGP identifier (an IPv4 address in the wire format).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RouterId(pub u32);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// An IPv4 address as a raw u32 (network byte order semantics).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ipv4Addr(pub u32);

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl FromStr for Ipv4Addr {
    type Err = PrefixParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut bytes = [0u8; 4];
        for b in bytes.iter_mut() {
            let p = parts.next().ok_or(PrefixParseError::BadAddress)?;
            *b = p.parse::<u8>().map_err(|_| PrefixParseError::BadAddress)?;
        }
        if parts.next().is_some() {
            return Err(PrefixParseError::BadAddress);
        }
        Ok(Ipv4Addr(u32::from_be_bytes(bytes)))
    }
}

/// Error from parsing a prefix or address literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Malformed dotted-quad.
    BadAddress,
    /// Missing or malformed `/len` part.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::BadAddress => write!(f, "malformed IPv4 address"),
            PrefixParseError::BadLength => write!(f, "malformed prefix length"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

/// An IPv4 prefix in canonical form (host bits zeroed).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ipv4Net {
    addr: u32,
    len: u8,
}

impl Ipv4Net {
    /// Construct a prefix, canonicalizing by masking host bits.
    /// Panics if `len > 32` — lengths come from trusted config or are
    /// validated at the wire boundary first.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Ipv4Net {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The all-zero default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Net = Ipv4Net { addr: 0, len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Network address (canonical, host bits zero).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a prefix length is not a container size
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this prefix contains address `a`.
    pub fn contains_addr(&self, a: u32) -> bool {
        a & Self::mask(self.len) == self.addr
    }

    /// Whether this prefix covers `other` (equal or less specific).
    pub fn covers(&self, other: &Ipv4Net) -> bool {
        self.len <= other.len && self.contains_addr(other.addr)
    }

    /// Whether the two prefixes overlap at all.
    pub fn overlaps(&self, other: &Ipv4Net) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The number of bytes needed to encode this prefix's significant bits
    /// in NLRI form.
    pub fn nlri_bytes(&self) -> usize {
        self.len as usize / 8 + usize::from(!self.len.is_multiple_of(8))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", b[0], b[1], b[2], b[3], self.len)
    }
}

impl FromStr for Ipv4Net {
    type Err = PrefixParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s.split_once('/').ok_or(PrefixParseError::BadLength)?;
        let addr: Ipv4Addr = addr_s.parse()?;
        let len: u8 = len_s.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Ipv4Net::new(addr.0, len))
    }
}

/// A BGP community value (RFC 1997), conventionally displayed as `asn:tag`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Community(pub u32);

impl Community {
    /// Build from the conventional `asn:value` pair.
    pub fn from_pair(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits (conventionally an ASN).
    pub fn asn_part(&self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits.
    pub fn value_part(&self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

impl FromStr for Community {
    type Err = PrefixParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, v) = s.split_once(':').ok_or(PrefixParseError::BadAddress)?;
        let a: u16 = a.parse().map_err(|_| PrefixParseError::BadAddress)?;
        let v: u16 = v.parse().map_err(|_| PrefixParseError::BadAddress)?;
        Ok(Community::from_pair(a, v))
    }
}

/// Convenience constructor: parse a prefix literal, panicking on error.
/// For tests and examples.
pub fn net(s: &str) -> Ipv4Net {
    s.parse()
        .unwrap_or_else(|e| panic!("bad prefix {s:?}: {e}"))
}

/// Convenience constructor: parse an address literal, panicking on error.
pub fn addr(s: &str) -> Ipv4Addr {
    s.parse()
        .unwrap_or_else(|e| panic!("bad address {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Ipv4Net::new(0x0A01_02FF, 24);
        assert_eq!(p.addr(), 0x0A01_0200);
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.128/25", "1.2.3.4/32"] {
            let p: Ipv4Net = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Net>().is_err());
        assert!("a.b.c.d/8".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.256/8".parse::<Ipv4Net>().is_err());
        assert!("1.2.3.4.5/8".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn covers_and_overlaps() {
        let p8 = net("10.0.0.0/8");
        let p16 = net("10.1.0.0/16");
        let other = net("11.0.0.0/8");
        assert!(p8.covers(&p16));
        assert!(!p16.covers(&p8));
        assert!(p8.overlaps(&p16));
        assert!(p16.overlaps(&p8));
        assert!(!p8.overlaps(&other));
        assert!(p8.covers(&p8));
    }

    #[test]
    fn default_route_contains_everything() {
        assert!(Ipv4Net::DEFAULT.contains_addr(0));
        assert!(Ipv4Net::DEFAULT.contains_addr(u32::MAX));
        assert!(Ipv4Net::DEFAULT.covers(&net("203.0.113.0/24")));
    }

    #[test]
    fn nlri_byte_counts() {
        assert_eq!(net("0.0.0.0/0").nlri_bytes(), 0);
        assert_eq!(net("10.0.0.0/8").nlri_bytes(), 1);
        assert_eq!(net("10.1.0.0/15").nlri_bytes(), 2);
        assert_eq!(net("10.1.0.0/16").nlri_bytes(), 2);
        assert_eq!(net("10.1.1.0/17").nlri_bytes(), 3);
        assert_eq!(net("10.1.1.1/32").nlri_bytes(), 4);
    }

    #[test]
    fn community_pair_roundtrip() {
        let c = Community::from_pair(65001, 42);
        assert_eq!(c.asn_part(), 65001);
        assert_eq!(c.value_part(), 42);
        assert_eq!(c.to_string(), "65001:42");
        assert_eq!("65001:42".parse::<Community>().unwrap(), c);
    }

    #[test]
    fn addr_display_roundtrip() {
        let a = addr("192.0.2.1");
        assert_eq!(a.to_string(), "192.0.2.1");
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn overlong_prefix_panics() {
        Ipv4Net::new(0, 33);
    }
}
