//! RFC 4271 wire format: message framing and the OPEN / UPDATE /
//! NOTIFICATION / KEEPALIVE codecs.
//!
//! Decoding is strict: every malformation maps to a [`DecodeError`] that
//! carries the NOTIFICATION error code/subcode a conforming speaker must
//! send (§6). Encoding is deterministic (attributes in ascending type-code
//! order) so byte-level round-trips are testable.

use crate::attrs::{code, flags, AsPath, AsPathSegment, Origin, PathAttrs, RawAttr, SegmentKind};
use crate::types::{Asn, Community, Ipv4Addr, Ipv4Net, RouterId};

/// Length of the all-ones marker field.
pub const MARKER_LEN: usize = 16;
/// Length of the fixed message header.
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message size (§4.1).
pub const MAX_MESSAGE_LEN: usize = 4096;

/// BGP message type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// Session negotiation.
    Open = 1,
    /// Route advertisement / withdrawal.
    Update = 2,
    /// Error report; closes the session.
    Notification = 3,
    /// Liveness probe.
    Keepalive = 4,
}

impl MessageType {
    /// Decode from the wire value.
    pub fn from_u8(v: u8) -> Option<MessageType> {
        match v {
            1 => Some(MessageType::Open),
            2 => Some(MessageType::Update),
            3 => Some(MessageType::Notification),
            4 => Some(MessageType::Keepalive),
            _ => None,
        }
    }
}

/// An OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    /// Protocol version; must be 4.
    pub version: u8,
    /// Sender's AS number.
    pub asn: Asn,
    /// Proposed hold time in seconds (0 or >= 3).
    pub hold_time: u16,
    /// Sender's BGP identifier.
    pub router_id: RouterId,
    /// Raw optional parameters, preserved but not interpreted.
    pub opt_params: Vec<u8>,
}

/// An UPDATE message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMsg {
    /// Withdrawn prefixes.
    pub withdrawn: Vec<Ipv4Net>,
    /// Path attributes; `None` only for withdraw-only updates.
    pub attrs: Option<PathAttrs>,
    /// Announced prefixes sharing `attrs`.
    pub nlri: Vec<Ipv4Net>,
}

/// A NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    /// Error code (§4.5).
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// OPEN.
    Open(OpenMsg),
    /// UPDATE.
    Update(UpdateMsg),
    /// NOTIFICATION.
    Notification(NotificationMsg),
    /// KEEPALIVE.
    Keepalive,
}

/// NOTIFICATION error codes.
pub mod notif {
    /// Message Header Error.
    pub const MSG_HEADER: u8 = 1;
    /// OPEN Message Error.
    pub const OPEN_ERROR: u8 = 2;
    /// UPDATE Message Error.
    pub const UPDATE_ERROR: u8 = 3;
    /// Hold Timer Expired.
    pub const HOLD_EXPIRED: u8 = 4;
    /// FSM Error.
    pub const FSM_ERROR: u8 = 5;
    /// Cease.
    pub const CEASE: u8 = 6;
}

/// Decoding failures, each mapped to the NOTIFICATION it should trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DecodeError {
    /// Fewer bytes than a header.
    Truncated,
    /// Marker field is not all ones.
    BadMarker,
    /// Header length field out of bounds or inconsistent.
    BadLength(u16),
    /// Unknown message type code.
    BadType(u8),
    /// OPEN: unsupported version.
    UnsupportedVersion(u8),
    /// OPEN: unacceptable hold time (1 or 2).
    BadHoldTime(u16),
    /// OPEN: malformed body.
    BadOpen,
    /// UPDATE: malformed attribute list structure.
    MalformedAttrList,
    /// UPDATE: attribute flags conflict with the type code.
    AttrFlagsError { code: u8, flags: u8 },
    /// UPDATE: attribute length inconsistent with content.
    AttrLenError { code: u8 },
    /// UPDATE: unrecognized well-known attribute.
    UnrecognizedWellKnown(u8),
    /// UPDATE: ORIGIN value invalid.
    InvalidOrigin(u8),
    /// UPDATE: AS_PATH malformed.
    MalformedAsPath,
    /// UPDATE: NEXT_HOP invalid.
    InvalidNextHop,
    /// UPDATE: a mandatory attribute is missing.
    MissingWellKnown(u8),
    /// UPDATE: the same attribute appears twice.
    DuplicateAttr(u8),
    /// UPDATE: NLRI field unparseable.
    InvalidNlri,
    /// NOTIFICATION body truncated.
    BadNotification,
}

impl DecodeError {
    /// The `(code, subcode)` a conforming speaker puts in its NOTIFICATION.
    pub fn notification_codes(&self) -> (u8, u8) {
        use DecodeError::*;
        match self {
            Truncated | BadLength(_) => (notif::MSG_HEADER, 2),
            BadMarker => (notif::MSG_HEADER, 1),
            BadType(_) => (notif::MSG_HEADER, 3),
            UnsupportedVersion(_) => (notif::OPEN_ERROR, 1),
            BadHoldTime(_) => (notif::OPEN_ERROR, 6),
            BadOpen => (notif::OPEN_ERROR, 0),
            MalformedAttrList => (notif::UPDATE_ERROR, 1),
            UnrecognizedWellKnown(_) => (notif::UPDATE_ERROR, 2),
            MissingWellKnown(_) => (notif::UPDATE_ERROR, 3),
            AttrFlagsError { .. } => (notif::UPDATE_ERROR, 4),
            AttrLenError { .. } => (notif::UPDATE_ERROR, 5),
            InvalidOrigin(_) => (notif::UPDATE_ERROR, 6),
            InvalidNextHop => (notif::UPDATE_ERROR, 8),
            MalformedAsPath => (notif::UPDATE_ERROR, 11),
            InvalidNlri => (notif::UPDATE_ERROR, 10),
            DuplicateAttr(_) => (notif::UPDATE_ERROR, 1),
            BadNotification => (notif::MSG_HEADER, 2),
        }
    }
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn encode_nlri_into(out: &mut Vec<u8>, nets: &[Ipv4Net]) {
    for n in nets {
        out.push(n.len());
        let bytes = n.addr().to_be_bytes();
        out.extend_from_slice(&bytes[..n.nlri_bytes()]);
    }
}

/// Write an attribute header for a value of `len` bytes; the value bytes
/// themselves follow, appended by the caller. EXT_LEN is set iff the value
/// does not fit in a one-byte length.
fn encode_attr_header(out: &mut Vec<u8>, fl: u8, code: u8, len: usize) {
    if len > 255 {
        out.push(fl | flags::EXT_LEN);
        out.push(code);
        push_u16(out, len as u16);
    } else {
        out.push(fl & !flags::EXT_LEN);
        out.push(code);
        out.push(len as u8);
    }
}

fn encode_attr(out: &mut Vec<u8>, fl: u8, code: u8, value: &[u8]) {
    encode_attr_header(out, fl, code, value.len());
    out.extend_from_slice(value);
}

/// Encode the path-attribute block (without the length prefix) directly
/// into `out`, appending. Variable-length attributes (AS_PATH, AGGREGATOR,
/// COMMUNITY) have their value length computed analytically so the header
/// can be written first and the value bytes streamed in place — no
/// per-attribute scratch buffers.
pub fn encode_attrs_into(attrs: &PathAttrs, out: &mut Vec<u8>) {
    // ORIGIN
    encode_attr(out, flags::TRANSITIVE, code::ORIGIN, &[attrs.origin as u8]);
    // AS_PATH: each segment is kind + count + 2 bytes per ASN.
    let ap_len: usize = attrs
        .as_path
        .segments
        .iter()
        .map(|seg| 2 + 2 * seg.asns.len())
        .sum();
    encode_attr_header(out, flags::TRANSITIVE, code::AS_PATH, ap_len);
    for seg in &attrs.as_path.segments {
        out.push(seg.kind as u8);
        out.push(seg.asns.len() as u8);
        for a in &seg.asns {
            push_u16(out, a.0);
        }
    }
    // NEXT_HOP
    encode_attr(
        out,
        flags::TRANSITIVE,
        code::NEXT_HOP,
        &attrs.next_hop.0.to_be_bytes(),
    );
    if let Some(med) = attrs.med {
        encode_attr(out, flags::OPTIONAL, code::MED, &med.to_be_bytes());
    }
    if let Some(lp) = attrs.local_pref {
        encode_attr(out, flags::TRANSITIVE, code::LOCAL_PREF, &lp.to_be_bytes());
    }
    if attrs.atomic_aggregate {
        encode_attr(out, flags::TRANSITIVE, code::ATOMIC_AGGREGATE, &[]);
    }
    if let Some((asn, ip)) = attrs.aggregator {
        encode_attr_header(
            out,
            flags::OPTIONAL | flags::TRANSITIVE,
            code::AGGREGATOR,
            6,
        );
        push_u16(out, asn.0);
        push_u32(out, ip.0);
    }
    if !attrs.communities.is_empty() {
        encode_attr_header(
            out,
            flags::OPTIONAL | flags::TRANSITIVE,
            code::COMMUNITY,
            attrs.communities.len() * 4,
        );
        for c in &attrs.communities {
            push_u32(out, c.0);
        }
    }
    for raw in &attrs.unknown {
        encode_attr(out, raw.flags, raw.code, &raw.value);
    }
}

/// Encode the path-attribute block (without the length prefix).
pub fn encode_attrs(attrs: &PathAttrs) -> Vec<u8> {
    let mut out = Vec::new();
    encode_attrs_into(attrs, &mut out);
    out
}

/// Encode a full message with header into `out`.
///
/// `out` is cleared first, so a dirty reused buffer is fine — this is the
/// zero-copy entry point for pooled wire buffers. The whole datagram
/// (header, body, path attributes, NLRI) is written in a single pass with
/// no intermediate allocations; the message length, withdrawn-routes
/// length, and total-path-attribute length are reserved as placeholders
/// and back-patched once their section is written.
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[0xFF; MARKER_LEN]);
    push_u16(out, 0); // total length, back-patched below
    let ty_pos = out.len();
    out.push(0); // type, patched below
    let ty = match msg {
        Message::Open(o) => {
            out.push(o.version);
            push_u16(out, o.asn.0);
            push_u16(out, o.hold_time);
            push_u32(out, o.router_id.0);
            out.push(o.opt_params.len() as u8);
            out.extend_from_slice(&o.opt_params);
            MessageType::Open
        }
        Message::Update(u) => {
            let wd_pos = out.len();
            push_u16(out, 0); // withdrawn length, back-patched
            encode_nlri_into(out, &u.withdrawn);
            let wd_len = (out.len() - wd_pos - 2) as u16;
            out[wd_pos..wd_pos + 2].copy_from_slice(&wd_len.to_be_bytes());
            let ab_pos = out.len();
            push_u16(out, 0); // attr length, back-patched
            if let Some(a) = &u.attrs {
                encode_attrs_into(a, out);
            }
            let ab_len = (out.len() - ab_pos - 2) as u16;
            out[ab_pos..ab_pos + 2].copy_from_slice(&ab_len.to_be_bytes());
            encode_nlri_into(out, &u.nlri);
            MessageType::Update
        }
        Message::Notification(n) => {
            out.push(n.code);
            out.push(n.subcode);
            out.extend_from_slice(&n.data);
            MessageType::Notification
        }
        Message::Keepalive => MessageType::Keepalive,
    };
    out[ty_pos] = ty as u8;
    let total = out.len() as u16;
    out[MARKER_LEN..MARKER_LEN + 2].copy_from_slice(&total.to_be_bytes());
    debug_assert!(out.len() <= MAX_MESSAGE_LEN, "encoded message too large");
}

/// Encode a full message with header.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(msg, &mut out);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }
    fn u16(&mut self) -> Option<u16> {
        let hi = self.u8()? as u16;
        let lo = self.u8()? as u16;
        Some((hi << 8) | lo)
    }
    fn u32(&mut self) -> Option<u32> {
        let hi = self.u16()? as u32;
        let lo = self.u16()? as u32;
        Some((hi << 16) | lo)
    }
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
}

fn decode_nlri(buf: &[u8], err: DecodeError) -> Result<Vec<Ipv4Net>, DecodeError> {
    let mut r = Reader::new(buf);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let len = r.u8().ok_or_else(|| err.clone())?;
        if len > 32 {
            return Err(err);
        }
        let nb = len as usize / 8 + usize::from(len % 8 != 0);
        let bytes = r.bytes(nb).ok_or_else(|| err.clone())?;
        let mut addr = [0u8; 4];
        addr[..nb].copy_from_slice(bytes);
        out.push(Ipv4Net::new(u32::from_be_bytes(addr), len));
    }
    Ok(out)
}

/// Presence of the three well-known mandatory attributes in a parsed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MandatoryPresence {
    /// ORIGIN present.
    pub origin: bool,
    /// AS_PATH present.
    pub as_path: bool,
    /// NEXT_HOP present.
    pub next_hop: bool,
}

/// Parse the path-attribute block of an UPDATE.
pub fn decode_attrs(buf: &[u8]) -> Result<PathAttrs, DecodeError> {
    decode_attrs_with_presence(buf).map(|(a, _)| a)
}

/// Like [`decode_attrs`], also reporting which mandatory attributes were
/// present (the UPDATE decoder enforces presence only when NLRI is present).
pub fn decode_attrs_with_presence(
    buf: &[u8],
) -> Result<(PathAttrs, MandatoryPresence), DecodeError> {
    let mut r = Reader::new(buf);
    let mut attrs = PathAttrs::default();
    let mut seen: Vec<u8> = Vec::new();
    let mut have_origin = false;
    let mut have_as_path = false;
    let mut have_next_hop = false;

    while r.remaining() > 0 {
        let fl = r.u8().ok_or(DecodeError::MalformedAttrList)?;
        let tc = r.u8().ok_or(DecodeError::MalformedAttrList)?;
        let len = if fl & flags::EXT_LEN != 0 {
            r.u16().ok_or(DecodeError::MalformedAttrList)? as usize
        } else {
            r.u8().ok_or(DecodeError::MalformedAttrList)? as usize
        };
        let value = r.bytes(len).ok_or(DecodeError::MalformedAttrList)?;
        if seen.contains(&tc) {
            return Err(DecodeError::DuplicateAttr(tc));
        }
        seen.push(tc);

        let optional = fl & flags::OPTIONAL != 0;
        let transitive = fl & flags::TRANSITIVE != 0;
        let well_known_check = |is_wk: bool| -> Result<(), DecodeError> {
            if is_wk && (optional || !transitive) {
                return Err(DecodeError::AttrFlagsError {
                    code: tc,
                    flags: fl,
                });
            }
            Ok(())
        };

        match tc {
            code::ORIGIN => {
                well_known_check(true)?;
                if value.len() != 1 {
                    return Err(DecodeError::AttrLenError { code: tc });
                }
                attrs.origin =
                    Origin::from_u8(value[0]).ok_or(DecodeError::InvalidOrigin(value[0]))?;
                have_origin = true;
            }
            code::AS_PATH => {
                well_known_check(true)?;
                let mut pr = Reader::new(value);
                let mut segments = Vec::new();
                while pr.remaining() > 0 {
                    let kind = SegmentKind::from_u8(pr.u8().ok_or(DecodeError::MalformedAsPath)?)
                        .ok_or(DecodeError::MalformedAsPath)?;
                    let count = pr.u8().ok_or(DecodeError::MalformedAsPath)? as usize;
                    if count == 0 {
                        return Err(DecodeError::MalformedAsPath);
                    }
                    let mut asns = Vec::with_capacity(count);
                    for _ in 0..count {
                        asns.push(Asn(pr.u16().ok_or(DecodeError::MalformedAsPath)?));
                    }
                    segments.push(AsPathSegment { kind, asns });
                }
                attrs.as_path = AsPath { segments };
                have_as_path = true;
            }
            code::NEXT_HOP => {
                well_known_check(true)?;
                if value.len() != 4 {
                    return Err(DecodeError::AttrLenError { code: tc });
                }
                let a = u32::from_be_bytes([value[0], value[1], value[2], value[3]]);
                if a == 0 || a == u32::MAX {
                    return Err(DecodeError::InvalidNextHop);
                }
                attrs.next_hop = Ipv4Addr(a);
                have_next_hop = true;
            }
            code::MED => {
                if !optional {
                    return Err(DecodeError::AttrFlagsError {
                        code: tc,
                        flags: fl,
                    });
                }
                if value.len() != 4 {
                    return Err(DecodeError::AttrLenError { code: tc });
                }
                attrs.med = Some(u32::from_be_bytes([value[0], value[1], value[2], value[3]]));
            }
            code::LOCAL_PREF => {
                well_known_check(true)?;
                if value.len() != 4 {
                    return Err(DecodeError::AttrLenError { code: tc });
                }
                attrs.local_pref =
                    Some(u32::from_be_bytes([value[0], value[1], value[2], value[3]]));
            }
            code::ATOMIC_AGGREGATE => {
                well_known_check(true)?;
                if !value.is_empty() {
                    return Err(DecodeError::AttrLenError { code: tc });
                }
                attrs.atomic_aggregate = true;
            }
            code::AGGREGATOR => {
                if !optional || !transitive {
                    return Err(DecodeError::AttrFlagsError {
                        code: tc,
                        flags: fl,
                    });
                }
                if value.len() != 6 {
                    return Err(DecodeError::AttrLenError { code: tc });
                }
                let asn = Asn(u16::from_be_bytes([value[0], value[1]]));
                let ip = Ipv4Addr(u32::from_be_bytes([value[2], value[3], value[4], value[5]]));
                attrs.aggregator = Some((asn, ip));
            }
            code::COMMUNITY => {
                if !optional || !transitive {
                    return Err(DecodeError::AttrFlagsError {
                        code: tc,
                        flags: fl,
                    });
                }
                if value.len() % 4 != 0 {
                    return Err(DecodeError::AttrLenError { code: tc });
                }
                for ch in value.chunks_exact(4) {
                    attrs
                        .communities
                        .insert(Community(u32::from_be_bytes([ch[0], ch[1], ch[2], ch[3]])));
                }
            }
            _ => {
                if !optional {
                    return Err(DecodeError::UnrecognizedWellKnown(tc));
                }
                if transitive {
                    // Carry through with the partial bit set.
                    attrs.unknown.push(RawAttr {
                        flags: fl | flags::PARTIAL,
                        code: tc,
                        value: value.to_vec(),
                    });
                }
                // Unknown optional non-transitive: silently dropped.
            }
        }
    }

    attrs.unknown.sort_by_key(|r| r.code);
    Ok((
        attrs,
        MandatoryPresence {
            origin: have_origin,
            as_path: have_as_path,
            next_hop: have_next_hop,
        },
    ))
}

/// Decode one message from `buf`, returning the message and bytes consumed.
pub fn decode(buf: &[u8]) -> Result<(Message, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    if buf[..MARKER_LEN].iter().any(|&b| b != 0xFF) {
        return Err(DecodeError::BadMarker);
    }
    let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
    if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) || len > buf.len() {
        return Err(DecodeError::BadLength(len as u16));
    }
    let ty = MessageType::from_u8(buf[18]).ok_or(DecodeError::BadType(buf[18]))?;
    let body = &buf[HEADER_LEN..len];
    let msg = match ty {
        MessageType::Open => {
            let mut r = Reader::new(body);
            let version = r.u8().ok_or(DecodeError::BadOpen)?;
            if version != 4 {
                return Err(DecodeError::UnsupportedVersion(version));
            }
            let asn = Asn(r.u16().ok_or(DecodeError::BadOpen)?);
            let hold_time = r.u16().ok_or(DecodeError::BadOpen)?;
            if hold_time == 1 || hold_time == 2 {
                return Err(DecodeError::BadHoldTime(hold_time));
            }
            let router_id = RouterId(r.u32().ok_or(DecodeError::BadOpen)?);
            let opl = r.u8().ok_or(DecodeError::BadOpen)? as usize;
            let opt_params = r.bytes(opl).ok_or(DecodeError::BadOpen)?.to_vec();
            if r.remaining() != 0 {
                return Err(DecodeError::BadOpen);
            }
            Message::Open(OpenMsg {
                version,
                asn,
                hold_time,
                router_id,
                opt_params,
            })
        }
        MessageType::Update => {
            let mut r = Reader::new(body);
            let wlen = r.u16().ok_or(DecodeError::MalformedAttrList)? as usize;
            let wbytes = r.bytes(wlen).ok_or(DecodeError::MalformedAttrList)?;
            let withdrawn = decode_nlri(wbytes, DecodeError::MalformedAttrList)?;
            let alen = r.u16().ok_or(DecodeError::MalformedAttrList)? as usize;
            let abytes = r.bytes(alen).ok_or(DecodeError::MalformedAttrList)?;
            let nlri_bytes = r.bytes(r.remaining()).unwrap_or(&[]);
            let nlri = decode_nlri(nlri_bytes, DecodeError::InvalidNlri)?;
            let attrs = if alen > 0 {
                let (a, pres) = decode_attrs_with_presence(abytes)?;
                if !nlri.is_empty() {
                    if !pres.origin {
                        return Err(DecodeError::MissingWellKnown(code::ORIGIN));
                    }
                    if !pres.as_path {
                        return Err(DecodeError::MissingWellKnown(code::AS_PATH));
                    }
                    if !pres.next_hop {
                        return Err(DecodeError::MissingWellKnown(code::NEXT_HOP));
                    }
                }
                Some(a)
            } else {
                if !nlri.is_empty() {
                    return Err(DecodeError::MissingWellKnown(code::ORIGIN));
                }
                None
            };
            Message::Update(UpdateMsg {
                withdrawn,
                attrs,
                nlri,
            })
        }
        MessageType::Notification => {
            let mut r = Reader::new(body);
            let codev = r.u8().ok_or(DecodeError::BadNotification)?;
            let subcode = r.u8().ok_or(DecodeError::BadNotification)?;
            let data = r.bytes(r.remaining()).unwrap_or(&[]).to_vec();
            Message::Notification(NotificationMsg {
                code: codev,
                subcode,
                data,
            })
        }
        MessageType::Keepalive => {
            if len != HEADER_LEN {
                return Err(DecodeError::BadLength(len as u16));
            }
            Message::Keepalive
        }
    };
    Ok((msg, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::net;

    fn sample_attrs() -> PathAttrs {
        let mut a = PathAttrs {
            origin: Origin::Egp,
            as_path: AsPath::sequence([65001, 65002]),
            next_hop: Ipv4Addr(0x0A000001),
            med: Some(50),
            local_pref: Some(200),
            atomic_aggregate: true,
            aggregator: Some((Asn(65001), Ipv4Addr(0x0A000002))),
            ..Default::default()
        };
        a.communities.insert(Community::from_pair(65001, 1));
        a.communities.insert(Community::from_pair(65001, 666));
        a
    }

    #[test]
    fn keepalive_roundtrip() {
        let bytes = encode(&Message::Keepalive);
        assert_eq!(bytes.len(), HEADER_LEN);
        let (msg, used) = decode(&bytes).unwrap();
        assert_eq!(msg, Message::Keepalive);
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn open_roundtrip() {
        let open = Message::Open(OpenMsg {
            version: 4,
            asn: Asn(65010),
            hold_time: 90,
            router_id: RouterId(0xC0A80101),
            opt_params: vec![],
        });
        let bytes = encode(&open);
        let (msg, _) = decode(&bytes).unwrap();
        assert_eq!(msg, open);
    }

    #[test]
    fn update_roundtrip_full() {
        let upd = Message::Update(UpdateMsg {
            withdrawn: vec![net("192.0.2.0/24"), net("198.51.100.0/25")],
            attrs: Some(sample_attrs()),
            nlri: vec![net("10.0.0.0/8"), net("10.64.0.0/10")],
        });
        let bytes = encode(&upd);
        let (msg, used) = decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(msg, upd);
    }

    #[test]
    fn withdraw_only_update() {
        let upd = Message::Update(UpdateMsg {
            withdrawn: vec![net("203.0.113.0/24")],
            attrs: None,
            nlri: vec![],
        });
        let bytes = encode(&upd);
        let (msg, _) = decode(&bytes).unwrap();
        assert_eq!(msg, upd);
    }

    #[test]
    fn notification_roundtrip() {
        let n = Message::Notification(NotificationMsg {
            code: notif::UPDATE_ERROR,
            subcode: 4,
            data: vec![1, 2, 3],
        });
        let bytes = encode(&n);
        let (msg, _) = decode(&bytes).unwrap();
        assert_eq!(msg, n);
    }

    #[test]
    fn bad_marker_detected() {
        let mut bytes = encode(&Message::Keepalive);
        bytes[0] = 0;
        assert_eq!(decode(&bytes), Err(DecodeError::BadMarker));
    }

    #[test]
    fn truncated_header_detected() {
        assert_eq!(decode(&[0xFF; 10]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_length_detected() {
        let mut bytes = encode(&Message::Keepalive);
        bytes[16] = 0;
        bytes[17] = 5; // < HEADER_LEN
        assert!(matches!(decode(&bytes), Err(DecodeError::BadLength(5))));
    }

    #[test]
    fn bad_type_detected() {
        let mut bytes = encode(&Message::Keepalive);
        bytes[18] = 99;
        assert_eq!(decode(&bytes), Err(DecodeError::BadType(99)));
    }

    #[test]
    fn open_version_check() {
        let mut bytes = encode(&Message::Open(OpenMsg {
            version: 4,
            asn: Asn(1),
            hold_time: 90,
            router_id: RouterId(1),
            opt_params: vec![],
        }));
        bytes[HEADER_LEN] = 3; // version
        assert_eq!(decode(&bytes), Err(DecodeError::UnsupportedVersion(3)));
    }

    #[test]
    fn open_hold_time_check() {
        for ht in [1u16, 2] {
            let mut bytes = encode(&Message::Open(OpenMsg {
                version: 4,
                asn: Asn(1),
                hold_time: 90,
                router_id: RouterId(1),
                opt_params: vec![],
            }));
            bytes[HEADER_LEN + 3] = (ht >> 8) as u8;
            bytes[HEADER_LEN + 4] = ht as u8;
            assert_eq!(decode(&bytes), Err(DecodeError::BadHoldTime(ht)));
        }
    }

    #[test]
    fn origin_value_validated() {
        let mut a = sample_attrs();
        a.atomic_aggregate = false;
        let upd = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(a),
            nlri: vec![net("10.0.0.0/8")],
        };
        let mut bytes = encode(&Message::Update(upd));
        // ORIGIN is the first encoded attribute; its value byte is at a fixed
        // offset: header(19) + wlen(2) + alen(2) + flags/code/len(3).
        let origin_val = HEADER_LEN + 2 + 2 + 3;
        bytes[origin_val] = 9;
        assert_eq!(decode(&bytes), Err(DecodeError::InvalidOrigin(9)));
    }

    #[test]
    fn missing_mandatory_detected() {
        // NLRI present but zero attribute bytes.
        let mut body = Vec::new();
        body.extend_from_slice(&0u16.to_be_bytes()); // withdrawn len
        body.extend_from_slice(&0u16.to_be_bytes()); // attr len
        body.push(8);
        body.push(10); // 10.0.0.0/8
        let mut msg = Vec::new();
        msg.extend_from_slice(&[0xFF; 16]);
        msg.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
        msg.push(2);
        msg.extend_from_slice(&body);
        assert!(matches!(
            decode(&msg),
            Err(DecodeError::MissingWellKnown(_))
        ));
    }

    #[test]
    fn duplicate_attr_detected() {
        // Two ORIGIN attributes.
        let mut ab = Vec::new();
        for _ in 0..2 {
            ab.extend_from_slice(&[flags::TRANSITIVE, code::ORIGIN, 1, 0]);
        }
        assert_eq!(
            decode_attrs(&ab),
            Err(DecodeError::DuplicateAttr(code::ORIGIN))
        );
    }

    #[test]
    fn unknown_transitive_preserved_with_partial() {
        let mut ab = Vec::new();
        // Mandatory trio.
        ab.extend_from_slice(&[flags::TRANSITIVE, code::ORIGIN, 1, 0]);
        ab.extend_from_slice(&[flags::TRANSITIVE, code::AS_PATH, 4, 2, 1, 0xFD, 0xE9]);
        ab.extend_from_slice(&[flags::TRANSITIVE, code::NEXT_HOP, 4, 10, 0, 0, 1]);
        // Unknown optional transitive code 77.
        ab.extend_from_slice(&[flags::OPTIONAL | flags::TRANSITIVE, 77, 2, 0xAB, 0xCD]);
        // Unknown optional NON-transitive code 78 (dropped).
        ab.extend_from_slice(&[flags::OPTIONAL, 78, 1, 0xEE]);
        let attrs = decode_attrs(&ab).unwrap();
        assert_eq!(attrs.unknown.len(), 1);
        assert_eq!(attrs.unknown[0].code, 77);
        assert!(attrs.unknown[0].flags & flags::PARTIAL != 0);
        assert_eq!(attrs.unknown[0].value, vec![0xAB, 0xCD]);
    }

    #[test]
    fn unknown_well_known_rejected() {
        let ab = [0u8 /* not optional */, 99, 1, 0];
        assert_eq!(
            decode_attrs(&ab),
            Err(DecodeError::UnrecognizedWellKnown(99))
        );
    }

    #[test]
    fn attr_flags_validated() {
        // ORIGIN marked optional: flag error.
        let ab = [flags::OPTIONAL | flags::TRANSITIVE, code::ORIGIN, 1, 0];
        assert!(matches!(
            decode_attrs(&ab),
            Err(DecodeError::AttrFlagsError { code: 1, .. })
        ));
    }

    #[test]
    fn next_hop_zero_rejected() {
        let mut ab = Vec::new();
        ab.extend_from_slice(&[flags::TRANSITIVE, code::ORIGIN, 1, 0]);
        ab.extend_from_slice(&[flags::TRANSITIVE, code::AS_PATH, 4, 2, 1, 0, 5]);
        ab.extend_from_slice(&[flags::TRANSITIVE, code::NEXT_HOP, 4, 0, 0, 0, 0]);
        assert_eq!(decode_attrs(&ab), Err(DecodeError::InvalidNextHop));
    }

    #[test]
    fn nlri_prefix_length_validated() {
        let upd = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(sample_attrs()),
            nlri: vec![net("10.0.0.0/8")],
        };
        let mut bytes = encode(&Message::Update(upd));
        // Last two bytes are the NLRI: [8, 10]; corrupt the length to 60.
        let n = bytes.len();
        bytes[n - 2] = 60;
        assert_eq!(decode(&bytes), Err(DecodeError::InvalidNlri));
    }

    #[test]
    fn extended_length_attr_roundtrip() {
        // A community list long enough to need extended length (>255 bytes).
        let mut a = PathAttrs {
            origin: Origin::Igp,
            as_path: AsPath::sequence([65001]),
            next_hop: Ipv4Addr(0x0A000001),
            ..Default::default()
        };
        for i in 0..100u16 {
            a.communities.insert(Community::from_pair(65001, i));
        }
        let upd = Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(a.clone()),
            nlri: vec![net("10.0.0.0/8")],
        });
        let bytes = encode(&upd);
        let (msg, _) = decode(&bytes).unwrap();
        match msg {
            Message::Update(u) => assert_eq!(u.attrs.unwrap().communities.len(), 100),
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn notification_codes_mapping() {
        assert_eq!(DecodeError::BadMarker.notification_codes(), (1, 1));
        assert_eq!(DecodeError::InvalidOrigin(9).notification_codes(), (3, 6));
        assert_eq!(
            DecodeError::AttrFlagsError { code: 1, flags: 0 }.notification_codes(),
            (3, 4)
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // Cheap deterministic fuzz of the decoder.
        let mut state = 0x12345678u64;
        for len in 0..200usize {
            let mut buf = vec![0u8; len];
            for b in buf.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 33) as u8;
            }
            let _ = decode(&buf); // must not panic
            let _ = decode_attrs(&buf);
        }
    }
}
