//! The concolic execution context: concrete values shadowed by symbolic
//! expressions, and the path condition recorded at every branch.
//!
//! Instrumented code reads input bytes through [`ConcolicCtx::read_u8`] &c.,
//! computes on [`SymWord`]s via the ctx combinators, and funnels every
//! conditional through [`ConcolicCtx::branch`], which records the constraint
//! and returns the concrete outcome so execution proceeds concretely —
//! CONCrete + symbOLIC.

use crate::expr::{BinOp, BoolOp, CmpOp, ExprArena, ExprId};

/// A word value: always has a concrete value; optionally a symbolic
/// expression when it depends on symbolic input bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymWord {
    /// Concrete value (masked to `bits`).
    pub val: u64,
    /// Width in bits.
    pub bits: u8,
    /// Symbolic shadow, if input-dependent.
    pub expr: Option<ExprId>,
}

impl SymWord {
    /// A pure concrete word.
    pub fn concrete(bits: u8, val: u64) -> Self {
        SymWord {
            val: val & mask(bits),
            bits,
            expr: None,
        }
    }

    /// Whether the word depends on symbolic input.
    pub fn is_symbolic(&self) -> bool {
        self.expr.is_some()
    }
}

/// A boolean value with optional symbolic shadow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymBool {
    /// Concrete truth value.
    pub val: bool,
    /// Symbolic shadow, if input-dependent.
    pub expr: Option<ExprId>,
}

impl SymBool {
    /// A pure concrete boolean.
    pub fn concrete(val: bool) -> Self {
        SymBool { val, expr: None }
    }
}

fn mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Identity of a branch site in the instrumented program. Stable across
/// runs — use constants in the instrumented code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// One recorded branch: the constraint expression and the direction taken.
#[derive(Debug, Clone, Copy)]
pub struct BranchRec {
    /// Which branch site.
    pub site: SiteId,
    /// Constraint as written in the code (true = condition held).
    pub constraint: ExprId,
    /// Direction concretely taken.
    pub taken: bool,
}

/// The program input with a symbolic-marking mask.
#[derive(Debug, Clone, Default)]
pub struct SymInput {
    /// Concrete bytes.
    pub bytes: Vec<u8>,
    /// Which byte positions are symbolic.
    pub symbolic: Vec<bool>,
}

impl SymInput {
    /// All bytes symbolic.
    pub fn all_symbolic(bytes: Vec<u8>) -> Self {
        let symbolic = vec![true; bytes.len()];
        SymInput { bytes, symbolic }
    }

    /// No bytes symbolic (pure concrete run).
    pub fn all_concrete(bytes: Vec<u8>) -> Self {
        let symbolic = vec![false; bytes.len()];
        SymInput { bytes, symbolic }
    }

    /// Bytes with an explicit mask (lengths must agree).
    pub fn with_mask(bytes: Vec<u8>, symbolic: Vec<bool>) -> Self {
        assert_eq!(bytes.len(), symbolic.len(), "mask length mismatch");
        SymInput { bytes, symbolic }
    }

    /// Mark the inclusive byte range as symbolic.
    pub fn mark_range(&mut self, start: usize, end: usize) {
        for i in start..=end.min(self.symbolic.len().saturating_sub(1)) {
            self.symbolic[i] = true;
        }
    }

    /// Number of symbolic bytes.
    pub fn symbolic_count(&self) -> usize {
        self.symbolic.iter().filter(|&&s| s).count()
    }
}

/// The concolic execution context for one run.
#[derive(Debug)]
pub struct ConcolicCtx {
    arena: ExprArena,
    input: SymInput,
    path: Vec<BranchRec>,
    /// Extra "oracle" symbolic booleans introduced by the instrumentation
    /// (e.g. the route-preference condition). They live past the end of the
    /// real input bytes: oracle k is pseudo-byte `input.len() + k`.
    oracles: u32,
    /// Explorer-chosen values for oracle pseudo-bytes; absent entries use
    /// the instrumentation's default.
    oracle_overlay: std::collections::BTreeMap<u32, u8>,
}

impl ConcolicCtx {
    /// Start a run over the given input.
    pub fn new(input: SymInput) -> Self {
        Self::with_oracles(input, std::collections::BTreeMap::new())
    }

    /// Start a run with explorer-provided oracle values (pseudo-byte index
    /// → value); solver models for oracle variables are fed back this way.
    pub fn with_oracles(
        input: SymInput,
        oracle_overlay: std::collections::BTreeMap<u32, u8>,
    ) -> Self {
        ConcolicCtx {
            arena: ExprArena::new(),
            input,
            path: Vec::new(),
            oracles: 0,
            oracle_overlay,
        }
    }

    /// The input being executed.
    pub fn input(&self) -> &SymInput {
        &self.input
    }

    /// The expression arena (for the solver).
    pub fn arena(&self) -> &ExprArena {
        &self.arena
    }

    /// Mutable arena access (for the solver's negation nodes).
    pub fn arena_mut(&mut self) -> &mut ExprArena {
        &mut self.arena
    }

    /// The recorded path condition, in execution order.
    pub fn path(&self) -> &[BranchRec] {
        &self.path
    }

    /// Number of oracle variables introduced so far.
    pub fn oracle_count(&self) -> u32 {
        self.oracles
    }

    /// A compact signature of the executed path (site/direction sequence).
    pub fn path_signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &self.path {
            h ^= (b.site.0 as u64) << 1 | b.taken as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    // ------------------------------------------------------------------
    // Reading input
    // ------------------------------------------------------------------

    /// Whether the input has a byte at `idx`.
    pub fn in_bounds(&self, idx: usize) -> bool {
        idx < self.input.bytes.len()
    }

    /// Input length as a concrete word (lengths are not symbolic: DiCE
    /// fixes the input size per exploration and fuzzes sizes via the
    /// grammar layer).
    pub fn len_word(&self) -> SymWord {
        SymWord::concrete(32, self.input.bytes.len() as u64)
    }

    /// Read byte `idx`; symbolic if marked. Panics when out of bounds —
    /// instrumented code must bounds-check with [`ConcolicCtx::branch`]
    /// first, exactly like the real parser.
    // dice-lint: allow(panic-freedom): out-of-bounds reads are the documented bug signal; instrumented parsers bounds-check via branch() first
    pub fn read_u8(&mut self, idx: usize) -> SymWord {
        let b = self.input.bytes[idx];
        if self.input.symbolic[idx] {
            let e = self.arena.input(idx as u32);
            SymWord {
                val: b as u64,
                bits: 8,
                expr: Some(e),
            }
        } else {
            SymWord::concrete(8, b as u64)
        }
    }

    /// Read a big-endian u16 at `idx`.
    pub fn read_u16_be(&mut self, idx: usize) -> SymWord {
        let hi = self.read_u8(idx);
        let lo = self.read_u8(idx + 1);
        let hi16 = self.zext(16, hi);
        let lo16 = self.zext(16, lo);
        let sh = self.shl_const(hi16, 8);
        self.bin(BinOp::Or, sh, lo16)
    }

    /// Read a big-endian u32 at `idx`.
    pub fn read_u32_be(&mut self, idx: usize) -> SymWord {
        let hi = self.read_u16_be(idx);
        let lo = self.read_u16_be(idx + 2);
        let hi32 = self.zext(32, hi);
        let lo32 = self.zext(32, lo);
        let sh = self.shl_const(hi32, 16);
        self.bin(BinOp::Or, sh, lo32)
    }

    /// Introduce a fresh symbolic oracle boolean. The concrete value is the
    /// explorer's overlay entry when present, otherwise `default`. Used to
    /// mark *conditions* (not data) symbolic — the paper's treatment of the
    /// route-preference outcome.
    pub fn oracle_bool(&mut self, default: bool) -> SymBool {
        let idx = self.input.bytes.len() as u32 + self.oracles;
        self.oracles += 1;
        let concrete = match self.oracle_overlay.get(&idx) {
            Some(&b) => b & 1 == 1,
            None => default,
        };
        let byte = self.arena.input(idx);
        let one = self.arena.constant(8, 1);
        let band = self.arena.bin(BinOp::And, 8, byte, one);
        let k = self.arena.constant(8, 1);
        let e = self.arena.cmp(CmpOp::Eq, band, k);
        SymBool {
            val: concrete,
            expr: Some(e),
        }
    }

    // ------------------------------------------------------------------
    // Word combinators
    // ------------------------------------------------------------------

    /// A concrete literal.
    pub fn lit(&mut self, bits: u8, val: u64) -> SymWord {
        SymWord::concrete(bits, val)
    }

    /// Zero-extend to `bits`.
    pub fn zext(&mut self, bits: u8, a: SymWord) -> SymWord {
        debug_assert!(bits >= a.bits);
        SymWord {
            val: a.val,
            bits,
            expr: a.expr.map(|e| self.arena.zext(bits, e)),
        }
    }

    /// Binary operation; operands must have equal width.
    pub fn bin(&mut self, op: BinOp, a: SymWord, b: SymWord) -> SymWord {
        debug_assert_eq!(a.bits, b.bits, "width mismatch in {op:?}");
        let bits = a.bits;
        let val = match op {
            BinOp::Add => a.val.wrapping_add(b.val),
            BinOp::Sub => a.val.wrapping_sub(b.val),
            BinOp::Mul => a.val.wrapping_mul(b.val),
            BinOp::And => a.val & b.val,
            BinOp::Or => a.val | b.val,
            BinOp::Xor => a.val ^ b.val,
            BinOp::Shl => {
                if b.val >= 64 {
                    0
                } else {
                    a.val << b.val
                }
            }
            BinOp::Shr => {
                if b.val >= 64 {
                    0
                } else {
                    a.val >> b.val
                }
            }
        } & mask(bits);
        let expr = match (a.expr, b.expr) {
            (None, None) => None,
            _ => {
                let ea = self.expr_of(a);
                let eb = self.expr_of(b);
                Some(self.arena.bin(op, bits, ea, eb))
            }
        };
        SymWord { val, bits, expr }
    }

    /// Shift left by a constant.
    pub fn shl_const(&mut self, a: SymWord, k: u8) -> SymWord {
        let kw = SymWord::concrete(a.bits, k as u64);
        self.bin(BinOp::Shl, a, kw)
    }

    /// Bitwise-and with a constant.
    pub fn and_const(&mut self, a: SymWord, k: u64) -> SymWord {
        let kw = SymWord::concrete(a.bits, k);
        self.bin(BinOp::And, a, kw)
    }

    /// Add a constant.
    pub fn add_const(&mut self, a: SymWord, k: u64) -> SymWord {
        let kw = SymWord::concrete(a.bits, k);
        self.bin(BinOp::Add, a, kw)
    }

    fn expr_of(&mut self, w: SymWord) -> ExprId {
        match w.expr {
            Some(e) => e,
            None => self.arena.constant(w.bits, w.val),
        }
    }

    // ------------------------------------------------------------------
    // Comparisons and booleans
    // ------------------------------------------------------------------

    /// Compare two words.
    pub fn cmp(&mut self, op: CmpOp, a: SymWord, b: SymWord) -> SymBool {
        let val = match op {
            CmpOp::Eq => a.val == b.val,
            CmpOp::Ne => a.val != b.val,
            CmpOp::Ult => a.val < b.val,
            CmpOp::Ule => a.val <= b.val,
        };
        let expr = match (a.expr, b.expr) {
            (None, None) => None,
            _ => {
                let ea = self.expr_of(a);
                let eb = self.expr_of(b);
                Some(self.arena.cmp(op, ea, eb))
            }
        };
        SymBool { val, expr }
    }

    /// `a == k` against a constant.
    pub fn eq_const(&mut self, a: SymWord, k: u64) -> SymBool {
        let kw = SymWord::concrete(a.bits, k);
        self.cmp(CmpOp::Eq, a, kw)
    }

    /// `a <= k` against a constant.
    pub fn ule_const(&mut self, a: SymWord, k: u64) -> SymBool {
        let kw = SymWord::concrete(a.bits, k);
        self.cmp(CmpOp::Ule, a, kw)
    }

    /// `a < k` against a constant.
    pub fn ult_const(&mut self, a: SymWord, k: u64) -> SymBool {
        let kw = SymWord::concrete(a.bits, k);
        self.cmp(CmpOp::Ult, a, kw)
    }

    /// `k <= a` against a constant.
    pub fn uge_const(&mut self, a: SymWord, k: u64) -> SymBool {
        let kw = SymWord::concrete(a.bits, k);
        self.cmp(CmpOp::Ule, kw, a)
    }

    /// Boolean negation.
    pub fn bnot(&mut self, a: SymBool) -> SymBool {
        SymBool {
            val: !a.val,
            expr: a.expr.map(|e| self.arena.not(e)),
        }
    }

    /// Boolean conjunction.
    pub fn band(&mut self, a: SymBool, b: SymBool) -> SymBool {
        let val = a.val && b.val;
        let expr = match (a.expr, b.expr) {
            (None, None) => None,
            _ => {
                let ea = self.bool_expr(a);
                let eb = self.bool_expr(b);
                Some(self.arena.boolean(BoolOp::And, ea, eb))
            }
        };
        SymBool { val, expr }
    }

    /// Boolean disjunction.
    pub fn bor(&mut self, a: SymBool, b: SymBool) -> SymBool {
        let val = a.val || b.val;
        let expr = match (a.expr, b.expr) {
            (None, None) => None,
            _ => {
                let ea = self.bool_expr(a);
                let eb = self.bool_expr(b);
                Some(self.arena.boolean(BoolOp::Or, ea, eb))
            }
        };
        SymBool { val, expr }
    }

    fn bool_expr(&mut self, b: SymBool) -> ExprId {
        match b.expr {
            Some(e) => e,
            None => self.arena.constant(1, b.val as u64),
        }
    }

    // ------------------------------------------------------------------
    // Branching
    // ------------------------------------------------------------------

    /// THE concolic primitive: take the branch concretely, record the
    /// constraint when the condition is symbolic.
    pub fn branch(&mut self, site: SiteId, cond: SymBool) -> bool {
        if let Some(e) = cond.expr {
            self.path.push(BranchRec {
                site,
                constraint: e,
                taken: cond.val,
            });
        }
        cond.val
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_reads_stay_concrete() {
        let mut ctx = ConcolicCtx::new(SymInput::all_concrete(vec![1, 2, 3, 4]));
        let w = ctx.read_u16_be(0);
        assert_eq!(w.val, 0x0102);
        assert!(!w.is_symbolic());
    }

    #[test]
    fn symbolic_reads_build_exprs() {
        let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(vec![0x12, 0x34]));
        let w = ctx.read_u16_be(0);
        assert_eq!(w.val, 0x1234);
        assert!(w.is_symbolic());
        // Evaluating the expression with the same bytes reproduces the value.
        let e = w.expr.unwrap();
        let v = ctx
            .arena()
            .eval(e, &|i| Some([0x12u64, 0x34][i as usize]))
            .unwrap();
        assert_eq!(v, 0x1234);
    }

    #[test]
    fn partial_masks_respected() {
        let mut input = SymInput::all_concrete(vec![9, 9, 9]);
        input.mark_range(1, 1);
        let mut ctx = ConcolicCtx::new(input);
        assert!(!ctx.read_u8(0).is_symbolic());
        assert!(ctx.read_u8(1).is_symbolic());
        assert!(!ctx.read_u8(2).is_symbolic());
    }

    #[test]
    fn branch_records_only_symbolic() {
        let mut ctx = ConcolicCtx::new(SymInput::with_mask(vec![5, 7], vec![true, false]));
        let s = ctx.read_u8(0);
        let c = ctx.read_u8(1);
        let cond_s = ctx.eq_const(s, 5);
        let cond_c = ctx.eq_const(c, 7);
        assert!(ctx.branch(SiteId(1), cond_s));
        assert!(ctx.branch(SiteId(2), cond_c));
        assert_eq!(ctx.path().len(), 1, "concrete branches are not recorded");
        assert_eq!(ctx.path()[0].site, SiteId(1));
        assert!(ctx.path()[0].taken);
    }

    #[test]
    fn branch_direction_matches_concrete() {
        let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(vec![10]));
        let w = ctx.read_u8(0);
        let cond = ctx.ult_const(w, 5);
        assert!(!ctx.branch(SiteId(3), cond));
        assert!(!ctx.path()[0].taken);
    }

    #[test]
    fn arithmetic_concrete_matches_symbolic_eval() {
        let bytes = vec![200u8, 100];
        let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(bytes.clone()));
        let a = ctx.read_u8(0);
        let b = ctx.read_u8(1);
        let sum = ctx.bin(BinOp::Add, a, b);
        assert_eq!(sum.val, 44, "8-bit modular add");
        let v = ctx
            .arena()
            .eval(sum.expr.unwrap(), &|i| Some(bytes[i as usize] as u64))
            .unwrap();
        assert_eq!(v, sum.val);
    }

    #[test]
    fn oracle_bools_extend_input_space() {
        let mut ctx = ConcolicCtx::new(SymInput::all_concrete(vec![0; 4]));
        let o = ctx.oracle_bool(true);
        assert!(o.expr.is_some());
        assert_eq!(ctx.oracle_count(), 1);
        ctx.branch(SiteId(9), o);
        assert_eq!(ctx.path().len(), 1);
        // Oracle var index is past the input bytes.
        let vars = ctx.arena().vars(ctx.path()[0].constraint);
        assert_eq!(vars, vec![4]);
    }

    #[test]
    fn path_signature_distinguishes_directions() {
        let sig = |taken: bool| {
            let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(vec![if taken { 1 } else { 0 }]));
            let w = ctx.read_u8(0);
            let c = ctx.eq_const(w, 1);
            ctx.branch(SiteId(1), c);
            ctx.path_signature()
        };
        assert_ne!(sig(true), sig(false));
    }

    #[test]
    fn boolean_combinators_track_both_sides() {
        let mut ctx = ConcolicCtx::new(SymInput::all_symbolic(vec![3, 8]));
        let a = ctx.read_u8(0);
        let b = ctx.read_u8(1);
        let ca = ctx.eq_const(a, 3);
        let cb = ctx.ult_const(b, 5);
        let both = ctx.band(ca, cb);
        assert!(!both.val);
        let either = ctx.bor(ca, cb);
        assert!(either.val);
        assert!(both.expr.is_some() && either.expr.is_some());
    }
}
