//! Path exploration strategies over a concolic program.
//!
//! Implements the Oasis-style loop: run an input, take its path condition,
//! negate branch constraints, solve, and enqueue the resulting inputs.
//! Two search orders are provided — plain **DFS negation** and SAGE-style
//! **generational search** scored by predicted new branch coverage — plus a
//! **random-mutation** baseline used by the paper-shape experiment
//! "concolic > grammar > random".

use std::collections::{BTreeMap, BTreeSet, HashSet};

use serde::{Deserialize, Serialize};

use crate::ctx::{BranchRec, ConcolicCtx, SymInput};
use crate::solve::{negation_query, SolveResult, Solver, SolverBudget, SolverStats};

/// Outcome of one program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Input processed to completion.
    Ok,
    /// Input rejected by validation (with the stage that rejected it).
    Rejected(String),
    /// Input crashed the program — a fault candidate.
    Crash(String),
}

/// A program under concolic test. Reads its input through the context.
pub trait ConcolicProgram {
    /// Execute once over `ctx`'s input, recording branches into `ctx`.
    fn run(&mut self, ctx: &mut ConcolicCtx) -> RunStatus;
}

impl<F: FnMut(&mut ConcolicCtx) -> RunStatus> ConcolicProgram for F {
    fn run(&mut self, ctx: &mut ConcolicCtx) -> RunStatus {
        self(ctx)
    }
}

/// Branch-coverage ledger: which (site, direction) pairs have been seen.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    seen: BTreeSet<(u32, bool)>,
}

impl Coverage {
    /// Record a path; returns how many previously unseen (site, direction)
    /// pairs it contributed.
    pub fn add_path(&mut self, path: &[BranchRec]) -> usize {
        let mut new = 0;
        for b in path {
            if self.seen.insert((b.site.0, b.taken)) {
                new += 1;
            }
        }
        new
    }

    /// Whether a (site, direction) pair has been covered.
    pub fn covered(&self, site: u32, taken: bool) -> bool {
        self.seen.contains(&(site, taken))
    }

    /// Total covered (site, direction) pairs.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been covered.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Iterate the covered (site, direction) pairs in ascending order.
    /// Lets callers (e.g. DiCE campaign aggregation) union coverage across
    /// independent exploration sessions.
    pub fn sites(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.seen.iter().copied()
    }

    /// Union another ledger into this one; returns how many previously
    /// unseen (site, direction) pairs `other` contributed.
    ///
    /// This is the thread-safe aggregation path for parallel round
    /// engines: each exploration session owns a private `Coverage` (no
    /// locking on the hot `add_path` path), and completed sessions fold
    /// into a campaign-level union off the critical path. `Coverage` is
    /// `Send + Sync`, so ledgers can move across or be read from worker
    /// threads freely.
    pub fn merge(&mut self, other: &Coverage) -> usize {
        let before = self.seen.len();
        self.seen.extend(other.seen.iter().copied());
        self.seen.len() - before
    }
}

// Parallel campaign engines move ledgers between worker threads and share
// final reports behind `Arc`; keep that guaranteed at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Coverage>();
    assert_send_sync::<ExplorationReport>();
};

/// Search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Negate deepest-first, LIFO worklist.
    Dfs,
    /// SAGE-style generational search with coverage-guided scoring.
    Generational,
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Search order.
    pub strategy: Strategy,
    /// Stop after this many program executions.
    pub max_executions: usize,
    /// Per-query solver budget.
    pub solver_budget: SolverBudget,
    /// Share a refutation cache across seeds: negation queries whose
    /// hash-consed constraint set was already proven UNSAT never reach
    /// the solver again. Caching refutations (not models) keeps the
    /// exploration outcome bit-identical to the uncached run — a refuted
    /// system spawns no child either way. Disable for ablations (the S2
    /// sweep in `exp_campaign`).
    ///
    /// Expect **zero** cache hits on a corpus of shape-disjoint seeds:
    /// the cache keys on structural constraint hashes, and parsers fold
    /// the seed's concrete input length into their comparisons, so seeds
    /// of different lengths never produce a shared chain to hit on
    /// (grammar-generated BGP seeds all differ in length — hence the
    /// "0 refuted" row on demo27). The cross-seed win then comes entirely
    /// from the per-constraint unary memo, which keys on individual
    /// constraints rather than whole chains. Mechanism-tested below in
    /// `refutation_cache_is_idle_on_shape_disjoint_seeds`.
    pub solver_cache: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategy: Strategy::Generational,
            max_executions: 256,
            solver_budget: SolverBudget::default(),
            solver_cache: true,
        }
    }
}

/// One executed input and what happened.
#[derive(Debug, Clone)]
pub struct ExecutionRecord {
    /// The concrete input bytes.
    pub input: Vec<u8>,
    /// Oracle pseudo-byte overrides active for this run.
    pub oracles: BTreeMap<u32, u8>,
    /// Outcome.
    pub status: RunStatus,
    /// Number of recorded (symbolic) branches.
    pub path_len: usize,
    /// Path signature (distinct-path accounting).
    pub path_sig: u64,
    /// Previously unseen (site, direction) pairs this run covered.
    pub new_coverage: usize,
}

/// The result of an exploration session.
#[derive(Debug, Clone, Default)]
pub struct ExplorationReport {
    /// Every execution, in order.
    pub executions: Vec<ExecutionRecord>,
    /// Cumulative covered pairs after each execution (for coverage curves).
    pub coverage_timeline: Vec<usize>,
    /// Distinct path signatures observed.
    pub distinct_paths: usize,
    /// Indices (into `executions`) of crashing runs.
    pub crashes: Vec<usize>,
    /// Aggregate solver statistics.
    pub solver: SolverStats,
    /// The final branch-coverage ledger (set of covered (site, direction)
    /// pairs), for cross-session coverage unions.
    pub coverage: Coverage,
}

impl ExplorationReport {
    /// Final branch coverage.
    pub fn final_coverage(&self) -> usize {
        self.coverage_timeline.last().copied().unwrap_or(0)
    }

    /// Index of the first crash, if any.
    pub fn first_crash(&self) -> Option<usize> {
        self.crashes.first().copied()
    }
}

struct WorkItem {
    bytes: Vec<u8>,
    oracles: BTreeMap<u32, u8>,
    bound: usize,
    score: i64,
    seq: u64,
}

/// Concolic exploration of `program` from the given seed inputs.
///
/// `marker` decides which bytes of an input are symbolic (DiCE's
/// symbolic-marking policy). Seeds play the role of Oasis's test-suite
/// inputs: exploration starts from known-interesting messages rather than
/// from scratch.
// dice-lint: allow(panic-freedom): arena ids and guarded byte offsets index same-sized tables built in this pass
pub fn explore(
    program: &mut dyn ConcolicProgram,
    seeds: &[Vec<u8>],
    marker: &dyn Fn(&[u8]) -> Vec<bool>,
    config: &ExploreConfig,
) -> ExplorationReport {
    let mut solver = Solver::with_budget(config.solver_budget);
    let mut coverage = Coverage::default();
    let mut report = ExplorationReport::default();
    let mut seen_paths: BTreeSet<u64> = BTreeSet::new();
    // Dedup by *synthesized input*, not by path skeleton: two different
    // inputs can share an identical (site, polarity) branch skeleton while
    // their negated children differ (e.g. same parse shape, different
    // attribute payloads) — skeleton-keyed dedup silently drops one of them.
    let mut attempted: HashSet<u64> = HashSet::new();
    // Refutation cache shared across every seed of the session, keyed by
    // the canonical structural hash of the negation query's constraint
    // set. UNSAT is a property of the constraints alone (independent of
    // the seed the model would have been biased toward), so a hit is
    // exactly equivalent to re-solving.
    let mut refuted: HashSet<u64> = HashSet::new();
    // Every negation query dispatched to the solver this session (same
    // structural keying, any outcome). The covered-flip guard consults
    // this in addition to the coverage ledger: a flip may only be skipped
    // when its *exact* query — prefix and all — was already tried, so a
    // covered (site, direction) reached under an incompatible prefix can
    // never shadow the one path that actually leads somewhere new.
    // Maintained whether or not the solver cache is enabled, so the guard
    // behaves identically in both modes (the S2 ablation's byte-identity
    // contract).
    let mut dispatched: HashSet<u64> = HashSet::new();
    // Per-constraint memo (variable lists + unary-filter byte sets) with
    // the same cross-seed structural keying; one path's negation queries
    // share their prefix constraints, so this is where the quadratic
    // solver work goes away.
    let mut memo = crate::solve::UnaryMemo::default();
    let mut queue: Vec<WorkItem> = Vec::new();
    let mut seq = 0u64;

    for seed in seeds {
        attempted.insert(input_key(seed, &BTreeMap::new()));
        queue.push(WorkItem {
            bytes: seed.clone(),
            oracles: BTreeMap::new(),
            bound: 0,
            score: i64::MAX, // seeds always run first
            seq,
        });
        seq += 1;
    }

    let mut pops = 0u64;
    while report.executions.len() < config.max_executions {
        let item = match config.strategy {
            Strategy::Dfs => queue.pop(),
            Strategy::Generational => {
                if queue.is_empty() {
                    None
                } else {
                    pops += 1;
                    // Anti-starvation: every second pop takes the *oldest*
                    // pending item regardless of score. Coverage-guided
                    // scoring alone starves deep children whose target
                    // polarity was covered on an unrelated (and
                    // unsatisfiable-onward) path — exactly the shape of
                    // guarded-bug reachability.
                    let pick = if pops.is_multiple_of(2) {
                        queue
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, w)| w.seq)
                            .map(|(i, _)| i)
                    } else {
                        // Highest score first; FIFO within equal scores.
                        queue
                            .iter()
                            .enumerate()
                            .max_by(|(_, a), (_, b)| a.score.cmp(&b.score).then(b.seq.cmp(&a.seq)))
                            .map(|(i, _)| i)
                    };
                    pick.map(|i| queue.swap_remove(i))
                }
            }
        };
        let Some(item) = item else { break };

        let mask = marker(&item.bytes);
        let input = SymInput::with_mask(item.bytes.clone(), mask);
        let mut ctx = ConcolicCtx::with_oracles(input, item.oracles.clone());
        let status = program.run(&mut ctx);

        let sig = ctx.path_signature();
        let new_cov = coverage.add_path(ctx.path());
        seen_paths.insert(sig); // distinct-path metric only
        if matches!(status, RunStatus::Crash(_)) {
            report.crashes.push(report.executions.len());
        }
        report.executions.push(ExecutionRecord {
            input: item.bytes.clone(),
            oracles: item.oracles.clone(),
            status,
            path_len: ctx.path().len(),
            path_sig: sig,
            new_coverage: new_cov,
        });
        report.coverage_timeline.push(coverage.len());

        // Expand children: negate each branch after the inherited bound.
        // Note: expansion is NOT gated on path novelty — two different
        // inputs can share a branch skeleton yet yield different children;
        // the input-key dedup above suppresses true duplicates.
        let path: Vec<BranchRec> = ctx.path().to_vec();
        let input_len = item.bytes.len();
        // Canonical structural hashes of the run's hash-consed arena: one
        // O(arena) pass, then each negation query hashes in O(1) as a fold
        // over the path prefix. The same branch structure recorded by a
        // different seed (different bytes, separate arena) yields the same
        // hashes. Computed unconditionally: the covered-flip guard keys
        // off them and runs in both cache modes.
        let key_of = |h: u64, want: bool| crate::expr::mix3(0x0051_AB1E, h, want as u64);
        let node_hash = ctx.arena().node_hashes();
        // Per-constraint memo keys for the as-taken prefix (the negated
        // constraint's key is derived per flip below). Only the memo
        // consumes these, so the cache-off ablation skips them.
        let taken_keys: Vec<u64> = if config.solver_cache {
            path.iter()
                .map(|rec| key_of(node_hash[rec.constraint.0 as usize], rec.taken))
                .collect()
        } else {
            Vec::new()
        };
        let mut prefix_hash: u64 = 0xD1CE_0000_5EED_0001;
        let mut sites_seen: HashSet<u32> = HashSet::new();
        for (i, rec) in path.iter().enumerate() {
            let rec_hash = node_hash[rec.constraint.0 as usize];
            let query_hash = crate::expr::mix3(prefix_hash, rec_hash, !rec.taken as u64);
            // A site's *first* occurrence in this path carries no loop
            // context; later occurrences of the same SiteId (instrumented
            // loops reuse one id per attribute / digest entry) target a
            // different dynamic position, so the coverage ledger — keyed
            // by (site, direction) only — cannot prove their flip
            // redundant.
            let first_occurrence = sites_seen.insert(rec.site.0);
            if i >= item.bound {
                if first_occurrence
                    && coverage.covered(rec.site.0, !rec.taken)
                    && dispatched.contains(&query_hash)
                {
                    // Both polarities of this site are covered AND this
                    // exact negation query (prefix included) was already
                    // dispatched once: re-solving can only reproduce a
                    // known child modulo unconstrained bytes. Skip before
                    // even building the query vector. The dispatch check
                    // is what keeps the guard sound — a covered target
                    // reached under an *incompatible* prefix never
                    // suppresses the one query that could reach it from
                    // here (regression-tested).
                    solver.stats.covered_skips += 1;
                } else if config.solver_cache && refuted.contains(&query_hash) {
                    // Structurally identical constraint system already
                    // proven UNSAT (possibly for another seed): no child
                    // either way, skip the solver.
                    solver.stats.cache_hits += 1;
                } else {
                    let q = negation_query(&path, i);
                    let seed_bytes = item.bytes.clone();
                    let seed_oracles = item.oracles.clone();
                    let seed_fn = move |idx: u32| -> u8 {
                        if (idx as usize) < seed_bytes.len() {
                            seed_bytes[idx as usize]
                        } else {
                            seed_oracles.get(&idx).copied().unwrap_or(0)
                        }
                    };
                    let outcome = if config.solver_cache {
                        let mut chashes = taken_keys[..i].to_vec();
                        chashes.push(key_of(rec_hash, !rec.taken));
                        solver.solve_memo(ctx.arena(), &q, &seed_fn, &chashes, &mut memo)
                    } else {
                        solver.solve(ctx.arena(), &q, &seed_fn)
                    };
                    // Only *answered* queries count as dispatched: an
                    // Unknown (budget-exhausted) query produced no child,
                    // and a later seed-biased retry of the same structure
                    // might — the guard must not fossilize it.
                    if !matches!(outcome, SolveResult::Unknown) {
                        dispatched.insert(query_hash);
                    }
                    match outcome {
                        SolveResult::Sat(model) => {
                            let mut bytes = item.bytes.clone();
                            let mut oracles = item.oracles.clone();
                            for (&idx, &val) in &model {
                                if (idx as usize) < input_len {
                                    bytes[idx as usize] = val;
                                } else {
                                    oracles.insert(idx, val);
                                }
                            }
                            if attempted.insert(input_key(&bytes, &oracles)) {
                                // Covered targets (only reachable here via a
                                // repeated site occurrence) keep the lower
                                // priority band.
                                let target_uncovered = !coverage.covered(rec.site.0, !rec.taken);
                                let score = if target_uncovered { 1_000 } else { 500 } - i as i64;
                                queue.push(WorkItem {
                                    bytes,
                                    oracles,
                                    bound: i + 1,
                                    score,
                                    seq,
                                });
                                seq += 1;
                            }
                        }
                        SolveResult::Unsat => {
                            if config.solver_cache {
                                refuted.insert(query_hash);
                            }
                        }
                        SolveResult::Unknown => {}
                    }
                }
            }
            prefix_hash = crate::expr::mix3(prefix_hash, rec_hash, rec.taken as u64);
        }
    }

    report.distinct_paths = seen_paths.len();
    report.solver = solver.stats;
    report.solver.unary_memo_hits = memo.hits;
    report.coverage = coverage;
    report
}

/// Identity of a concrete input: bytes plus oracle overlay (FNV-1a).
fn input_key(bytes: &[u8], oracles: &BTreeMap<u32, u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for (&k, &v) in oracles {
        h ^= ((k as u64) << 8) | v as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Random-mutation fuzzing baseline: same coverage accounting, no solver.
/// Deterministic in `rng_seed`.
pub fn random_fuzz(
    program: &mut dyn ConcolicProgram,
    seeds: &[Vec<u8>],
    marker: &dyn Fn(&[u8]) -> Vec<bool>,
    max_executions: usize,
    rng_seed: u64,
) -> ExplorationReport {
    let mut state = rng_seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut coverage = Coverage::default();
    let mut report = ExplorationReport::default();
    let mut seen_paths = BTreeSet::new();

    for n in 0..max_executions {
        let base = &seeds[n % seeds.len()];
        let mut bytes = base.clone();
        if n >= seeds.len() && !bytes.is_empty() {
            // Mutate 1-4 random bytes.
            let flips = 1 + (rnd() % 4) as usize;
            for _ in 0..flips {
                let i = (rnd() as usize) % bytes.len();
                bytes[i] = rnd() as u8;
            }
        }
        let mask = marker(&bytes);
        let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes.clone(), mask));
        let status = program.run(&mut ctx);
        let sig = ctx.path_signature();
        seen_paths.insert(sig);
        let new_cov = coverage.add_path(ctx.path());
        if matches!(status, RunStatus::Crash(_)) {
            report.crashes.push(report.executions.len());
        }
        report.executions.push(ExecutionRecord {
            input: bytes,
            oracles: BTreeMap::new(),
            status,
            path_len: ctx.path().len(),
            path_sig: sig,
            new_coverage: new_cov,
        });
        report.coverage_timeline.push(coverage.len());
    }
    report.distinct_paths = seen_paths.len();
    report.coverage = coverage;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::SiteId;

    /// A toy parser with a deep guarded branch structure:
    ///   in[0] must be 0x42 (magic), in[1] selects 4 commands,
    ///   command 3 with in[2] >= 0xF0 crashes.
    fn toy_program(ctx: &mut ConcolicCtx) -> RunStatus {
        if !ctx.in_bounds(2) {
            return RunStatus::Rejected("short".into());
        }
        let magic = ctx.read_u8(0);
        let is_magic = ctx.eq_const(magic, 0x42);
        if !ctx.branch(SiteId(1), is_magic) {
            return RunStatus::Rejected("bad magic".into());
        }
        let cmd = ctx.read_u8(1);
        let c3 = ctx.eq_const(cmd, 3);
        if ctx.branch(SiteId(2), c3) {
            let arg = ctx.read_u8(2);
            let big = ctx.uge_const(arg, 0xF0);
            if ctx.branch(SiteId(3), big) {
                return RunStatus::Crash("overflow".into());
            }
            return RunStatus::Ok;
        }
        let c2 = ctx.eq_const(cmd, 2);
        if ctx.branch(SiteId(4), c2) {
            return RunStatus::Ok;
        }
        RunStatus::Ok
    }

    fn all_symbolic(bytes: &[u8]) -> Vec<bool> {
        vec![true; bytes.len()]
    }

    #[test]
    fn concolic_finds_the_deep_crash() {
        // Seed does not even pass the magic check.
        let seeds = vec![vec![0u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 64,
            ..Default::default()
        };
        let report = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        assert!(
            report.first_crash().is_some(),
            "generational search must reach the guarded crash"
        );
        // The crashing input satisfies the chain of constraints.
        let crash = &report.executions[report.first_crash().unwrap()];
        assert_eq!(crash.input[0], 0x42);
        assert_eq!(crash.input[1], 3);
        assert!(crash.input[2] >= 0xF0);
    }

    #[test]
    fn dfs_also_finds_it() {
        let seeds = vec![vec![0u8, 0, 0]];
        let cfg = ExploreConfig {
            strategy: Strategy::Dfs,
            max_executions: 64,
            ..Default::default()
        };
        let report = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        assert!(report.first_crash().is_some());
    }

    #[test]
    fn coverage_grows_monotonically() {
        let seeds = vec![vec![0u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 32,
            ..Default::default()
        };
        let report = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        for w in report.coverage_timeline.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(report.final_coverage() >= 6, "should cover most polarities");
    }

    #[test]
    fn random_fuzz_is_much_weaker() {
        let seeds = vec![vec![0u8, 0, 0]];
        let random = random_fuzz(&mut toy_program, &seeds, &all_symbolic, 64, 1234);
        let cfg = ExploreConfig {
            max_executions: 64,
            ..Default::default()
        };
        let concolic = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        // Random mutation must not beat concolic coverage on this program
        // (magic byte is a 1/256 shot per mutation).
        assert!(concolic.final_coverage() >= random.final_coverage());
        assert!(concolic.first_crash().is_some());
        assert!(
            random.first_crash().is_none(),
            "random should not find the crash in 64 runs"
        );
    }

    #[test]
    fn distinct_paths_counted() {
        let seeds = vec![vec![0x42u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 32,
            ..Default::default()
        };
        let report = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        assert!(report.distinct_paths >= 3);
        assert!(report.distinct_paths <= report.executions.len());
    }

    #[test]
    fn coverage_merge_unions_and_counts_new() {
        let seeds = vec![vec![0u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 24,
            ..Default::default()
        };
        let a = explore(&mut toy_program, &seeds, &all_symbolic, &cfg).coverage;
        let seeds_magic = vec![vec![0x42u8, 3, 0xF5]];
        let b = explore(&mut toy_program, &seeds_magic, &all_symbolic, &cfg).coverage;

        let mut union = Coverage::default();
        assert_eq!(union.merge(&a), a.len());
        let added = union.merge(&b);
        assert!(added <= b.len());
        assert_eq!(union.merge(&b), 0, "re-merging adds nothing");
        let expect: BTreeSet<(u32, bool)> = a.sites().chain(b.sites()).collect();
        assert_eq!(union.len(), expect.len());
        assert!(expect.iter().all(|&(s, d)| union.covered(s, d)));
    }

    #[test]
    fn oracle_branches_explored() {
        // Program whose behavior depends only on an oracle condition.
        fn oracle_prog(ctx: &mut ConcolicCtx) -> RunStatus {
            let pref = ctx.oracle_bool(false);
            if ctx.branch(SiteId(10), pref) {
                RunStatus::Crash("preferred-path fault".into())
            } else {
                RunStatus::Ok
            }
        }
        let seeds = vec![vec![0u8; 2]];
        let cfg = ExploreConfig {
            max_executions: 8,
            ..Default::default()
        };
        let report = explore(&mut oracle_prog, &seeds, &all_symbolic, &cfg);
        assert!(
            report.first_crash().is_some(),
            "negating the oracle branch must flip route preference"
        );
        // The crashing run carries an oracle override.
        let crash = &report.executions[report.first_crash().unwrap()];
        assert!(!crash.oracles.is_empty());
    }

    #[test]
    fn exploration_is_deterministic() {
        let seeds = vec![vec![0u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 40,
            ..Default::default()
        };
        let a = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        let b = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        assert_eq!(a.executions.len(), b.executions.len());
        assert_eq!(a.final_coverage(), b.final_coverage());
        assert_eq!(a.distinct_paths, b.distinct_paths);
        for (x, y) in a.executions.iter().zip(&b.executions) {
            assert_eq!(x.input, y.input);
            assert_eq!(x.path_sig, y.path_sig);
        }
    }

    /// A parser that re-checks the same byte condition at two sites — the
    /// shape that makes negation queries UNSAT (flipping the second check
    /// contradicts the first's prefix) and makes flips redundant once both
    /// polarities are covered.
    fn rechecking_program(ctx: &mut ConcolicCtx) -> RunStatus {
        if !ctx.in_bounds(0) {
            return RunStatus::Rejected("short".into());
        }
        let a = ctx.read_u8(0);
        let first = ctx.eq_const(a, 5);
        let hit1 = ctx.branch(SiteId(1), first);
        let again = ctx.eq_const(a, 5);
        let hit2 = ctx.branch(SiteId(2), again);
        let _ = (hit1, hit2);
        RunStatus::Ok
    }

    #[test]
    fn refutation_cache_preserves_outcomes_and_saves_queries() {
        // The cache may only skip queries whose answer is already known
        // to be UNSAT, so the executed inputs, coverage and crash set must
        // be bit-identical with the cache on and off; only the solver
        // query count may shrink. Two same-shape seeds make the second
        // seed's contradictory flip a cross-seed cache hit.
        let seeds = vec![vec![0u8], vec![1u8]];
        let run = |solver_cache: bool| {
            let cfg = ExploreConfig {
                max_executions: 16,
                solver_cache,
                ..Default::default()
            };
            explore(&mut rechecking_program, &seeds, &all_symbolic, &cfg)
        };
        let cached = run(true);
        let fresh = run(false);
        assert_eq!(cached.executions.len(), fresh.executions.len());
        for (a, b) in cached.executions.iter().zip(&fresh.executions) {
            assert_eq!(a.input, b.input, "cache must not alter exploration");
            assert_eq!(a.path_sig, b.path_sig);
        }
        assert_eq!(cached.final_coverage(), fresh.final_coverage());
        assert_eq!(cached.crashes, fresh.crashes);
        assert_eq!(fresh.solver.cache_hits, 0);
        assert_eq!(fresh.solver.unary_memo_hits, 0);
        assert!(
            cached.solver.unary_memo_hits > 0,
            "shared prefix constraints must hit the unary memo: {:?}",
            cached.solver
        );
        assert!(
            cached.solver.cache_hits > 0,
            "the second seed's contradictory flip must hit the cache: {:?}",
            cached.solver
        );
        assert_eq!(
            cached.solver.queries + cached.solver.cache_hits,
            fresh.solver.queries,
            "every cache hit replaces exactly one solve — the invariant \
             RoundReport.solver_queries (answered queries) relies on"
        );
        assert!(cached.solver.queries < fresh.solver.queries);
        assert!(cached.solver.cache_hit_rate() > 0.0);
        assert!(cached.solver.unsat < fresh.solver.unsat);
    }

    #[test]
    fn refutation_cache_is_idle_on_shape_disjoint_seeds() {
        // The demo27 "0 refuted / N solves (0% hit rate)" diagnosis as a
        // mechanism test. Negation queries are cached by the structural
        // hash of their constraint chain, and a parser folds the seed's
        // concrete input length into its comparisons — so two seeds can
        // only share refutations when they have the same length. Grammar
        // seeds are length-disjoint by construction, leaving the cache
        // structurally idle; the solver-side win comes from the
        // per-constraint unary memo instead.
        fn length_folding_program(ctx: &mut ConcolicCtx) -> RunStatus {
            if !ctx.in_bounds(0) {
                return RunStatus::Rejected("short".into());
            }
            // Model of a framing check: the declared size (symbolic byte
            // 0) is compared against the concrete input length, twice —
            // the rechecking shape that produces UNSAT flips.
            let declared = ctx.read_u8(0);
            let n = ctx.len_word().val;
            let first = ctx.eq_const(declared, n);
            let hit1 = ctx.branch(SiteId(1), first);
            let again = ctx.eq_const(declared, n);
            let hit2 = ctx.branch(SiteId(2), again);
            let _ = (hit1, hit2);
            RunStatus::Ok
        }
        let run = |seeds: Vec<Vec<u8>>| {
            let cfg = ExploreConfig {
                max_executions: 16,
                ..Default::default()
            };
            explore(&mut length_folding_program, &seeds, &all_symbolic, &cfg)
        };
        // Positive control: two same-length seeds share every chain.
        let same_shape = run(vec![vec![0u8, 0], vec![9u8, 9]]);
        assert!(
            same_shape.solver.cache_hits > 0,
            "same-length seeds must share refutations: {:?}",
            same_shape.solver
        );
        // Length-disjoint corpus: every chain differs in the folded
        // length constant, so nothing can hit — the demo27 shape.
        let disjoint = run(vec![vec![0u8], vec![0u8, 0], vec![0u8, 0, 0]]);
        assert!(disjoint.solver.queries > 0);
        assert_eq!(
            disjoint.solver.cache_hits, 0,
            "length-disjoint seeds cannot share refutation chains: {:?}",
            disjoint.solver
        );
        assert!(
            disjoint.solver.unary_memo_hits > 0,
            "the per-constraint memo still wins within each seed family: {:?}",
            disjoint.solver
        );
    }

    #[test]
    fn covered_flips_are_skipped_before_query_construction() {
        // Two independent byte checks and two same-shape seeds: the
        // second-generation children re-encounter negation queries that
        // were already dispatched (identical structural prefix) once every
        // polarity is covered — exactly the redundancy the guard prunes.
        fn two_sites(ctx: &mut ConcolicCtx) -> RunStatus {
            if !ctx.in_bounds(1) {
                return RunStatus::Rejected("short".into());
            }
            let a = ctx.read_u8(0);
            let c1 = ctx.eq_const(a, 5);
            ctx.branch(SiteId(1), c1);
            let b = ctx.read_u8(1);
            let c2 = ctx.eq_const(b, 7);
            ctx.branch(SiteId(2), c2);
            RunStatus::Ok
        }
        let seeds = vec![vec![0u8, 0], vec![1u8, 1]];
        let cfg = ExploreConfig {
            max_executions: 24,
            ..Default::default()
        };
        let report = explore(&mut two_sites, &seeds, &all_symbolic, &cfg);
        assert!(
            report.solver.covered_skips > 0,
            "redundant re-dispatched flips must be guarded: {:?}",
            report.solver
        );
        // The guard must not cost coverage: all four polarities reached.
        assert_eq!(report.final_coverage(), 4);
    }

    #[test]
    fn guard_preserves_context_dependent_flips() {
        // Review-driven regression ("diamond" shape): site2's taken
        // polarity is first covered under a prefix (b0 < 128) that is
        // incompatible with the crash (needs b0 >= 128 AND b1 == b0). A
        // coverage-only guard would prune the one flip that reaches the
        // crash; the dispatch-identity check must keep it solvable.
        fn diamond(ctx: &mut ConcolicCtx) -> RunStatus {
            if !ctx.in_bounds(1) {
                return RunStatus::Rejected("short".into());
            }
            let b0 = ctx.read_u8(0);
            let small = ctx.ult_const(b0, 128);
            let is_small = ctx.branch(SiteId(1), small);
            let b1 = ctx.read_u8(1);
            let eq = ctx.cmp(crate::expr::CmpOp::Eq, b1, b0);
            let matches = ctx.branch(SiteId(2), eq);
            if !is_small && matches {
                return RunStatus::Crash("large mirrored byte".into());
            }
            RunStatus::Ok
        }
        // Seed [0,0] covers (site2, true) under the small-b0 prefix.
        let seeds = vec![vec![0u8, 0]];
        let cfg = ExploreConfig {
            max_executions: 32,
            ..Default::default()
        };
        let report = explore(&mut diamond, &seeds, &all_symbolic, &cfg);
        let crash = report
            .first_crash()
            .expect("crash behind a context-dependent flip must stay reachable");
        let input = &report.executions[crash].input;
        assert!(input[0] >= 128 && input[1] == input[0], "input {input:?}");
    }

    #[test]
    fn guard_spares_repeated_site_occurrences() {
        // Instrumented loops reuse one SiteId per iteration (BGP attribute
        // loop, gossip digest entries). Once one run covers both
        // polarities of such a site, the coverage ledger can no longer
        // distinguish iterations — the guard must only prune the site's
        // first occurrence per path, or crashes reachable via later
        // iterations become unreachable.
        fn loopy(ctx: &mut ConcolicCtx) -> RunStatus {
            if !ctx.in_bounds(2) {
                return RunStatus::Rejected("short".into());
            }
            let mut magics = 0u32;
            for k in 0..3 {
                let b = ctx.read_u8(k);
                let is_magic = ctx.eq_const(b, 7);
                if ctx.branch(SiteId(40), is_magic) {
                    magics += 1;
                }
            }
            if magics == 3 {
                return RunStatus::Crash("all-magic".into());
            }
            RunStatus::Ok
        }
        // The seed alone covers BOTH polarities of site 40 (one magic
        // byte, two non-magic), so a first-occurrence-only guard is the
        // difference between reaching the crash and never solving again.
        let seeds = vec![vec![7u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 32,
            ..Default::default()
        };
        let report = explore(&mut loopy, &seeds, &all_symbolic, &cfg);
        let crash = report
            .first_crash()
            .expect("later-iteration flips must stay solvable");
        assert_eq!(report.executions[crash].input, vec![7, 7, 7]);
    }

    #[test]
    fn guard_keeps_deep_crash_reachable() {
        // The covered-flip guard prunes redundant work but must not stop
        // generational search from chaining uncovered flips to the deep
        // guarded crash.
        let seeds = vec![vec![0u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 64,
            ..Default::default()
        };
        let report = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        assert!(report.first_crash().is_some());
    }

    #[test]
    fn respects_execution_budget() {
        let seeds = vec![vec![0u8, 0, 0]];
        let cfg = ExploreConfig {
            max_executions: 5,
            ..Default::default()
        };
        let report = explore(&mut toy_program, &seeds, &all_symbolic, &cfg);
        assert!(report.executions.len() <= 5);
    }

    #[test]
    fn partial_symbolic_marking_limits_search() {
        // Only byte 0 symbolic: the crash (needs bytes 1 and 2) is
        // unreachable, but the magic branch is still explored.
        let marker = |bytes: &[u8]| {
            let mut m = vec![false; bytes.len()];
            if !m.is_empty() {
                m[0] = true;
            }
            m
        };
        let seeds = vec![vec![0u8, 3, 0xF5]];
        let cfg = ExploreConfig {
            max_executions: 32,
            ..Default::default()
        };
        let report = explore(&mut toy_program, &seeds, &marker, &cfg);
        assert!(
            report.first_crash().is_some(),
            "bytes 1,2 already set by seed"
        );
        let seeds2 = vec![vec![0u8, 0, 0]];
        let report2 = explore(&mut toy_program, &seeds2, &marker, &cfg);
        assert!(
            report2.first_crash().is_none(),
            "cannot steer concrete bytes"
        );
    }
}
