//! Hash-consed symbolic expressions over input bytes.
//!
//! Expressions form a DAG stored in an arena; nodes are deduplicated so the
//! same sub-expression is represented once. Word values carry an explicit
//! bit width (8/16/32/64) and all arithmetic is modular in that width, which
//! matches how the instrumented parsers compute on the wire bytes.

use std::collections::HashMap;

/// Index of an expression in its arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub u32);

/// Binary word operators (modular in the node's width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Word comparison operators (unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Ult,
    Ule,
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BoolOp {
    And,
    Or,
}

/// An expression node. Word nodes produce `bits`-wide unsigned values;
/// comparison and boolean nodes produce truth values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant word.
    Const {
        /// Width in bits (8..=64).
        bits: u8,
        /// Value, already masked to `bits`.
        val: u64,
    },
    /// The `idx`-th symbolic input byte (8 bits wide).
    Input {
        /// Byte position in the program input.
        idx: u32,
    },
    /// Binary word operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Result width.
        bits: u8,
        /// Left operand.
        a: ExprId,
        /// Right operand.
        b: ExprId,
    },
    /// Zero-extend a narrower word.
    ZExt {
        /// Target width.
        bits: u8,
        /// Operand.
        a: ExprId,
    },
    /// Comparison producing a boolean.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        a: ExprId,
        /// Right operand.
        b: ExprId,
    },
    /// Boolean negation.
    Not(ExprId),
    /// Boolean connective.
    Bool {
        /// Connective.
        op: BoolOp,
        /// Left operand.
        a: ExprId,
        /// Right operand.
        b: ExprId,
    },
}

fn mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Hash-consing arena of expressions.
#[derive(Debug, Default, Clone)]
pub struct ExprArena {
    nodes: Vec<Expr>,
    cache: HashMap<Expr, ExprId>,
}

impl ExprArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Intern a node.
    pub fn intern(&mut self, e: Expr) -> ExprId {
        if let Some(&id) = self.cache.get(&e) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(e);
        self.cache.insert(e, id);
        id
    }

    /// Fetch a node.
    // dice-lint: allow(panic-freedom): ExprIds are minted only by this arena, so they index in bounds
    pub fn get(&self, id: ExprId) -> Expr {
        self.nodes[id.0 as usize]
    }

    /// Intern a constant.
    pub fn constant(&mut self, bits: u8, val: u64) -> ExprId {
        self.intern(Expr::Const {
            bits,
            val: val & mask(bits),
        })
    }

    /// Intern an input byte reference.
    pub fn input(&mut self, idx: u32) -> ExprId {
        self.intern(Expr::Input { idx })
    }

    /// Build a binary op with constant folding.
    pub fn bin(&mut self, op: BinOp, bits: u8, a: ExprId, b: ExprId) -> ExprId {
        if let (Expr::Const { val: va, .. }, Expr::Const { val: vb, .. }) =
            (self.get(a), self.get(b))
        {
            let v = eval_bin(op, bits, va, vb);
            return self.constant(bits, v);
        }
        self.intern(Expr::Bin { op, bits, a, b })
    }

    /// Build a zero-extension with folding.
    pub fn zext(&mut self, bits: u8, a: ExprId) -> ExprId {
        if let Expr::Const { val, .. } = self.get(a) {
            return self.constant(bits, val);
        }
        self.intern(Expr::ZExt { bits, a })
    }

    /// Build a comparison with folding.
    pub fn cmp(&mut self, op: CmpOp, a: ExprId, b: ExprId) -> ExprId {
        if let (Expr::Const { val: va, .. }, Expr::Const { val: vb, .. }) =
            (self.get(a), self.get(b))
        {
            let t = eval_cmp(op, va, vb);
            return self.constant(1, t as u64);
        }
        self.intern(Expr::Cmp { op, a, b })
    }

    /// Build a boolean negation, collapsing double negation.
    pub fn not(&mut self, a: ExprId) -> ExprId {
        match self.get(a) {
            Expr::Not(inner) => inner,
            Expr::Const { val, .. } => self.constant(1, (val == 0) as u64),
            _ => self.intern(Expr::Not(a)),
        }
    }

    /// Build a boolean connective with folding.
    pub fn boolean(&mut self, op: BoolOp, a: ExprId, b: ExprId) -> ExprId {
        if let (Expr::Const { val: va, .. }, Expr::Const { val: vb, .. }) =
            (self.get(a), self.get(b))
        {
            let t = match op {
                BoolOp::And => va != 0 && vb != 0,
                BoolOp::Or => va != 0 || vb != 0,
            };
            return self.constant(1, t as u64);
        }
        self.intern(Expr::Bool { op, a, b })
    }

    /// Evaluate `id` under an assignment of input bytes. Returns `None`
    /// when a referenced input byte is unassigned.
    pub fn eval(&self, id: ExprId, lookup: &dyn Fn(u32) -> Option<u64>) -> Option<u64> {
        match self.get(id) {
            Expr::Const { val, .. } => Some(val),
            Expr::Input { idx } => lookup(idx),
            Expr::Bin { op, bits, a, b } => {
                let va = self.eval(a, lookup)?;
                let vb = self.eval(b, lookup)?;
                Some(eval_bin(op, bits, va, vb))
            }
            Expr::ZExt { a, .. } => self.eval(a, lookup),
            Expr::Cmp { op, a, b } => {
                let va = self.eval(a, lookup)?;
                let vb = self.eval(b, lookup)?;
                Some(eval_cmp(op, va, vb) as u64)
            }
            Expr::Not(a) => Some((self.eval(a, lookup)? == 0) as u64),
            Expr::Bool { op, a, b } => {
                // Short-circuit so partially-assigned inputs still decide
                // when one side is conclusive.
                let va = self.eval(a, lookup);
                let vb = self.eval(b, lookup);
                match (op, va, vb) {
                    (BoolOp::And, Some(0), _) | (BoolOp::And, _, Some(0)) => Some(0),
                    (BoolOp::Or, Some(x), _) if x != 0 => Some(1),
                    (BoolOp::Or, _, Some(x)) if x != 0 => Some(1),
                    (_, Some(x), Some(y)) => Some(match op {
                        BoolOp::And => ((x != 0) && (y != 0)) as u64,
                        BoolOp::Or => ((x != 0) || (y != 0)) as u64,
                    }),
                    _ => None,
                }
            }
        }
    }

    /// Ternary (known-bits) evaluation under a *partial* assignment:
    /// returns a word whose `known` mask says which result bits are already
    /// determined. This lets the solver refute constraints like
    /// `(addr & 0xFF000000) == K` as soon as the single relevant byte is
    /// assigned, instead of enumerating the irrelevant ones.
    pub fn eval3(&self, id: ExprId, lookup: &dyn Fn(u32) -> Option<u64>) -> Ternary {
        match self.get(id) {
            Expr::Const { bits, val } => Ternary {
                known: mask(bits),
                val,
                bits,
            },
            Expr::Input { idx } => match lookup(idx) {
                Some(v) => Ternary {
                    known: 0xFF,
                    val: v & 0xFF,
                    bits: 8,
                },
                None => Ternary {
                    known: 0,
                    val: 0,
                    bits: 8,
                },
            },
            Expr::ZExt { bits, a } => {
                let inner = self.eval3(a, lookup);
                // Upper bits become known zeros.
                Ternary {
                    known: inner.known | (mask(bits) & !mask(inner.bits)),
                    val: inner.val,
                    bits,
                }
            }
            Expr::Bin { op, bits, a, b } => {
                let x = self.eval3(a, lookup);
                let y = self.eval3(b, lookup);
                let m = mask(bits);
                match op {
                    BinOp::And => {
                        let known = (x.known & y.known) | (x.known & !x.val) | (y.known & !y.val);
                        Ternary {
                            known: known & m,
                            val: x.val & y.val & known & m,
                            bits,
                        }
                    }
                    BinOp::Or => {
                        let known = (x.known & y.known) | (x.known & x.val) | (y.known & y.val);
                        Ternary {
                            known: known & m,
                            val: (x.val | y.val) & known & m,
                            bits,
                        }
                    }
                    BinOp::Xor => {
                        let known = x.known & y.known & m;
                        Ternary {
                            known,
                            val: (x.val ^ y.val) & known,
                            bits,
                        }
                    }
                    BinOp::Shl | BinOp::Shr => {
                        if y.known == mask(y.bits) {
                            let sh = y.val;
                            if sh >= 64 {
                                return Ternary {
                                    known: m,
                                    val: 0,
                                    bits,
                                };
                            }
                            let (known, val) = if op == BinOp::Shl {
                                // Low bits become known zeros.
                                (((x.known << sh) | mask(sh as u8)) & m, (x.val << sh) & m)
                            } else {
                                // High bits become known zeros within width.
                                (((x.known >> sh) | (m & !(m >> sh))) & m, (x.val >> sh) & m)
                            };
                            Ternary {
                                known,
                                val: val & known,
                                bits,
                            }
                        } else {
                            Ternary {
                                known: 0,
                                val: 0,
                                bits,
                            }
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul => {
                        // Exact only under full knowledge (carries spread).
                        if x.known == mask(x.bits) && y.known == mask(y.bits) {
                            let v = eval_bin(op, bits, x.val, y.val);
                            Ternary {
                                known: m,
                                val: v,
                                bits,
                            }
                        } else {
                            Ternary {
                                known: 0,
                                val: 0,
                                bits,
                            }
                        }
                    }
                }
            }
            Expr::Cmp { op, a, b } => {
                let x = self.eval3(a, lookup);
                let y = self.eval3(b, lookup);

                match op {
                    CmpOp::Eq => match ternary_eq(&x, &y) {
                        Some(true) => Ternary::known_bool(true),
                        Some(false) => Ternary::known_bool(false),
                        None => Ternary::unknown_bool(),
                    },
                    CmpOp::Ne => match ternary_eq(&x, &y) {
                        Some(true) => Ternary::known_bool(false),
                        Some(false) => Ternary::known_bool(true),
                        None => Ternary::unknown_bool(),
                    },
                    CmpOp::Ult => match ternary_cmp_lt(&x, &y, false) {
                        Some(v) => Ternary::known_bool(v),
                        None => Ternary::unknown_bool(),
                    },
                    CmpOp::Ule => match ternary_cmp_lt(&x, &y, true) {
                        Some(v) => Ternary::known_bool(v),
                        None => Ternary::unknown_bool(),
                    },
                }
            }
            Expr::Not(a) => {
                let x = self.eval3(a, lookup);
                if x.known & 1 == 1 {
                    Ternary::known_bool(x.val & 1 == 0)
                } else {
                    Ternary::unknown_bool()
                }
            }
            Expr::Bool { op, a, b } => {
                let x = self.eval3(a, lookup);
                let y = self.eval3(b, lookup);
                let xv = x.as_bool();
                let yv = y.as_bool();
                match op {
                    BoolOp::And => match (xv, yv) {
                        (Some(false), _) | (_, Some(false)) => Ternary::known_bool(false),
                        (Some(true), Some(true)) => Ternary::known_bool(true),
                        _ => Ternary::unknown_bool(),
                    },
                    BoolOp::Or => match (xv, yv) {
                        (Some(true), _) | (_, Some(true)) => Ternary::known_bool(true),
                        (Some(false), Some(false)) => Ternary::known_bool(false),
                        _ => Ternary::unknown_bool(),
                    },
                }
            }
        }
    }

    /// Structural hashes for every node, computed in one O(n) pass.
    ///
    /// `out[i]` identifies the *shape and content* of node `i` — operator,
    /// width, constants, input indices, and (recursively) its operands —
    /// independent of the arena it was interned in. Two runs that record
    /// the same branch structure produce identical hashes even though
    /// their arenas were built separately, which is what lets the
    /// negation-query cache in `dice-concolic::explore` recognize a
    /// constraint system it has already refuted for an earlier seed.
    /// Hash-consing makes this cheap: nodes only reference earlier ids,
    /// so one forward pass suffices and each node costs O(1).
    // dice-lint: allow(panic-freedom): nodes reference only earlier ids, so out[] is already populated
    pub fn node_hashes(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(self.nodes.len());
        for e in &self.nodes {
            let h = match *e {
                Expr::Const { bits, val } => mix3(0x01, bits as u64, val),
                Expr::Input { idx } => mix3(0x02, idx as u64, 0),
                Expr::Bin { op, bits, a, b } => {
                    let lhs = out[a.0 as usize];
                    let rhs = out[b.0 as usize];
                    mix3(0x03 | (op as u64) << 8 | (bits as u64) << 16, lhs, rhs)
                }
                Expr::ZExt { bits, a } => mix3(0x04 | (bits as u64) << 16, out[a.0 as usize], 0),
                Expr::Cmp { op, a, b } => {
                    let lhs = out[a.0 as usize];
                    let rhs = out[b.0 as usize];
                    mix3(0x05 | (op as u64) << 8, lhs, rhs)
                }
                Expr::Not(a) => mix3(0x06, out[a.0 as usize], 0),
                Expr::Bool { op, a, b } => {
                    let lhs = out[a.0 as usize];
                    let rhs = out[b.0 as usize];
                    mix3(0x07 | (op as u64) << 8, lhs, rhs)
                }
            };
            out.push(h);
        }
        out
    }

    /// Collect the distinct input-byte indices referenced by `id`.
    pub fn vars(&self, id: ExprId) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_vars(id, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, id: ExprId, out: &mut Vec<u32>) {
        match self.get(id) {
            Expr::Const { .. } => {}
            Expr::Input { idx } => out.push(idx),
            Expr::Bin { a, b, .. } | Expr::Cmp { a, b, .. } | Expr::Bool { a, b, .. } => {
                self.collect_vars(a, out);
                self.collect_vars(b, out);
            }
            Expr::ZExt { a, .. } | Expr::Not(a) => self.collect_vars(a, out),
        }
    }

    /// Pretty-print an expression (for diagnostics and reports).
    pub fn render(&self, id: ExprId) -> String {
        match self.get(id) {
            Expr::Const { val, bits } => format!("{val}:{bits}"),
            Expr::Input { idx } => format!("in[{idx}]"),
            Expr::Bin { op, a, b, .. } => {
                let s = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                };
                format!("({} {} {})", self.render(a), s, self.render(b))
            }
            Expr::ZExt { a, bits } => format!("zext{}({})", bits, self.render(a)),
            Expr::Cmp { op, a, b } => {
                let s = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Ult => "<",
                    CmpOp::Ule => "<=",
                };
                format!("({} {} {})", self.render(a), s, self.render(b))
            }
            Expr::Not(a) => format!("!{}", self.render(a)),
            Expr::Bool { op, a, b } => {
                let s = match op {
                    BoolOp::And => "&&",
                    BoolOp::Or => "||",
                };
                format!("({} {} {})", self.render(a), s, self.render(b))
            }
        }
    }
}

/// A partially known word: bit `i` is determined iff `known` bit `i` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ternary {
    /// Which bits are determined.
    pub known: u64,
    /// Values of the determined bits (zero elsewhere).
    pub val: u64,
    /// Word width.
    pub bits: u8,
}

impl Ternary {
    fn known_bool(v: bool) -> Ternary {
        Ternary {
            known: 1,
            val: v as u64,
            bits: 1,
        }
    }
    fn unknown_bool() -> Ternary {
        Ternary {
            known: 0,
            val: 0,
            bits: 1,
        }
    }
    /// Truthiness, if determined.
    pub fn as_bool(&self) -> Option<bool> {
        if self.known & 1 == 1 {
            Some(self.val & 1 == 1)
        } else {
            // A word with any known-one bit is definitely truthy.
            if self.val & self.known != 0 {
                Some(true)
            } else if self.known == mask(self.bits) {
                Some(self.val != 0)
            } else {
                None
            }
        }
    }
    /// Smallest value consistent with the known bits.
    pub fn min(&self) -> u64 {
        self.val & self.known
    }
    /// Largest value consistent with the known bits.
    pub fn max(&self) -> u64 {
        (self.val & self.known) | (mask(self.bits) & !self.known)
    }
}

/// Definite equality verdict between two partially known words, if any.
fn ternary_eq(a: &Ternary, b: &Ternary) -> Option<bool> {
    let both = a.known & b.known;
    if (a.val ^ b.val) & both != 0 {
        return Some(false); // a determined bit differs
    }
    let w = mask(a.bits.max(b.bits));
    if a.known & w == w && b.known & w == w {
        return Some(true);
    }
    None
}

/// Definite `a < b` (or `a <= b` when `or_eq`) verdict, if any, via bounds.
fn ternary_cmp_lt(a: &Ternary, b: &Ternary, or_eq: bool) -> Option<bool> {
    if or_eq {
        if a.max() <= b.min() {
            return Some(true);
        }
        if a.min() > b.max() {
            return Some(false);
        }
    } else {
        if a.max() < b.min() {
            return Some(true);
        }
        if a.min() >= b.max() {
            return Some(false);
        }
    }
    None
}

/// SplitMix64-style mixer combining three words into one structural hash.
pub(crate) fn mix3(tag: u64, a: u64, b: u64) -> u64 {
    let mut z = tag
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.rotate_left(17))
        .wrapping_add(b.rotate_left(41));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn eval_bin(op: BinOp, bits: u8, a: u64, b: u64) -> u64 {
    let m = mask(bits);
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a << b
            }
        }
        BinOp::Shr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
    };
    v & m
}

fn eval_cmp(op: CmpOp, a: u64, b: u64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Ult => a < b,
        CmpOp::Ule => a <= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut a = ExprArena::new();
        let c1 = a.constant(8, 5);
        let c2 = a.constant(8, 5);
        assert_eq!(c1, c2);
        assert_eq!(a.len(), 1);
        let i1 = a.input(3);
        let i2 = a.input(3);
        assert_eq!(i1, i2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn constant_folding() {
        let mut a = ExprArena::new();
        let x = a.constant(8, 200);
        let y = a.constant(8, 100);
        let sum = a.bin(BinOp::Add, 8, x, y);
        assert_eq!(
            a.get(sum),
            Expr::Const { bits: 8, val: 44 },
            "modular add folds"
        );
        let cmp = a.cmp(CmpOp::Ult, y, x);
        assert_eq!(a.get(cmp), Expr::Const { bits: 1, val: 1 });
    }

    #[test]
    fn eval_with_assignment() {
        let mut a = ExprArena::new();
        let i0 = a.input(0);
        let i1 = a.input(1);
        let hi = a.zext(16, i0);
        let lo = a.zext(16, i1);
        let k8 = a.constant(16, 8);
        let shifted = a.bin(BinOp::Shl, 16, hi, k8);
        let word = a.bin(BinOp::Or, 16, shifted, lo);
        let val = a
            .eval(word, &|idx| Some(if idx == 0 { 0x12 } else { 0x34 }))
            .unwrap();
        assert_eq!(val, 0x1234);
    }

    #[test]
    fn eval_partial_assignment_is_none() {
        let mut a = ExprArena::new();
        let i0 = a.input(0);
        let i9 = a.input(9);
        let sum = a.bin(BinOp::Add, 8, i0, i9);
        let r = a.eval(sum, &|idx| if idx == 0 { Some(1) } else { None });
        assert_eq!(r, None);
    }

    #[test]
    fn bool_short_circuit() {
        let mut a = ExprArena::new();
        let i0 = a.input(0);
        let k = a.constant(8, 5);
        let undecidable = a.cmp(CmpOp::Eq, i0, k);
        let fals = a.constant(1, 0);
        let tru = a.constant(1, 1);
        let and = a.boolean(BoolOp::And, undecidable, fals);
        // `x && false` is decidable without knowing x.
        assert_eq!(a.eval(and, &|_| None), Some(0));
        let or = a.boolean(BoolOp::Or, tru, undecidable);
        assert_eq!(a.eval(or, &|_| None), Some(1));
    }

    #[test]
    fn double_negation_collapses() {
        let mut a = ExprArena::new();
        let i0 = a.input(0);
        let k = a.constant(8, 7);
        let c = a.cmp(CmpOp::Eq, i0, k);
        let n = a.not(c);
        let nn = a.not(n);
        assert_eq!(nn, c);
    }

    #[test]
    fn vars_collected() {
        let mut a = ExprArena::new();
        let i2 = a.input(2);
        let i7 = a.input(7);
        let s = a.bin(BinOp::Xor, 8, i2, i7);
        let k = a.constant(8, 1);
        let c = a.cmp(CmpOp::Ne, s, k);
        assert_eq!(a.vars(c), vec![2, 7]);
    }

    #[test]
    fn shift_overflow_is_zero() {
        assert_eq!(eval_bin(BinOp::Shl, 8, 1, 64), 0);
        assert_eq!(eval_bin(BinOp::Shr, 8, 0xFF, 64), 0);
    }

    #[test]
    fn render_is_readable() {
        let mut a = ExprArena::new();
        let i0 = a.input(0);
        let k = a.constant(8, 2);
        let c = a.cmp(CmpOp::Ule, i0, k);
        assert_eq!(a.render(c), "(in[0] <= 2:8)");
    }

    // ---- ternary (known-bits) evaluation -------------------------------

    /// Build `(addr32 & mask) == want` over 4 input bytes.
    fn masked_eq(a: &mut ExprArena, maskv: u64, want: u64) -> ExprId {
        let mut addr = a.constant(32, 0);
        for k in 0..4u32 {
            let byte = a.input(k);
            let w = a.zext(32, byte);
            let sh = a.constant(32, (24 - 8 * k) as u64);
            let shifted = a.bin(BinOp::Shl, 32, w, sh);
            addr = a.bin(BinOp::Or, 32, addr, shifted);
        }
        let m = a.constant(32, maskv);
        let masked = a.bin(BinOp::And, 32, addr, m);
        let k = a.constant(32, want);
        a.cmp(CmpOp::Eq, masked, k)
    }

    #[test]
    fn eval3_refutes_from_single_relevant_byte() {
        let mut a = ExprArena::new();
        let c = masked_eq(&mut a, 0xFF00_0000, 0x0A00_0000);
        // Only byte 0 assigned, wrong value: definitely false.
        let t = a.eval3(c, &|i| if i == 0 { Some(0x0B) } else { None });
        assert_eq!(t.as_bool(), Some(false));
        // Only byte 0 assigned, right value: bytes 1-3 are masked out, so
        // the comparison is already definitely true.
        let t = a.eval3(c, &|i| if i == 0 { Some(0x0A) } else { None });
        assert_eq!(t.as_bool(), Some(true));
    }

    #[test]
    fn eval3_is_undecided_when_relevant_bits_unknown() {
        let mut a = ExprArena::new();
        let c = masked_eq(&mut a, 0xFFFF_0000, 0x0A01_0000);
        // Byte 0 right, byte 1 unknown: undecided.
        let t = a.eval3(c, &|i| if i == 0 { Some(0x0A) } else { None });
        assert_eq!(t.as_bool(), None);
    }

    #[test]
    fn eval3_bounds_decide_comparisons() {
        let mut a = ExprArena::new();
        let x = a.input(0);
        let x16 = a.zext(16, x);
        let k8 = a.constant(16, 8);
        let sh = a.bin(BinOp::Shl, 16, x16, k8);
        let big = a.constant(16, 0x0100);
        // (x << 8) >= 0x0100 iff x >= 1; with x unknown the range is
        // [0, 0xFF00], so the comparison is undecided...
        let c = a.cmp(CmpOp::Ule, big, sh);
        assert_eq!(a.eval3(c, &|_| None).as_bool(), None);
        // ...and decided once x is known.
        assert_eq!(a.eval3(c, &|_| Some(2)).as_bool(), Some(true));
        assert_eq!(a.eval3(c, &|_| Some(0)).as_bool(), Some(false));
    }

    #[test]
    fn eval3_agrees_with_eval_on_full_assignments() {
        // Randomized consistency: under a full assignment, eval3 must be
        // fully known and equal to eval.
        let mut state = 0xDEADBEEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let mut a = ExprArena::new();
            let x = a.input(0);
            let y = a.input(1);
            let k = a.constant(8, rnd() % 256);
            let op = match rnd() % 8 {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::And,
                4 => BinOp::Or,
                5 => BinOp::Xor,
                6 => BinOp::Shl,
                _ => BinOp::Shr,
            };
            let mixed = a.bin(op, 8, x, y);
            let c = a.cmp(
                match rnd() % 4 {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Ult,
                    _ => CmpOp::Ule,
                },
                mixed,
                k,
            );
            let b0 = rnd() % 256;
            let b1 = rnd() % 256;
            let full = |i: u32| Some(if i == 0 { b0 } else { b1 });
            let exact = a.eval(c, &full).unwrap();
            let t = a.eval3(c, &full);
            assert_eq!(
                t.as_bool(),
                Some(exact != 0),
                "eval3 disagrees on full assignment"
            );
        }
    }

    #[test]
    fn eval3_never_wrongly_decides_partial_assignments() {
        // Soundness: if eval3 decides under a partial assignment, every
        // completion must agree.
        let mut a = ExprArena::new();
        let x = a.input(0);
        let y = a.input(1);
        let anded = a.bin(BinOp::And, 8, x, y);
        let k = a.constant(8, 0xF0);
        let c = a.cmp(CmpOp::Eq, anded, k);
        // x = 0x0F makes (x & y) ≤ 0x0F ≠ 0xF0 for every y.
        let t = a.eval3(c, &|i| if i == 0 { Some(0x0F) } else { None });
        assert_eq!(t.as_bool(), Some(false));
        for y_val in 0u64..256 {
            let full = |i: u32| Some(if i == 0 { 0x0F } else { y_val });
            assert_eq!(a.eval(c, &full), Some(0));
        }
    }

    #[test]
    fn node_hashes_are_structural_across_arenas() {
        // The same expression built in two independently grown arenas (so
        // the ExprIds differ) must hash identically, and a structurally
        // different expression must not.
        let build = |arena: &mut ExprArena, k: u64| -> ExprId {
            let x = arena.input(0);
            let c = arena.constant(8, k);
            arena.cmp(CmpOp::Eq, x, c)
        };
        let mut a = ExprArena::new();
        let e_a = build(&mut a, 0x42);
        let mut b = ExprArena::new();
        // Grow arena b first so interning order (and ids) differ.
        let _pad = b.input(7);
        let e_b = build(&mut b, 0x42);
        assert_ne!(e_a, e_b, "ids differ across arenas");
        let ha = a.node_hashes();
        let hb = b.node_hashes();
        assert_eq!(ha[e_a.0 as usize], hb[e_b.0 as usize]);

        let e_other = build(&mut b, 0x43);
        assert_ne!(
            hb[e_b.0 as usize],
            b.node_hashes()[e_other.0 as usize],
            "different constants must hash differently"
        );
    }

    #[test]
    fn ternary_min_max() {
        let t = Ternary {
            known: 0xF0,
            val: 0xA0,
            bits: 8,
        };
        assert_eq!(t.min(), 0xA0);
        assert_eq!(t.max(), 0xAF);
    }
}
