//! # dice-concolic — an Oasis-like concolic execution engine
//!
//! Concolic (CONCrete + symbOLIC) execution for instrumented Rust programs,
//! built from scratch as the exploration engine for DiCE (the paper uses the
//! Oasis engine; no mainstream Rust equivalent exists).
//!
//! The pieces:
//!
//! * [`expr`] — hash-consed expression DAG over symbolic input bytes with
//!   constant folding and an interpreter.
//! * [`ctx`] — the execution context: [`ctx::SymWord`] values carry a
//!   concrete value plus a symbolic shadow; [`ctx::ConcolicCtx::branch`]
//!   records the path condition while execution proceeds concretely.
//!   Oracle booleans let instrumentation mark *conditions* symbolic (the
//!   paper's route-preference treatment).
//! * [`solve`] — a byte-domain solver: exact unary filtering over the
//!   0..=255 domain plus bounded backtracking for multi-byte constraints;
//!   every SAT model is re-checkable.
//! * [`mod@explore`] — the exploration loop: DFS negation and SAGE-style
//!   generational search, branch-coverage accounting, and a random-mutation
//!   baseline.
//!
//! ## Example: steering through a magic-byte check
//!
//! ```
//! use dice_concolic::{explore, ConcolicCtx, ExploreConfig, RunStatus, SiteId};
//!
//! fn program(ctx: &mut ConcolicCtx) -> RunStatus {
//!     let b = ctx.read_u8(0);
//!     let cond = ctx.eq_const(b, 0xAB);
//!     if ctx.branch(SiteId(1), cond) {
//!         RunStatus::Crash("reached".into())
//!     } else {
//!         RunStatus::Ok
//!     }
//! }
//!
//! let report = explore(
//!     &mut program,
//!     &[vec![0u8]],                 // seed that misses the magic value
//!     &|bytes| vec![true; bytes.len()],
//!     &ExploreConfig::default(),
//! );
//! assert!(report.first_crash().is_some()); // solver produced 0xAB
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod explore;
pub mod expr;
pub mod solve;

pub use ctx::{BranchRec, ConcolicCtx, SiteId, SymBool, SymInput, SymWord};
pub use explore::{
    explore, random_fuzz, ConcolicProgram, Coverage, ExecutionRecord, ExplorationReport,
    ExploreConfig, RunStatus, Strategy,
};
pub use expr::{BinOp, BoolOp, CmpOp, Expr, ExprArena, ExprId, Ternary};
pub use solve::{
    negation_query, ByteSet, Constraint, SolveResult, Solver, SolverBudget, SolverStats,
};
