//! A byte-domain constraint solver for path conditions.
//!
//! Inputs are bytes, so every variable ranges over `0..=255`. That small
//! domain lets us combine two complete techniques:
//!
//! 1. **Unary filtering** — a constraint touching exactly one variable is
//!    solved *exactly* by evaluating all 256 values; intersecting these sets
//!    per variable prunes most of the space (BGP parsers branch mostly on
//!    single bytes: flags, type codes, lengths).
//! 2. **Bounded backtracking** — remaining multi-variable constraints (e.g.
//!    16-bit length fields spanning two bytes) are settled by depth-first
//!    search over the filtered candidate sets, with a step budget.
//!
//! Every SAT answer returns a model that is re-checkable with
//! [`Solver::check`]; the test suite verifies soundness on random systems.

use crate::ctx::BranchRec;
use crate::expr::{ExprArena, ExprId};
use std::collections::BTreeMap;

/// 256-bit set of candidate byte values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteSet {
    words: [u64; 4],
}

impl ByteSet {
    /// The full set (all 256 values).
    pub fn full() -> Self {
        ByteSet {
            words: [u64::MAX; 4],
        }
    }

    /// The empty set.
    pub fn empty() -> Self {
        ByteSet { words: [0; 4] }
    }

    /// Membership test.
    // dice-lint: allow(panic-freedom): v >> 6 < 4 indexes the fixed [u64; 4] word array
    pub fn contains(&self, v: u8) -> bool {
        self.words[(v >> 6) as usize] >> (v & 63) & 1 == 1
    }

    /// Insert a value.
    // dice-lint: allow(panic-freedom): v >> 6 < 4 indexes the fixed [u64; 4] word array
    pub fn insert(&mut self, v: u8) {
        self.words[(v >> 6) as usize] |= 1 << (v & 63);
    }

    /// Remove a value.
    // dice-lint: allow(panic-freedom): v >> 6 < 4 indexes the fixed [u64; 4] word array
    pub fn remove(&mut self, v: u8) {
        self.words[(v >> 6) as usize] &= !(1 << (v & 63));
    }

    /// Set intersection.
    // dice-lint: allow(panic-freedom): the 0..4 loop stays inside the fixed [u64; 4] word array
    pub fn intersect(&mut self, other: &ByteSet) {
        for i in 0..4 {
            self.words[i] &= other.words[i];
        }
    }

    /// Number of members.
    pub fn len(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no value remains.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256)
            .map(|v| v as u8)
            .filter(move |&v| self.contains(v))
    }
}

/// The verdict of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; the model assigns every variable that appears in the
    /// constraint system.
    Sat(BTreeMap<u32, u8>),
    /// Proven unsatisfiable.
    Unsat,
    /// Budget exhausted before an answer.
    Unknown,
}

/// Tuning knobs.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct SolverBudget {
    /// Maximum backtracking steps (assignments attempted).
    pub max_steps: u64,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget { max_steps: 500_000 }
    }
}

/// Cumulative statistics across solver invocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// solve() calls.
    pub queries: u64,
    /// SAT answers.
    pub sat: u64,
    /// UNSAT answers.
    pub unsat: u64,
    /// Unknown answers (budget exhausted).
    pub unknown: u64,
    /// Total backtracking steps.
    pub steps: u64,
    /// Negation queries answered from the refutation cache *without*
    /// reaching [`Solver::solve`] (maintained by the exploration loop,
    /// which keys the cache on the canonical structural hash of the
    /// hash-consed constraint set).
    pub cache_hits: u64,
    /// Branch flips skipped before query construction because the target
    /// (site, direction) was already covered.
    pub covered_skips: u64,
    /// Per-constraint [`UnaryMemo`] hits inside [`Solver::solve_memo`]:
    /// variable lists and unary-filter byte sets reused instead of
    /// recomputed. Negation queries of one path share their prefix, so
    /// this grows quadratically faster than `queries`.
    pub unary_memo_hits: u64,
}

impl SolverStats {
    /// Fraction of negation queries served by the refutation cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.queries;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The solver. Holds no state besides statistics; borrow an arena per call.
#[derive(Debug, Default)]
pub struct Solver {
    /// Cumulative statistics.
    pub stats: SolverStats,
    /// Budget applied to each query.
    pub budget: SolverBudget,
}

/// Cross-query memo of the per-constraint work [`Solver::solve`] redoes
/// for every negation query of a path: the referenced variable list and —
/// for single-variable constraints — the exact unary-filter [`ByteSet`]
/// (256 evaluations each). Keyed by the *canonical structural hash* of
/// `(constraint, polarity)` supplied by the caller (see
/// `ExprArena::node_hashes`), so entries are valid across arenas — the
/// negation queries of one path share their prefix constraints, and
/// different seeds with the same parse shape share whole queries. Both
/// memoized facts are pure functions of the constraint's structure, so
/// reuse cannot change any solve outcome.
#[derive(Debug, Default)]
pub struct UnaryMemo {
    map: std::collections::HashMap<u64, MemoEntry>,
    /// Entries served from the memo (vars + unary set count as one hit).
    pub hits: u64,
}

#[derive(Debug)]
struct MemoEntry {
    vars: Vec<u32>,
    unary: Option<ByteSet>,
}

/// A constraint: an expression that must evaluate truthy (`true`) or falsy
/// (`false`).
pub type Constraint = (ExprId, bool);

/// Build the constraint system "path prefix holds, branch `k` negated" —
/// the concolic negation query.
// dice-lint: allow(panic-freedom): k < path.len() is asserted on entry
pub fn negation_query(path: &[BranchRec], k: usize) -> Vec<Constraint> {
    assert!(k < path.len());
    let mut out: Vec<Constraint> = Vec::with_capacity(k + 1);
    for rec in &path[..k] {
        out.push((rec.constraint, rec.taken));
    }
    let rec = &path[k];
    out.push((rec.constraint, !rec.taken));
    out
}

impl Solver {
    /// A solver with the default budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// A solver with a custom budget.
    pub fn with_budget(budget: SolverBudget) -> Self {
        Solver {
            stats: SolverStats::default(),
            budget,
        }
    }

    /// Check a full model against a constraint system.
    pub fn check(
        arena: &ExprArena,
        constraints: &[Constraint],
        model: &BTreeMap<u32, u8>,
        seed: &dyn Fn(u32) -> u8,
    ) -> bool {
        let lookup = |idx: u32| -> Option<u64> {
            Some(model.get(&idx).copied().unwrap_or_else(|| seed(idx)) as u64)
        };
        constraints.iter().all(|&(e, want)| {
            arena
                .eval(e, &lookup)
                .map(|v| (v != 0) == want)
                .unwrap_or(false)
        })
    }

    /// Solve a conjunction of constraints. `seed` provides default values
    /// for unconstrained bytes (the original input), so models stay close
    /// to the seed input — a concolic-execution requirement.
    pub fn solve(
        &mut self,
        arena: &ExprArena,
        constraints: &[Constraint],
        seed: &dyn Fn(u32) -> u8,
    ) -> SolveResult {
        self.solve_impl(arena, constraints, seed, None)
    }

    /// Like [`Solver::solve`], reusing per-constraint work through `memo`.
    /// `chashes[i]` must be the canonical structural hash of
    /// `constraints[i]` *including its polarity*; the exploration loop
    /// derives it from `ExprArena::node_hashes`, which makes entries
    /// shareable across the separately grown arenas of different
    /// executions and seeds.
    pub fn solve_memo(
        &mut self,
        arena: &ExprArena,
        constraints: &[Constraint],
        seed: &dyn Fn(u32) -> u8,
        chashes: &[u64],
        memo: &mut UnaryMemo,
    ) -> SolveResult {
        debug_assert_eq!(constraints.len(), chashes.len());
        self.solve_impl(arena, constraints, seed, Some((chashes, memo)))
    }

    // dice-lint: allow(panic-freedom): con_vars and chashes are built per-constraint above and share the constraint index
    fn solve_impl(
        &mut self,
        arena: &ExprArena,
        constraints: &[Constraint],
        seed: &dyn Fn(u32) -> u8,
        mut memo: Option<(&[u64], &mut UnaryMemo)>,
    ) -> SolveResult {
        self.stats.queries += 1;

        // Gather variables and classify constraints (memoized by
        // structural hash when available).
        let mut var_list: Vec<u32> = Vec::new();
        let mut con_vars: Vec<Vec<u32>> = Vec::with_capacity(constraints.len());
        for (ci, &(e, _)) in constraints.iter().enumerate() {
            let vars = match &mut memo {
                Some((chashes, m)) => match m.map.get(&chashes[ci]) {
                    Some(entry) => {
                        m.hits += 1;
                        entry.vars.clone()
                    }
                    None => {
                        let vars = arena.vars(e);
                        m.map.insert(
                            chashes[ci],
                            MemoEntry {
                                vars: vars.clone(),
                                unary: None,
                            },
                        );
                        vars
                    }
                },
                None => arena.vars(e),
            };
            for &v in &vars {
                if !var_list.contains(&v) {
                    var_list.push(v);
                }
            }
            con_vars.push(vars);
        }
        var_list.sort_unstable();

        // Zero-variable constraints are decidable right now; one failing
        // constant constraint refutes the whole conjunction.
        for (ci, &(e, want)) in constraints.iter().enumerate() {
            if con_vars[ci].is_empty() {
                let ok = arena
                    .eval(e, &|_| None)
                    .map(|v| (v != 0) == want)
                    .unwrap_or(false);
                if !ok {
                    self.stats.unsat += 1;
                    return SolveResult::Unsat;
                }
            }
        }
        // Trivial system: no symbolic vars at all (and all constants held).
        if var_list.is_empty() {
            self.stats.sat += 1;
            return SolveResult::Sat(BTreeMap::new());
        }

        // Unary filtering. A single-variable constraint's admissible set
        // is an exact pure function of its structure, so the 256-value
        // sweep is memoized across queries (and seeds) when a memo is
        // supplied.
        let mut candidates: BTreeMap<u32, ByteSet> =
            var_list.iter().map(|&v| (v, ByteSet::full())).collect();
        for (ci, &(e, want)) in constraints.iter().enumerate() {
            if con_vars[ci].len() == 1 {
                let v = con_vars[ci][0];
                let cached = memo
                    .as_ref()
                    .and_then(|(chashes, m)| m.map.get(&chashes[ci]))
                    .and_then(|entry| entry.unary);
                let ok = match cached {
                    Some(set) => set,
                    None => {
                        let mut ok = ByteSet::empty();
                        for byte in 0u16..256 {
                            let val = byte as u8;
                            let lookup = |idx: u32| -> Option<u64> {
                                if idx == v {
                                    Some(val as u64)
                                } else {
                                    None
                                }
                            };
                            if let Some(r) = arena.eval(e, &lookup) {
                                if (r != 0) == want {
                                    ok.insert(val);
                                }
                            }
                        }
                        if let Some((chashes, m)) = &mut memo {
                            if let Some(entry) = m.map.get_mut(&chashes[ci]) {
                                entry.unary = Some(ok);
                            }
                        }
                        ok
                    }
                };
                // Every constrained var was registered above; a missing
                // entry means no candidate set to narrow.
                let Some(set) = candidates.get_mut(&v) else {
                    continue;
                };
                set.intersect(&ok);
                if set.is_empty() {
                    self.stats.unsat += 1;
                    return SolveResult::Unsat;
                }
            }
        }

        // Multi-var constraints for the search phase.
        let multi: Vec<(ExprId, bool, &[u32])> = constraints
            .iter()
            .zip(&con_vars)
            .filter(|(_, vars)| vars.len() > 1)
            .map(|(&(e, want), vars)| (e, want, vars.as_slice()))
            .collect();

        if multi.is_empty() {
            // Unary candidates are exact: pick per-var values, preferring
            // the seed value when it remains admissible.
            let mut model = BTreeMap::new();
            for (&v, set) in &candidates {
                let sv = seed(v);
                // Empty sets returned Unsat above, so iter() yields a
                // value; fall back to the seed if that ever changes.
                let pick = if set.contains(sv) {
                    sv
                } else {
                    set.iter().next().unwrap_or(sv)
                };
                model.insert(v, pick);
            }
            self.stats.sat += 1;
            return SolveResult::Sat(model);
        }

        // Order variables: most-constrained (smallest candidate set) first,
        // then by how many multi-constraints mention them.
        let mut order: Vec<u32> = var_list.clone();
        let mentions = |v: u32| {
            multi
                .iter()
                .filter(|(_, _, vars)| vars.contains(&v))
                .count()
        };
        order.sort_by_key(|&v| (candidates[&v].len(), usize::MAX - mentions(v), v));

        let mut assignment: BTreeMap<u32, u8> = BTreeMap::new();
        let mut steps = 0u64;
        let ok = self.search(
            arena,
            &multi,
            &order,
            0,
            &candidates,
            &mut assignment,
            seed,
            &mut steps,
        );
        self.stats.steps += steps;
        match ok {
            Some(true) => {
                self.stats.sat += 1;
                SolveResult::Sat(assignment)
            }
            Some(false) => {
                self.stats.unsat += 1;
                SolveResult::Unsat
            }
            None => {
                self.stats.unknown += 1;
                SolveResult::Unknown
            }
        }
    }

    /// DFS over candidate values. Returns `Some(true)` on success (model in
    /// `assignment`), `Some(false)` when exhaustively refuted, `None` on
    /// budget exhaustion.
    #[allow(clippy::too_many_arguments)]
    // dice-lint: allow(panic-freedom): order and candidates are built over the same var set; depth < order.len() is the recursion guard
    fn search(
        &self,
        arena: &ExprArena,
        multi: &[(ExprId, bool, &[u32])],
        order: &[u32],
        depth: usize,
        candidates: &BTreeMap<u32, ByteSet>,
        assignment: &mut BTreeMap<u32, u8>,
        seed: &dyn Fn(u32) -> u8,
        steps: &mut u64,
    ) -> Option<bool> {
        if depth == order.len() {
            return Some(true);
        }
        let v = order[depth];
        let set = &candidates[&v];
        // Try the seed value first to keep models minimal.
        let sv = seed(v);
        let tries = std::iter::once(sv)
            .filter(|s| set.contains(*s))
            .chain(set.iter().filter(move |&x| x != sv));
        let mut exhausted = true;
        for val in tries {
            *steps += 1;
            if *steps > self.budget.max_steps {
                return None;
            }
            assignment.insert(v, val);
            // Ternary (known-bits) propagation: a constraint involving v is
            // pruned as soon as the assigned bits alone refute it — e.g.
            // `(addr & 0xFF000000) == K` dies on the first byte, without
            // enumerating the masked-out ones.
            let consistent = multi.iter().all(|&(e, want, vars)| {
                if !vars.contains(&v) {
                    return true;
                }
                let lookup = |idx: u32| -> Option<u64> { assignment.get(&idx).map(|&b| b as u64) };
                match arena.eval3(e, &lookup).as_bool() {
                    Some(r) => r == want,
                    None => true, // not yet decidable
                }
            });
            if consistent {
                match self.search(
                    arena,
                    multi,
                    order,
                    depth + 1,
                    candidates,
                    assignment,
                    seed,
                    steps,
                ) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
            assignment.remove(&v);
            let _ = exhausted;
            exhausted = true;
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, CmpOp};

    fn seed_zero(_: u32) -> u8 {
        0
    }

    #[test]
    fn byteset_basics() {
        let mut s = ByteSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(255);
        s.insert(100);
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(255) && s.contains(100));
        s.remove(100);
        assert!(!s.contains(100));
        let all = ByteSet::full();
        assert_eq!(all.len(), 256);
        let mut inter = all;
        inter.intersect(&s);
        assert_eq!(inter.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 255]);
    }

    #[test]
    fn solves_single_byte_equality() {
        let mut a = ExprArena::new();
        let x = a.input(0);
        let k = a.constant(8, 0xF5);
        let c = a.cmp(CmpOp::Eq, x, k);
        let mut s = Solver::new();
        match s.solve(&a, &[(c, true)], &seed_zero) {
            SolveResult::Sat(m) => assert_eq!(m[&0], 0xF5),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn negated_equality_avoids_value() {
        let mut a = ExprArena::new();
        let x = a.input(0);
        let k = a.constant(8, 7);
        let c = a.cmp(CmpOp::Eq, x, k);
        let mut s = Solver::new();
        match s.solve(&a, &[(c, false)], &|_| 7) {
            SolveResult::Sat(m) => assert_ne!(m[&0], 7),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn detects_unsat_single_var() {
        let mut a = ExprArena::new();
        let x = a.input(0);
        let k5 = a.constant(8, 5);
        let k9 = a.constant(8, 9);
        let c1 = a.cmp(CmpOp::Eq, x, k5);
        let c2 = a.cmp(CmpOp::Eq, x, k9);
        let mut s = Solver::new();
        assert_eq!(
            s.solve(&a, &[(c1, true), (c2, true)], &seed_zero),
            SolveResult::Unsat
        );
    }

    #[test]
    fn solves_u16_length_bound() {
        // (in[0] << 8 | in[1]) >= 0x0F00 — the shape of the seeded-bug
        // trigger constraint.
        let mut a = ExprArena::new();
        let hi = a.input(0);
        let lo = a.input(1);
        let hi16 = a.zext(16, hi);
        let lo16 = a.zext(16, lo);
        let k8 = a.constant(16, 8);
        let sh = a.bin(BinOp::Shl, 16, hi16, k8);
        let word = a.bin(BinOp::Or, 16, sh, lo16);
        let bound = a.constant(16, 0x0F00);
        let lt = a.cmp(CmpOp::Ult, word, bound);
        let mut s = Solver::new();
        match s.solve(&a, &[(lt, false)], &seed_zero) {
            SolveResult::Sat(m) => {
                let w = ((m[&0] as u16) << 8) | m[&1] as u16;
                assert!(w >= 0x0F00, "got {w:#x}");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn model_prefers_seed_values() {
        let mut a = ExprArena::new();
        let x = a.input(0);
        let k = a.constant(8, 100);
        let c = a.cmp(CmpOp::Ule, x, k); // in[0] <= 100
        let mut s = Solver::new();
        match s.solve(&a, &[(c, true)], &|_| 42) {
            SolveResult::Sat(m) => assert_eq!(m[&0], 42, "seed within range is kept"),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn unsat_multivar_exhausts() {
        // in[0] ^ in[1] == 1 AND in[0] == in[1] is unsatisfiable.
        let mut a = ExprArena::new();
        let x = a.input(0);
        let y = a.input(1);
        let xor = a.bin(BinOp::Xor, 8, x, y);
        let one = a.constant(8, 1);
        let c1 = a.cmp(CmpOp::Eq, xor, one);
        let c2 = a.cmp(CmpOp::Eq, x, y);
        let mut s = Solver::new();
        assert_eq!(
            s.solve(&a, &[(c1, true), (c2, true)], &seed_zero),
            SolveResult::Unsat
        );
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A hard 3-var relation with a tiny budget.
        let mut a = ExprArena::new();
        let x = a.input(0);
        let y = a.input(1);
        let z = a.input(2);
        let xy = a.bin(BinOp::Mul, 8, x, y);
        let xyz = a.bin(BinOp::Mul, 8, xy, z);
        let k = a.constant(8, 251);
        let c = a.cmp(CmpOp::Eq, xyz, k);
        let mut s = Solver::with_budget(SolverBudget { max_steps: 10 });
        let r = s.solve(&a, &[(c, true)], &seed_zero);
        assert_eq!(r, SolveResult::Unknown);
        assert_eq!(s.stats.unknown, 1);
    }

    #[test]
    fn sat_models_always_check() {
        // Randomized soundness: any SAT model must satisfy its system.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut a = ExprArena::new();
            let mut cons: Vec<Constraint> = Vec::new();
            for _ in 0..(1 + rnd() % 4) {
                let v0 = a.input((rnd() % 3) as u32);
                let v1 = a.input((rnd() % 3) as u32);
                let k = a.constant(8, rnd() % 256);
                let mix = a.bin(
                    match rnd() % 3 {
                        0 => BinOp::Add,
                        1 => BinOp::Xor,
                        _ => BinOp::And,
                    },
                    8,
                    v0,
                    v1,
                );
                let c = a.cmp(
                    match rnd() % 3 {
                        0 => CmpOp::Eq,
                        1 => CmpOp::Ult,
                        _ => CmpOp::Ule,
                    },
                    mix,
                    k,
                );
                cons.push((c, rnd() % 2 == 0));
            }
            let mut s = Solver::new();
            if let SolveResult::Sat(model) = s.solve(&a, &cons, &seed_zero) {
                assert!(
                    Solver::check(&a, &cons, &model, &seed_zero),
                    "model failed its own constraints"
                );
            }
        }
    }

    #[test]
    fn negation_query_shape() {
        use crate::ctx::{BranchRec, SiteId};
        let mut a = ExprArena::new();
        let x = a.input(0);
        let k1 = a.constant(8, 1);
        let k2 = a.constant(8, 2);
        let c1 = a.cmp(CmpOp::Eq, x, k1);
        let c2 = a.cmp(CmpOp::Ult, x, k2);
        let path = vec![
            BranchRec {
                site: SiteId(1),
                constraint: c1,
                taken: false,
            },
            BranchRec {
                site: SiteId(2),
                constraint: c2,
                taken: true,
            },
        ];
        let q = negation_query(&path, 1);
        assert_eq!(q, vec![(c1, false), (c2, false)]);
        let q0 = negation_query(&path, 0);
        assert_eq!(q0, vec![(c1, true)]);
    }
}
