//! The BGP adapter for the SUT seam — the **only** module in `dice-core`
//! that downcasts to [`BgpRouter`].
//!
//! Everything the runtime previously obtained by sprinkling
//! `downcast_ref::<BgpRouter>()` through explorer, snapshot and checker
//! code is implemented here once, behind [`ExplorableNode`] and
//! [`CheckView`]. Other protocols plug in the same way: implement the two
//! traits, export a [`SutProbe`]-shaped function, and register it with
//! [`SutCatalog::with_probe`](crate::sut::SutCatalog::with_probe).

use dice_bgp::{encode, AsPath, Asn, BgpRouter, Ipv4Addr, Ipv4Net, Message, PathAttrs, UpdateMsg};
use dice_netsim::{Node, NodeId};

use crate::grammar::{GrammarConfig, UpdateGrammar};
use crate::handler::SymbolicUpdateHandler;
use crate::interface::AttestationRegistry;
use crate::sut::{CheckView, ExplorableNode, ExplorationPlan, SessionHealth, SutProbe};
use crate::symmark::mark_update;

/// The probe registered by [`SutCatalog::bgp_only`](crate::sut::SutCatalog::bgp_only):
/// recognizes [`BgpRouter`] nodes.
pub fn probe(node: &dyn Node) -> Option<&dyn ExplorableNode> {
    node.as_any()
        .downcast_ref::<BgpRouter>()
        .map(|r| r as &dyn ExplorableNode)
}

// Let the type checker confirm the signature matches the seam.
const _: SutProbe = probe;

/// View a node as a BGP router, if it is one. Scenario builders and tests
/// use this instead of downcasting at every call site.
pub fn as_bgp(node: &dyn Node) -> Option<&BgpRouter> {
    node.as_any().downcast_ref::<BgpRouter>()
}

/// Mutable variant of [`as_bgp`], for operator actions applied through
/// `Simulator::invoke_node`.
pub fn as_bgp_mut(node: &mut dyn Node) -> Option<&mut BgpRouter> {
    node.as_any_mut().downcast_mut::<BgpRouter>()
}

/// The fixed minimal seed used when the grammar layer is disabled
/// (`grammar_seeds == 0`): one deterministic, valid-by-construction
/// announcement from `peer_asn` for a documentation prefix.
pub fn minimal_seed(peer_asn: Asn) -> Vec<u8> {
    let attrs = PathAttrs {
        as_path: AsPath::sequence([peer_asn.0]),
        next_hop: Ipv4Addr(0x0A00_0001),
        ..Default::default()
    };
    encode(&Message::Update(UpdateMsg {
        withdrawn: vec![],
        attrs: Some(attrs),
        nlri: vec![Ipv4Net::new(0xC633_6400, 24)], // 198.51.100.0/24
    }))
}

impl ExplorableNode for BgpRouter {
    fn kind(&self) -> &'static str {
        "bgp"
    }

    fn injection_peers(&self) -> Vec<NodeId> {
        self.config().neighbors.iter().map(|n| n.node).collect()
    }

    fn exploration_plan(
        &self,
        peer: NodeId,
        grammar_seeds: usize,
        seed: u64,
    ) -> Result<ExplorationPlan, String> {
        let config = self.config().clone();
        let peer_asn = config
            .neighbor(peer)
            .ok_or("inject peer is not a neighbor of the explorer")?
            .asn;

        // `grammar_seeds == 0` disables the grammar layer: exploration
        // starts from one fixed minimal message and everything else is up
        // to the concolic engine. Otherwise the corpus plays the role of
        // Oasis's test-suite seeds: ordinary announcements plus one
        // message exercising the unknown-attribute path with a large
        // value region.
        let seeds = if grammar_seeds == 0 {
            vec![minimal_seed(peer_asn)]
        } else {
            let mut grammar = UpdateGrammar::new(GrammarConfig::for_peer(peer_asn), seed ^ 0x6A33);
            let mut seeds = vec![grammar.generate(), grammar.generate_large_unknown()];
            if grammar_seeds > 1 {
                seeds.extend(grammar.batch(grammar_seeds - 1));
            }
            seeds
        };

        Ok(ExplorationPlan {
            program: Box::new(SymbolicUpdateHandler::new(config, peer)),
            marker: mark_update,
            seeds,
        })
    }

    fn attest(&self, registry: &mut AttestationRegistry) {
        let cfg = self.config();
        for prefix in &cfg.owned {
            registry.attest(prefix, cfg.asn);
        }
    }

    fn check_view(&self) -> &dyn CheckView {
        self
    }
}

impl CheckView for BgpRouter {
    fn for_each_route_flip(&self, visit: &mut dyn FnMut(Ipv4Net, u64)) {
        for (prefix, flips) in &self.loc_rib().flips {
            visit(*prefix, *flips);
        }
    }

    fn for_each_best_route(&self, visit: &mut dyn FnMut(Ipv4Net, Asn)) {
        let own = self.config().asn;
        for (prefix, sel) in self.loc_rib().iter() {
            visit(*prefix, sel.route.attrs.as_path.origin_asn().unwrap_or(own));
        }
    }

    fn session_health(&self) -> SessionHealth {
        let configured = self.config().neighbors.len();
        let established = self
            .config()
            .neighbors
            .iter()
            .filter(|n| self.session_state(n.node) == dice_bgp::SessionState::Established)
            .count();
        SessionHealth {
            configured,
            established,
        }
    }

    fn total_flips(&self) -> u64 {
        self.loc_rib().total_flips()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::{net, RouterConfig, RouterId};

    fn router() -> BgpRouter {
        BgpRouter::new(
            RouterConfig::minimal(Asn(65001), RouterId(1))
                .with_network(net("10.0.0.0/16"))
                .with_neighbor(NodeId(2), Asn(65002), "all", "all"),
        )
    }

    #[test]
    fn probe_recognizes_routers_only() {
        let r = router();
        let boxed: Box<dyn Node> = Box::new(r);
        assert!(probe(boxed.as_ref()).is_some());
        assert_eq!(probe(boxed.as_ref()).unwrap().kind(), "bgp");
    }

    #[test]
    fn plan_requires_configured_peer() {
        let r = router();
        assert!(r.exploration_plan(NodeId(9), 4, 1).is_err());
        assert!(r.exploration_plan(NodeId(2), 4, 1).is_ok());
    }

    #[test]
    fn zero_grammar_seeds_means_zero_grammar_seeds() {
        // Regression: `grammar_seeds = 0` used to still emit two
        // grammar-generated messages. It must now fall back to the one
        // fixed minimal seed, independent of the RNG seed.
        let r = router();
        let a = r.exploration_plan(NodeId(2), 0, 1).unwrap();
        let b = r.exploration_plan(NodeId(2), 0, 999).unwrap();
        assert_eq!(a.seeds.len(), 1);
        assert_eq!(a.seeds, b.seeds, "minimal seed is fixed, not generated");
        assert_eq!(a.seeds[0], minimal_seed(Asn(65002)));
        // And the minimal seed is accepted by the twin.
        let mut plan = r.exploration_plan(NodeId(2), 0, 1).unwrap();
        let mut ctx = dice_concolic::ConcolicCtx::new(dice_concolic::SymInput::all_concrete(
            plan.seeds[0].clone(),
        ));
        assert_eq!(plan.program.run(&mut ctx), dice_concolic::RunStatus::Ok);
    }

    #[test]
    fn grammar_seed_counts() {
        let r = router();
        assert_eq!(r.exploration_plan(NodeId(2), 1, 1).unwrap().seeds.len(), 2);
        assert_eq!(r.exploration_plan(NodeId(2), 8, 1).unwrap().seeds.len(), 9);
    }

    #[test]
    fn check_view_exposes_local_routes() {
        let r = router();
        let view = ExplorableNode::check_view(&r);
        // Loc-RIB is empty before on_start; flips likewise.
        assert_eq!(view.total_flips(), 0);
        assert_eq!(view.session_health().configured, 1);
        assert_eq!(view.session_health().established, 0);
    }

    #[test]
    fn attest_publishes_owned_prefixes() {
        let r = router();
        let mut reg = AttestationRegistry::with_seed(3);
        ExplorableNode::attest(&r, &mut reg);
        assert!(reg.is_attested(&net("10.0.0.0/16"), Asn(65001)));
        assert_eq!(reg.len(), 1);
    }
}
