//! Federation-scale orchestration: sweep every eligible `(explorer,
//! inject_peer)` pair instead of hand-picking one.
//!
//! [`DiceRunner`](crate::explorer::DiceRunner) explores one fixed pair per
//! round — fine for a demo, useless for a federation of dozens of domains.
//! A [`Campaign`] discovers the eligible pairs through the
//! [`SutCatalog`] probe chain, snapshots **once per explorer** (one
//! Chandy–Lamport pass amortized over all of that node's peers), runs up
//! to [`Campaign::pair_workers`] whole rounds concurrently on one shared
//! worker pool (round- and validation-level tasks interleave; see the
//! `executor` module), and aggregates the per-pair [`RoundReport`]s in
//! deterministic round-ordinal order into a serializable
//! [`CampaignReport`]: per-class detection latency, branch-coverage union
//! (global and per-explorer), fault union, and wall/sim-time totals.
//!
//! ```
//! use dice_core::{scenarios, Campaign};
//! use dice_netsim::{NodeId, SimDuration, SimTime};
//!
//! let mut live = scenarios::healthy_line(3, 7);
//! live.run_until(SimTime::from_nanos(10_000_000_000));
//! let report = Campaign::new(&live)
//!     .rounds(1)
//!     .workers(2)
//!     .executions(24)
//!     .validate_top(3)
//!     .horizon(SimDuration::from_secs(30))
//!     .run(&mut live)
//!     .unwrap();
//! assert_eq!(report.rounds.len(), 4); // line 0-1-2 has 4 directed pairs
//! assert!(report.faults.is_empty());
//! ```

use std::collections::{BTreeMap, BTreeSet};

use dice_concolic::Strategy;
use dice_netsim::{NodeId, SimDuration, Simulator};
use serde::{Deserialize, Serialize};

use crate::check::{FaultClass, FaultReport};
use crate::executor::RoundTask;
use crate::explorer::{us_to_ms, DiceConfig, RoundReport};
use crate::interface::AttestationRegistry;
use crate::snapshot::take_consistent_snapshot;
use crate::sut::SutCatalog;

/// Declarative configuration of a campaign; everything a CI perf job
/// needs to reproduce a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Explorer nodes to sweep. Empty = every explorable node.
    pub explorers: Vec<NodeId>,
    /// Cap on inject peers swept per explorer (0 = all eligible peers).
    pub max_peers_per_explorer: usize,
    /// Full sweeps over the pair set. A campaign always runs at least one
    /// sweep: `0` is treated as `1`.
    pub rounds: usize,
    /// Whole `(explorer, peer)` rounds in flight at once (`0`/`1` =
    /// sequential). The report is identical for any value — only
    /// wall-clock fields change (see [`CampaignReport::normalized`]).
    pub pair_workers: usize,
    /// Per-pair round template; `explorer` / `inject_peer` are overridden
    /// for each swept pair.
    pub template: DiceConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            explorers: Vec::new(),
            max_peers_per_explorer: 0,
            rounds: 1,
            pair_workers: 1,
            template: DiceConfig::new(NodeId(0), NodeId(0)),
        }
    }
}

/// Where and when a fault class was first detected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassDetection {
    /// The fault class.
    pub class: FaultClass,
    /// 1-based round ordinal of first detection.
    pub round: u64,
    /// Explorer node of the detecting round.
    pub explorer: NodeId,
    /// Inject peer of the detecting round.
    pub inject_peer: NodeId,
    /// Validated inputs run before detection within that round
    /// (1 = the null input).
    pub input_ordinal: usize,
    /// Campaign wall-clock microseconds elapsed when the detecting round
    /// completed — the paper's online detection-latency metric at
    /// campaign granularity.
    pub wall_us_cum: u64,
    /// [`ClassDetection::wall_us_cum`] in milliseconds (kept for report
    /// compatibility).
    pub wall_ms_cum: u64,
}

/// Per-protocol aggregation across a campaign — the heterogeneity
/// breakdown: how much of the sweep each workload (BGP, gossip, ...)
/// consumed and what it found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KindSummary {
    /// Protocol tag ("bgp", "gossip", ...).
    pub kind: String,
    /// Rounds whose explorer spoke this protocol.
    pub rounds: usize,
    /// Branch-coverage union (site, direction) count across those rounds.
    pub coverage: usize,
    /// Distinct deduplicated faults attributed to those rounds.
    pub faults: usize,
    /// Concolic executions spent.
    pub executions: usize,
    /// Host wall-clock microseconds summed over those rounds (snapshot
    /// share included where the round paid for it).
    pub wall_us: u64,
    /// [`KindSummary::wall_us`] in milliseconds.
    pub wall_ms: u64,
}

/// Per-explorer aggregation across a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplorerSummary {
    /// The explorer node.
    pub explorer: NodeId,
    /// Protocol tag of the node ("bgp", ...).
    pub kind: String,
    /// Rounds run with this node as explorer.
    pub rounds: usize,
    /// Branch-coverage union (site, direction) count across those rounds.
    pub coverage: usize,
    /// Distinct deduplicated faults attributed to those rounds.
    pub faults: usize,
    /// Concolic executions spent.
    pub executions: usize,
}

/// Hot-path performance counters for one campaign run: how much work the
/// clone pool, the copy-on-write snapshots and the solver cache avoided.
/// All of it is either wall-clock- or schedule-dependent bookkeeping
/// (which worker's pool serves an input depends on thread timing), so
/// [`CampaignReport::normalized`] zeroes the whole struct — the
/// determinism contract covers *results*, not cache luck.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Approximate bytes checkpointed across the campaign's consistent
    /// snapshots ([`ShadowSnapshot::approx_bytes`] summed over the one
    /// snapshot taken per explorer per sweep).
    ///
    /// [`ShadowSnapshot::approx_bytes`]: dice_netsim::ShadowSnapshot::approx_bytes
    pub snapshot_bytes: u64,
    /// Validation clones served by resetting a pooled simulator
    /// (`Simulator::reset_from_shadow`) instead of building one.
    pub pool_hits: u64,
    /// Validation clones that had to be built fresh (`from_shadow`).
    pub pool_misses: u64,
    /// Negation queries answered by the concolic refutation cache
    /// without reaching the solver.
    pub solver_cache_hits: u64,
    /// Negation queries that did reach the solver.
    pub solver_queries: u64,
    /// Branch flips skipped before query construction because the target
    /// (site, direction) was already covered.
    pub covered_flips_skipped: u64,
    /// Per-constraint solver-memo hits (variable lists and unary-filter
    /// byte sets reused instead of recomputed — the queries of one path
    /// share their prefix constraints, so this dwarfs `solver_queries`).
    pub unary_memo_hits: u64,
    /// Payload bytes sent over validation-clone channels (every
    /// `Frame::Data` counted at `send_frame`, both modes).
    pub wire_bytes: u64,
    /// Payload-buffer acquisitions served by the netsim
    /// [`BufPool`](dice_netsim::BufPool) free lists.
    pub buf_hits: u64,
    /// Payload-buffer acquisitions that had to allocate fresh (pool
    /// empty, or the wire pool disabled).
    pub buf_misses: u64,
    /// Non-empty delivery batches processed (`batch_delivery` off still
    /// counts each single-frame delivery as a batch of one).
    pub delivered_batches: u64,
    /// Largest number of frames coalesced into one delivery batch.
    pub max_batch_occupancy: u64,
    /// Bytes actually re-captured by the live system's consistent
    /// snapshots (dirty nodes re-cloned). With delta snapshots on this is
    /// the *incremental* footprint — usually far below
    /// [`PerfCounters::snapshot_bytes`], which counts the full shadow.
    pub snapshot_delta_bytes: u64,
    /// Node checkpoints re-cloned by the live system's consistent
    /// snapshots (dirty since the previous cut). With delta snapshots on,
    /// steady-state sweeps re-capture only the nodes that actually
    /// changed.
    pub nodes_recaptured: u64,
    /// Dynamics-schedule actions (partition legs, heals, node churn)
    /// applied to the live system during the campaign.
    pub churn_events: u64,
    /// Data frames dropped by the channel-fidelity layer on validation
    /// clones (zero unless `unreliable_links` is on).
    pub frames_dropped: u64,
    /// Data frames duplicated by the channel-fidelity layer.
    pub frames_duplicated: u64,
    /// Data frames delivered out of FIFO order by the channel-fidelity
    /// layer's bounded reordering window.
    pub frames_reordered: u64,
    /// Link-level retransmissions modeled by the latency layer (loss as
    /// retransmission *delay* on the reliable transport, counted in both
    /// modes).
    pub link_retransmits: u64,
}

impl PerfCounters {
    /// Fraction of validation clones served from the pool.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Fraction of negation queries served by the refutation cache.
    pub fn solver_cache_hit_rate(&self) -> f64 {
        let total = self.solver_cache_hits + self.solver_queries;
        if total == 0 {
            0.0
        } else {
            self.solver_cache_hits as f64 / total as f64
        }
    }
}

/// Aggregated outcome of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Every per-pair round, in sweep order.
    pub rounds: Vec<RoundReport>,
    /// Deduplicated fault union across all rounds.
    pub faults: Vec<FaultReport>,
    /// Branch-coverage union (site, direction) count across all rounds.
    pub coverage_union: usize,
    /// Per-explorer summaries, in node order.
    pub per_explorer: Vec<ExplorerSummary>,
    /// Per-protocol summaries, in kind order — one row per workload of a
    /// heterogeneous federation.
    pub per_kind: Vec<KindSummary>,
    /// First detection per fault class, in class order.
    pub detection: Vec<ClassDetection>,
    /// Total host wall-clock microseconds. Tracked at microsecond
    /// resolution so fast campaigns do not report a floor-bounded rate.
    pub wall_us: u64,
    /// [`CampaignReport::wall_us`] in milliseconds (kept for report
    /// compatibility).
    pub wall_ms: u64,
    /// Simulated time consumed on the live system (snapshot driving).
    pub sim_nanos: u64,
    /// Total concolic executions across all rounds.
    pub executions_total: usize,
    /// Total inputs validated system-wide across all rounds.
    pub validated_total: usize,
    /// Hot-path counters (clone pool, snapshot footprint, solver cache);
    /// zeroed by [`CampaignReport::normalized`].
    pub perf: PerfCounters,
}

impl CampaignReport {
    /// The set of fault classes detected by the whole campaign.
    pub fn classes(&self) -> BTreeSet<FaultClass> {
        self.faults.iter().map(|f| f.class).collect()
    }

    /// Rounds per wall-clock second, computed from the microsecond
    /// counter ([`CampaignReport::wall_us`]).
    pub fn rounds_per_sec(&self) -> f64 {
        self.rounds.len() as f64 * 1_000_000.0 / self.wall_us.max(1) as f64
    }

    /// A copy with every host wall-clock field zeroed — the determinism
    /// key of a campaign. Two runs over snapshots of the same quiescent
    /// system with the same [`CampaignConfig`] (any `pair_workers` value)
    /// serialize to byte-identical JSON after normalization; everything
    /// else in the report is a pure function of the configuration and the
    /// snapshots. Locked in by the scheduler-determinism regression test.
    pub fn normalized(&self) -> CampaignReport {
        let mut r = self.clone();
        r.wall_us = 0;
        r.wall_ms = 0;
        for round in &mut r.rounds {
            round.wall_us = 0;
            round.wall_ms = 0;
            round.snapshot.wall_micros = 0;
        }
        for d in &mut r.detection {
            d.wall_us_cum = 0;
            d.wall_ms_cum = 0;
        }
        for k in &mut r.per_kind {
            k.wall_us = 0;
            k.wall_ms = 0;
        }
        r.perf = PerfCounters::default();
        r
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "campaign: {} rounds over {} explorers, {} execs, {} validated, coverage {} (union), {} faults ({} classes), {:.1}ms ({:.1} rounds/s)",
            self.rounds.len(),
            self.per_explorer.len(),
            self.executions_total,
            self.validated_total,
            self.coverage_union,
            self.faults.len(),
            self.classes().len(),
            self.wall_us as f64 / 1_000.0,
            self.rounds_per_sec(),
        )
    }
}

/// Builder-style orchestrator sweeping DiCE rounds across a federation.
///
/// Construction discovers the eligible `(explorer, peer)` pairs and
/// builds the shared attestation registry from the live system; the
/// builder methods then narrow the sweep and tune per-round budgets;
/// [`Campaign::run`] executes against the (still running) deployment.
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CampaignConfig,
    catalog: SutCatalog,
    pairs: Vec<(NodeId, NodeId)>,
    registry: AttestationRegistry,
}

impl Campaign {
    /// Discover eligible pairs in `live` using the default (BGP-only)
    /// catalog and derive the attestation registry.
    pub fn new(live: &Simulator) -> Self {
        Self::with_catalog(live, SutCatalog::default())
    }

    /// Like [`Campaign::new`] but over a custom SUT catalog — the entry
    /// point for heterogeneous federations.
    pub fn with_catalog(live: &Simulator, catalog: SutCatalog) -> Self {
        let cfg = CampaignConfig::default();
        let pairs = catalog.eligible_pairs(live);
        let registry = catalog.build_registry(live, cfg.template.seed);
        Campaign {
            cfg,
            catalog,
            pairs,
            registry,
        }
    }

    /// Restrict the sweep to these explorer nodes (default: all).
    pub fn explorers(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.cfg.explorers = nodes.into_iter().collect();
        self
    }

    /// Number of full sweeps over the pair set (default 1; `0` is
    /// treated as `1` — a campaign always runs at least one sweep).
    pub fn rounds(mut self, n: usize) -> Self {
        self.cfg.rounds = n;
        self
    }

    /// Validation workers per round (default 1 = sequential). The
    /// campaign pool is sized `max(pair_workers, workers)` and shared
    /// between round- and validation-level tasks.
    pub fn workers(mut self, k: usize) -> Self {
        self.cfg.template.workers = k;
        self
    }

    /// Whole `(explorer, peer)` rounds in flight at once (default 1 =
    /// sequential sweep). Reports are identical for any value modulo
    /// wall-clock fields — see [`CampaignReport::normalized`].
    pub fn pair_workers(mut self, k: usize) -> Self {
        self.cfg.pair_workers = k;
        self
    }

    /// Concolic search strategy.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.cfg.template.strategy = s;
        self
    }

    /// Concolic execution budget per round.
    pub fn executions(mut self, n: usize) -> Self {
        self.cfg.template.concolic_executions = n;
        self
    }

    /// Maximum inputs validated system-wide per round.
    pub fn validate_top(mut self, n: usize) -> Self {
        self.cfg.template.validate_top = n;
        self
    }

    /// Simulated horizon each validation clone runs for.
    pub fn horizon(mut self, h: SimDuration) -> Self {
        self.cfg.template.horizon = h;
        self
    }

    /// Grammar-generated seeds per round (0 = fixed minimal seed only).
    pub fn grammar_seeds(mut self, n: usize) -> Self {
        self.cfg.template.grammar_seeds = n;
        self
    }

    /// Per-worker clone-pool capacity for validation (default 1; `0`
    /// forces a fresh `from_shadow` clone per validated input). Reports
    /// are byte-identical for any value — pooling only recycles
    /// allocations.
    pub fn pool_size(mut self, n: usize) -> Self {
        self.cfg.template.pool_size = n;
        self
    }

    /// Enable/disable the concolic refutation cache (default on).
    /// Exploration outcomes are identical either way; only solver time
    /// differs.
    pub fn solver_cache(mut self, on: bool) -> Self {
        self.cfg.template.solver_cache = on;
        self
    }

    /// Enable/disable the netsim payload-buffer pool on validation
    /// clones (default on). Reports are byte-identical either way — the
    /// pool only recycles allocations; only the `buf_hits`/`buf_misses`
    /// perf counters (zeroed by `normalized()`) observe the difference.
    pub fn wire_pool(mut self, on: bool) -> Self {
        self.cfg.template.wire_pool = on;
        self
    }

    /// Enable/disable batched same-instant frame delivery on validation
    /// clones (default on). The event schedule is identical in both
    /// modes, so reports are byte-identical; only the batch-occupancy
    /// perf counters observe the difference.
    pub fn batch_delivery(mut self, on: bool) -> Self {
        self.cfg.template.batch_delivery = on;
        self
    }

    /// Enable/disable delta snapshots on the **live** system (default
    /// on): consistent cuts re-capture only nodes dirtied since the
    /// previous cut and share every other checkpoint `Arc` with the prior
    /// shadow. A cached checkpoint of an unmutated node is
    /// state-identical to a fresh clone, so reports are byte-identical
    /// either way; only the `nodes_recaptured` / `snapshot_delta_bytes`
    /// perf counters observe the difference.
    pub fn delta_snapshots(mut self, on: bool) -> Self {
        self.cfg.template.delta_snapshots = on;
        self
    }

    /// Install a deterministic dynamics schedule (partition/heal windows,
    /// node churn). The spec is expanded once from the campaign seed and
    /// applied to the live system at the quiescent point before each
    /// sweep's snapshots — never mid-cut, and never on validation clones.
    /// An empty spec is byte-identical to no schedule at all.
    pub fn schedule(mut self, spec: dice_netsim::ScheduleSpec) -> Self {
        self.cfg.template.schedule = Some(spec);
        self
    }

    /// Subject validation clones to the per-link channel-fidelity layer
    /// (default off): probabilistic drop, duplication, bounded reordering
    /// and burst loss per the configured [`link_faults`] profile. Never
    /// applied to the live system — only the isolated clones replay under
    /// fire. Fault sampling flows from per-link splits of a dedicated
    /// seeded stream, so reports stay byte-identical per seed across
    /// `pair_workers` values.
    ///
    /// [`link_faults`]: Campaign::link_faults
    pub fn unreliable_links(mut self, on: bool) -> Self {
        self.cfg.template.unreliable_links = on;
        self
    }

    /// Set the fault profile used when [`unreliable_links`] is on
    /// (default: the netsim 5% lossy profile).
    ///
    /// [`unreliable_links`]: Campaign::unreliable_links
    pub fn link_faults(mut self, faults: dice_netsim::LinkFaults) -> Self {
        self.cfg.template.link_faults = Some(faults);
        self
    }

    /// Master seed for grammar and clone simulators.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.template.seed = seed;
        self
    }

    /// Cap on inject peers swept per explorer (0 = all).
    pub fn max_peers_per_explorer(mut self, n: usize) -> Self {
        self.cfg.max_peers_per_explorer = n;
        self
    }

    /// Replace the whole declarative configuration (e.g. loaded from
    /// JSON by an experiment binary).
    pub fn config(mut self, cfg: CampaignConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The current declarative configuration.
    pub fn config_ref(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Every eligible `(explorer, inject_peer)` pair discovered at
    /// construction, before explorer filtering.
    pub fn eligible_pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// The pairs the sweep will actually visit after explorer filtering
    /// and the per-explorer peer cap, grouped by explorer in node order.
    pub fn sweep_plan(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut grouped: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &(explorer, peer) in &self.pairs {
            if !self.cfg.explorers.is_empty() && !self.cfg.explorers.contains(&explorer) {
                continue;
            }
            let peers = grouped.entry(explorer).or_default();
            if self.cfg.max_peers_per_explorer == 0 || peers.len() < self.cfg.max_peers_per_explorer
            {
                peers.push(peer);
            }
        }
        grouped.into_iter().collect()
    }

    /// Execute the campaign, three phases per sweep (so at most one
    /// sweep's snapshots are held in memory at a time):
    ///
    /// 1. **Snapshot** (sequential, on the live system): one consistent
    ///    Chandy–Lamport snapshot per explorer, shared behind `Arc` by
    ///    all of that explorer's peer rounds. Rounds never touch the
    ///    live system, so pre-taking a sweep's snapshots is
    ///    byte-identical to interleaving them with rounds.
    /// 2. **Rounds** (parallel): up to `pair_workers` whole `(explorer,
    ///    peer)` rounds in flight on one shared pool of
    ///    `max(pair_workers, workers)` threads; each round's validation
    ///    fan-out is stealable by any idle worker (see the `executor`
    ///    module).
    /// 3. **Aggregation** (sequential, in round-ordinal order): fold the
    ///    per-round outcomes into the [`CampaignReport`]. Because every
    ///    stage is a pure function of `(snapshot, config)` and the fold
    ///    runs in ordinal order, the report is identical for any
    ///    `pair_workers` value modulo wall-clock fields
    ///    ([`CampaignReport::normalized`]).
    ///
    /// Snapshot cost accounting: the Chandy–Lamport pass is shared by all
    /// of an explorer's peer rounds, so its cost (wall and simulated
    /// time, and round-wall inclusion) is attributed to the *first* round
    /// that used it; subsequent rounds reusing the snapshot report zero
    /// snapshot cost. Summing `rounds[i].snapshot` over a campaign
    /// therefore counts each snapshot exactly once.
    pub fn run(&self, live: &mut Simulator) -> Result<CampaignReport, String> {
        // dice-lint: allow(determinism-zone): campaign wall-clock accounting; zeroed by normalized()
        let wall = std::time::Instant::now();
        let sim_start = live.now();
        let topo = live.topology().clone();
        let plan = self.sweep_plan();
        if plan.is_empty() {
            return Err("campaign has no eligible (explorer, peer) pairs".into());
        }
        let checkers = crate::check::default_checkers(self.cfg.template.oscillation_threshold);
        let pair_workers = self.cfg.pair_workers.max(1);
        let pool_workers = pair_workers.max(self.cfg.template.workers.max(1));

        // Delta snapshots on the live system: scope the counters to this
        // campaign by draining whatever a previous run left behind.
        live.set_delta_snapshots(self.cfg.template.delta_snapshots);
        let _ = live.take_snapshot_stats();
        // Expand the dynamics schedule once, deterministically from the
        // campaign seed and the live clock at campaign start. Actions are
        // applied at the quiescent point before each sweep's snapshots
        // (never mid-cut: an in-band fault firing during a Chandy–Lamport
        // pass would abort the snapshot).
        let mut schedule = match &self.cfg.template.schedule {
            Some(spec) if !spec.is_empty() => {
                let mut rng =
                    dice_netsim::SimRng::seed_from_u64(self.cfg.template.seed).split(0x5C4ED);
                spec.expand(&topo, live.now(), &mut rng)
            }
            _ => dice_netsim::Schedule::default(),
        };

        #[derive(Default)]
        struct Accum {
            kind: String,
            rounds: usize,
            coverage: BTreeSet<(u32, bool)>,
            executions: usize,
        }
        #[derive(Default)]
        struct KindAccum {
            rounds: usize,
            coverage: BTreeSet<(u32, bool)>,
            faults: usize,
            executions: usize,
            wall_us: u64,
        }

        let mut rounds: Vec<RoundReport> = Vec::new();
        let mut coverage_union: BTreeSet<(u32, bool)> = BTreeSet::new();
        let mut per_explorer: BTreeMap<NodeId, Accum> = BTreeMap::new();
        let mut per_kind: BTreeMap<String, KindAccum> = BTreeMap::new();
        let mut fault_union: Vec<FaultReport> = Vec::new();
        let mut fault_keys = BTreeSet::new();
        let mut explorer_fault_counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut detection: BTreeMap<FaultClass, ClassDetection> = BTreeMap::new();
        let mut perf = PerfCounters::default();
        let mut round_no = 0u64;

        // One sweep at a time, so only the current sweep's snapshots are
        // alive: memory stays bounded by the explorer count, not by
        // `rounds × explorers`. Rounds never touch the live system, so
        // the snapshot schedule (and every snapshot's content) is the
        // same as if all sweeps were snapshotted up front.
        for _sweep in 0..self.cfg.rounds.max(1) {
            // Dynamics due by now (partitions opening/healing, churn)
            // fire between sweeps, while no cut is in flight.
            schedule.apply_due(live);
            // Phase 1: snapshots, sequential against the live system.
            let mut tasks: Vec<RoundTask> = Vec::new();
            for (explorer, peers) in &plan {
                let (shadow, snap_metrics) =
                    take_consistent_snapshot(live, *explorer, self.cfg.template.snapshot_deadline)?;
                perf.snapshot_bytes += snap_metrics.bytes as u64;
                let snap_stats = live.take_snapshot_stats();
                perf.snapshot_delta_bytes += snap_stats.delta_bytes;
                perf.nodes_recaptured += snap_stats.nodes_recaptured;
                perf.churn_events += snap_stats.churn_events;
                let shadow = shadow.into_shared();
                // The flip baseline is a function of the shared snapshot;
                // compute it once per explorer.
                let baseline =
                    std::sync::Arc::new(crate::check::flips_baseline(&self.catalog, &shadow));
                for (k, peer) in peers.iter().enumerate() {
                    round_no += 1;
                    // The first peer round carries the snapshot cost;
                    // reuse rounds report zero (see method docs).
                    let (round_metrics, snap_wall_us) = if k == 0 {
                        (snap_metrics, snap_metrics.wall_micros)
                    } else {
                        (
                            crate::snapshot::SnapshotMetrics {
                                sim_duration_nanos: 0,
                                wall_micros: 0,
                                nodes: 0,
                                in_flight: 0,
                                bytes: 0,
                            },
                            0,
                        )
                    };
                    let mut cfg = self.cfg.template.clone();
                    cfg.explorer = *explorer;
                    cfg.inject_peer = *peer;
                    tasks.push(RoundTask {
                        ordinal: round_no,
                        cfg,
                        shadow: std::sync::Arc::clone(&shadow),
                        baseline: std::sync::Arc::clone(&baseline),
                        snap_metrics: round_metrics,
                        snap_wall_us,
                    });
                }
            }

            // Phase 2: this sweep's rounds, parallel over the shared pool.
            let (done, pool_stats) = crate::executor::run_rounds(
                &tasks,
                pair_workers,
                pool_workers,
                &topo,
                &self.catalog,
                &self.registry,
                &checkers,
                wall,
            );
            perf.pool_hits += pool_stats.hits;
            perf.pool_misses += pool_stats.misses;
            perf.wire_bytes += pool_stats.wire.wire_bytes;
            perf.buf_hits += pool_stats.wire.buf_hits;
            perf.buf_misses += pool_stats.wire.buf_misses;
            perf.delivered_batches += pool_stats.wire.batches;
            perf.max_batch_occupancy = perf.max_batch_occupancy.max(pool_stats.wire.max_batch);
            perf.frames_dropped += pool_stats.wire.frames_dropped;
            perf.frames_duplicated += pool_stats.wire.frames_duplicated;
            perf.frames_reordered += pool_stats.wire.frames_reordered;
            perf.link_retransmits += pool_stats.wire.link_retransmits;

            // Phase 3: deterministic aggregation in round-ordinal order.
            for (task, done) in tasks.iter().zip(done) {
                let done = done?;
                let outcome = done.outcome;
                let report = outcome.report;
                let explorer = task.cfg.explorer;

                perf.solver_cache_hits += outcome.exploration.solver.cache_hits;
                perf.solver_queries += outcome.exploration.solver.queries;
                perf.covered_flips_skipped += outcome.exploration.solver.covered_skips;
                perf.unary_memo_hits += outcome.exploration.solver.unary_memo_hits;
                coverage_union.extend(outcome.exploration.coverage.sites());
                let entry = per_explorer.entry(explorer).or_default();
                entry.kind = report.explorer_kind.clone();
                entry.rounds += 1;
                entry.coverage.extend(outcome.exploration.coverage.sites());
                entry.executions += report.executions;

                let kind_entry = per_kind.entry(report.explorer_kind.clone()).or_default();
                kind_entry.rounds += 1;
                kind_entry
                    .coverage
                    .extend(outcome.exploration.coverage.sites());
                kind_entry.executions += report.executions;
                kind_entry.wall_us += report.wall_us;

                for f in &report.faults {
                    detection.entry(f.class).or_insert_with(|| ClassDetection {
                        class: f.class,
                        round: task.ordinal,
                        explorer,
                        inject_peer: task.cfg.inject_peer,
                        input_ordinal: report
                            .detection_input_ordinal
                            .get(&f.class.to_string())
                            .copied()
                            .unwrap_or(0),
                        wall_us_cum: done.completed_wall_us,
                        wall_ms_cum: us_to_ms(done.completed_wall_us),
                    });
                    if fault_keys.insert(f.key()) {
                        fault_union.push(f.clone());
                        *explorer_fault_counts.entry(explorer).or_default() += 1;
                        per_kind
                            .entry(report.explorer_kind.clone())
                            .or_default()
                            .faults += 1;
                    }
                }
                rounds.push(report);
            }
        }

        let per_explorer = per_explorer
            .into_iter()
            .map(|(explorer, acc)| ExplorerSummary {
                explorer,
                kind: acc.kind,
                rounds: acc.rounds,
                coverage: acc.coverage.len(),
                faults: explorer_fault_counts.get(&explorer).copied().unwrap_or(0),
                executions: acc.executions,
            })
            .collect();
        let per_kind = per_kind
            .into_iter()
            .map(|(kind, acc)| KindSummary {
                kind,
                rounds: acc.rounds,
                coverage: acc.coverage.len(),
                faults: acc.faults,
                executions: acc.executions,
                wall_us: acc.wall_us,
                wall_ms: us_to_ms(acc.wall_us),
            })
            .collect();

        let wall_us = wall.elapsed().as_micros() as u64;
        Ok(CampaignReport {
            executions_total: rounds.iter().map(|r| r.executions).sum(),
            validated_total: rounds.iter().map(|r| r.validated).sum(),
            rounds,
            faults: fault_union,
            coverage_union: coverage_union.len(),
            per_explorer,
            per_kind,
            detection: detection.into_values().collect(),
            wall_us,
            wall_ms: us_to_ms(wall_us),
            sim_nanos: (live.now() - sim_start).as_nanos(),
            perf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use dice_netsim::SimTime;

    fn quick(campaign: Campaign) -> Campaign {
        campaign
            .executions(24)
            .validate_top(4)
            .horizon(SimDuration::from_secs(30))
    }

    #[test]
    fn campaign_sweeps_all_pairs_of_a_line() {
        let mut sim = scenarios::healthy_line(3, 5);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = quick(Campaign::new(&sim)).run(&mut sim).expect("runs");
        assert_eq!(report.rounds.len(), 4, "0-1-2 line has 4 directed pairs");
        assert_eq!(report.per_explorer.len(), 3);
        assert!(report.faults.is_empty(), "healthy: {:?}", report.faults);
        assert!(report.coverage_union > 0);
        assert!(report.executions_total >= report.rounds.len());
        // Middle node got both peers, ends one each.
        let middle = report
            .per_explorer
            .iter()
            .find(|e| e.explorer == NodeId(1))
            .unwrap();
        assert_eq!(middle.rounds, 2);
    }

    #[test]
    fn campaign_finds_seeded_bug_and_reports_latency() {
        let mut sim = scenarios::buggy_parser_scenario(7);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let report = quick(Campaign::new(&sim))
            .explorers([NodeId(1)])
            .executions(160)
            .validate_top(16)
            .workers(2)
            .run(&mut sim)
            .expect("runs");
        assert!(report.classes().contains(&FaultClass::ProgrammingError));
        let det = report
            .detection
            .iter()
            .find(|d| d.class == FaultClass::ProgrammingError)
            .expect("detection latency recorded");
        assert!(det.round >= 1);
        assert!(det.input_ordinal >= 1);
        assert_eq!(det.explorer, NodeId(1));
    }

    #[test]
    fn unreliable_links_keep_detection_and_meter_faults() {
        // Validation clones replay under 5% loss: the seeded bug class
        // must still be detected (the injected input bypasses the
        // channel layer; only the surrounding dynamics degrade), the
        // fault counters must populate, and the normalized report must
        // stay byte-identical across pair_workers per seed.
        let run = |pair_workers: usize| {
            let mut sim = scenarios::buggy_parser_scenario(7);
            sim.run_until(SimTime::from_nanos(10_000_000_000));
            quick(Campaign::new(&sim))
                .explorers([NodeId(1)])
                .executions(160)
                .validate_top(16)
                .pair_workers(pair_workers)
                .unreliable_links(true)
                .link_faults(dice_netsim::LinkFaults::lossy(0.05))
                .run(&mut sim)
                .expect("lossy campaign runs")
        };
        let report = run(1);
        assert!(
            report.classes().contains(&FaultClass::ProgrammingError),
            "seeded bug must survive 5% loss: {:?}",
            report.classes()
        );
        assert!(
            report.perf.frames_dropped > 0,
            "5% loss must drop frames: {:?}",
            report.perf
        );
        let n = report.normalized();
        assert_eq!(n.perf.frames_dropped, 0, "fault counters normalize away");
        assert_eq!(
            serde_json::to_string(&run(3).normalized()).unwrap(),
            serde_json::to_string(&n).unwrap(),
            "fault sampling must be schedule-independent"
        );
    }

    #[test]
    fn explorer_filter_and_peer_cap_shape_the_plan() {
        let sim = scenarios::healthy_line(4, 5);
        let c = Campaign::new(&sim)
            .explorers([NodeId(1), NodeId(2)])
            .max_peers_per_explorer(1);
        let plan = c.sweep_plan();
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|(_, peers)| peers.len() == 1));
        assert_eq!(c.eligible_pairs().len(), 6, "discovery is unfiltered");
    }

    #[test]
    fn multi_sweep_counts_rounds() {
        let mut sim = scenarios::healthy_line(2, 5);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = quick(Campaign::new(&sim))
            .rounds(2)
            .executions(8)
            .validate_top(2)
            .run(&mut sim)
            .expect("runs");
        assert_eq!(report.rounds.len(), 4, "2 pairs x 2 sweeps");
        assert!(report.wall_ms > 0 || report.rounds_per_sec() > 0.0);
        assert!(report.sim_nanos > 0, "snapshots consume simulated time");
    }

    #[test]
    fn pair_workers_do_not_change_the_report() {
        // Identical fresh systems, different round-level parallelism: the
        // normalized reports must serialize byte-identically.
        let run = |pair_workers: usize| {
            let mut sim = scenarios::buggy_parser_scenario(5);
            sim.run_until(SimTime::from_nanos(10_000_000_000));
            let report = quick(Campaign::new(&sim))
                .executions(48)
                .validate_top(6)
                .workers(2)
                .pair_workers(pair_workers)
                .run(&mut sim)
                .expect("campaign runs");
            serde_json::to_string(&report.normalized()).unwrap()
        };
        let sequential = run(1);
        assert_eq!(run(3), sequential);
        assert!(sequential.contains("\"wall_us\":0"), "wall fields zeroed");
    }

    #[test]
    fn wall_fields_derive_consistently_and_normalize_to_zero() {
        // Every ms field is `us_to_ms` of its us counter — one shared
        // truncating derivation across rounds, detection, per-kind and the
        // campaign total — and `normalized()` zeroes all of them,
        // including the per-kind workload rows added for gossip.
        let mut sim = scenarios::mixed_bgp_gossip(13, true);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = quick(Campaign::new(&sim))
            .executions(48)
            .validate_top(6)
            .run(&mut sim)
            .expect("mixed campaign runs");

        assert_eq!(report.wall_ms, crate::explorer::us_to_ms(report.wall_us));
        for r in &report.rounds {
            assert_eq!(r.wall_ms, crate::explorer::us_to_ms(r.wall_us));
        }
        for d in &report.detection {
            assert_eq!(d.wall_ms_cum, crate::explorer::us_to_ms(d.wall_us_cum));
        }
        assert!(!report.per_kind.is_empty());
        for k in &report.per_kind {
            assert_eq!(k.wall_ms, crate::explorer::us_to_ms(k.wall_us));
        }
        // Kind rows partition the rounds and their wall time.
        assert_eq!(
            report.per_kind.iter().map(|k| k.rounds).sum::<usize>(),
            report.rounds.len()
        );
        assert_eq!(
            report.per_kind.iter().map(|k| k.wall_us).sum::<u64>(),
            report.rounds.iter().map(|r| r.wall_us).sum::<u64>()
        );

        let n = report.normalized();
        assert_eq!(n.wall_us, 0);
        assert_eq!(n.wall_ms, 0);
        assert!(n
            .rounds
            .iter()
            .all(|r| r.wall_us == 0 && r.wall_ms == 0 && r.snapshot.wall_micros == 0));
        assert!(n
            .detection
            .iter()
            .all(|d| d.wall_us_cum == 0 && d.wall_ms_cum == 0));
        assert!(n.per_kind.iter().all(|k| k.wall_us == 0 && k.wall_ms == 0));
    }

    #[test]
    fn per_kind_summarizes_heterogeneous_workloads() {
        let mut sim = scenarios::mixed_bgp_gossip(17, false);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = quick(Campaign::new(&sim))
            .executions(16)
            .validate_top(3)
            .run(&mut sim)
            .expect("mixed campaign runs");
        let kinds: Vec<&str> = report.per_kind.iter().map(|k| k.kind.as_str()).collect();
        assert_eq!(kinds, vec!["bgp", "gossip"], "kind rows in kind order");
        let bgp = &report.per_kind[0];
        let gossip = &report.per_kind[1];
        // BGP line 0-1 has 2 directed pairs; gossip triangle has 6.
        assert_eq!(bgp.rounds, 2);
        assert_eq!(gossip.rounds, 6);
        assert!(bgp.coverage > 0 && gossip.coverage > 0);
        assert!(bgp.executions > 0 && gossip.executions > 0);
    }

    #[test]
    fn perf_counters_populate_and_normalize_to_zero() {
        let mut sim = scenarios::healthy_line(3, 5);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = quick(Campaign::new(&sim))
            .executions(48)
            .validate_top(6)
            .run(&mut sim)
            .expect("runs");
        let perf = &report.perf;
        assert!(perf.snapshot_bytes > 0, "snapshot footprint recorded");
        assert!(
            perf.pool_hits > 0,
            "default pool_size=1 must reuse clones: {perf:?}"
        );
        assert!(perf.pool_misses > 0, "first acquisition per worker misses");
        assert_eq!(
            (perf.pool_hits + perf.pool_misses) as usize,
            report.validated_total,
            "every validated input is exactly one pool acquisition"
        );
        assert!(perf.solver_queries > 0);
        assert!(
            perf.unary_memo_hits > 0,
            "prefix constraints must hit the solver memo: {perf:?}"
        );
        assert!(perf.pool_hit_rate() > 0.0 && perf.pool_hit_rate() < 1.0);
        assert!(
            perf.wire_bytes > 0,
            "clone traffic must be metered: {perf:?}"
        );
        assert!(
            perf.buf_hits > 0,
            "default wire_pool=on must recycle payload buffers: {perf:?}"
        );
        assert!(
            perf.buf_misses > 0,
            "cold pools allocate fresh at least once"
        );
        assert!(perf.delivered_batches > 0, "deliveries count as batches");
        assert!(
            perf.max_batch_occupancy >= 1,
            "any delivery implies a batch of at least one"
        );
        assert!(
            perf.nodes_recaptured > 0,
            "consistent cuts must capture node checkpoints: {perf:?}"
        );
        assert!(
            perf.snapshot_delta_bytes > 0,
            "captured checkpoints have a byte footprint: {perf:?}"
        );
        assert!(
            perf.snapshot_delta_bytes <= perf.snapshot_bytes,
            "the incremental footprint never exceeds the full shadow: {perf:?}"
        );
        assert_eq!(perf.churn_events, 0, "no schedule configured");
        assert_eq!(perf.frames_dropped, 0, "reliable channels drop nothing");
        assert_eq!(perf.frames_duplicated, 0);
        assert_eq!(perf.frames_reordered, 0);

        let n = report.normalized();
        assert_eq!(n.perf.snapshot_bytes, 0);
        assert_eq!(n.perf.pool_hits, 0);
        assert_eq!(n.perf.pool_misses, 0);
        assert_eq!(n.perf.solver_cache_hits, 0);
        assert_eq!(n.perf.solver_queries, 0);
        assert_eq!(n.perf.covered_flips_skipped, 0);
        assert_eq!(n.perf.unary_memo_hits, 0);
        assert_eq!(n.perf.wire_bytes, 0);
        assert_eq!(n.perf.buf_hits, 0);
        assert_eq!(n.perf.buf_misses, 0);
        assert_eq!(n.perf.delivered_batches, 0);
        assert_eq!(n.perf.max_batch_occupancy, 0);
        assert_eq!(n.perf.snapshot_delta_bytes, 0);
        assert_eq!(n.perf.nodes_recaptured, 0);
        assert_eq!(n.perf.churn_events, 0);
        assert_eq!(n.perf.frames_dropped, 0);
        assert_eq!(n.perf.frames_duplicated, 0);
        assert_eq!(n.perf.frames_reordered, 0);
        assert_eq!(n.perf.link_retransmits, 0);

        // Disabling the refutation cache must not change any result
        // field; only the solver-query accounting may move.
        let mut sim2 = scenarios::healthy_line(3, 5);
        sim2.run_until(SimTime::from_nanos(12_000_000_000));
        let uncached = quick(Campaign::new(&sim2))
            .executions(48)
            .validate_top(6)
            .solver_cache(false)
            .run(&mut sim2)
            .expect("runs");
        assert_eq!(uncached.perf.solver_cache_hits, 0);
        assert_eq!(uncached.perf.unary_memo_hits, 0);
        assert_eq!(
            serde_json::to_string(&uncached.normalized()).unwrap(),
            serde_json::to_string(&report.normalized()).unwrap(),
            "refutation cache must not alter the report"
        );
    }

    #[test]
    fn delta_snapshots_shrink_recapture_without_changing_reports() {
        // Multi-sweep campaign on a quiescent system: with delta
        // snapshots on, later sweeps serve unmutated nodes from the
        // checkpoint cache instead of re-cloning them, and the report is
        // byte-identical to the full-recapture run.
        let run = |delta: bool| {
            let mut sim = scenarios::healthy_line(3, 5);
            sim.run_until(SimTime::from_nanos(12_000_000_000));
            quick(Campaign::new(&sim))
                .rounds(3)
                .executions(8)
                .validate_top(2)
                .delta_snapshots(delta)
                .run(&mut sim)
                .expect("runs")
        };
        let on = run(true);
        let off = run(false);
        assert!(
            on.perf.nodes_recaptured < off.perf.nodes_recaptured,
            "delta cuts must re-capture fewer nodes: {} vs {}",
            on.perf.nodes_recaptured,
            off.perf.nodes_recaptured
        );
        assert!(on.perf.snapshot_delta_bytes < off.perf.snapshot_delta_bytes);
        assert_eq!(
            serde_json::to_string(&on.normalized()).unwrap(),
            serde_json::to_string(&off.normalized()).unwrap(),
            "delta snapshots must not alter the report"
        );
    }

    #[test]
    fn internet_scale_steady_state_recaptures_far_fewer_nodes_than_the_system() {
        // The T1 acceptance criterion, at test-suite size: on a quiescent
        // internet-like topology the first cut captures everything cold,
        // and every later cut re-captures only nodes actually dirtied —
        // far fewer than the node count (`nodes_recaptured` ≪ n).
        use dice_netsim::{InternetParams, SimRng, Topology};
        let n = 120usize;
        let params = InternetParams {
            peering_prob: 8.0 / n as f64,
            ..InternetParams::default()
        };
        let mut rng = SimRng::seed_from_u64(0xD1CE);
        let topo = Topology::internet_like(n, &params, &mut rng);
        let mut sim = scenarios::build_system_with_originators(&topo, 4, 17);
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(600_000_000_000),
        );
        let cuts = 3u64;
        let report = quick(Campaign::new(&sim))
            .explorers([NodeId(0)])
            .max_peers_per_explorer(1)
            .rounds(cuts as usize)
            .executions(8)
            .validate_top(2)
            .run(&mut sim)
            .expect("internet campaign runs");
        let total = report.perf.nodes_recaptured;
        assert!(
            total >= n as u64,
            "first cut must capture the whole system: {total}"
        );
        let steady = (total - n as u64) / (cuts - 1);
        assert!(
            steady * 8 < n as u64,
            "steady-state recapture must be ≪ {n} nodes/cut, got {steady}"
        );
    }

    #[test]
    fn dynamics_schedule_is_deterministic_and_counted() {
        // A churn schedule (node leaves, later rejoins) applied at the
        // quiescent points between sweeps: the victim is drawn from
        // `SimRng`, so two identical runs replay the same dynamics and
        // produce byte-identical normalized reports.
        use dice_netsim::ScheduleSpec;
        let run = || {
            let mut sim = scenarios::healthy_line(4, 9);
            sim.run_until(SimTime::from_nanos(12_000_000_000));
            let spec = ScheduleSpec {
                churn: 1,
                churn_len: SimDuration::from_millis(1),
                window: SimDuration::ZERO,
                protect_first: 2, // never churn the swept pair (0, 1)
                ..ScheduleSpec::default()
            };
            quick(Campaign::new(&sim))
                .explorers([NodeId(0)])
                .max_peers_per_explorer(1)
                .rounds(2)
                .executions(8)
                .validate_top(2)
                .schedule(spec)
                .run(&mut sim)
                .expect("campaign survives churn")
        };
        let a = run();
        assert_eq!(
            a.perf.churn_events, 2,
            "crash before sweep 1, restart before sweep 2: {:?}",
            a.perf
        );
        let b = run();
        assert_eq!(b.perf.churn_events, a.perf.churn_events);
        assert_eq!(
            serde_json::to_string(&a.normalized()).unwrap(),
            serde_json::to_string(&b.normalized()).unwrap(),
            "schedules replay deterministically from the campaign seed"
        );
    }

    #[test]
    fn solver_query_counters_are_consistent() {
        // The refutation-cache report ties three counters together: each
        // round's `solver_queries` counts negation queries *answered*
        // (solver calls + cache hits), while the campaign perf block
        // splits the same population by who answered. A "0% hit rate over
        // N solves" report is only trustworthy if no query can fall into
        // a third bucket — lock the identity in.
        let mut sim = scenarios::healthy_line(3, 7);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = quick(Campaign::new(&sim))
            .executions(48)
            .validate_top(6)
            .run(&mut sim)
            .expect("runs");
        let answered: u64 = report.rounds.iter().map(|r| r.solver_queries).sum();
        assert!(answered > 0, "campaign must answer some negation queries");
        assert_eq!(
            answered,
            report.perf.solver_queries + report.perf.solver_cache_hits,
            "every answered query is a solver call or a cache hit: {:?}",
            report.perf
        );
    }

    #[test]
    fn empty_plan_is_an_error() {
        let mut sim = scenarios::healthy_line(2, 5);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        let err = Campaign::new(&sim)
            .explorers([NodeId(99)])
            .run(&mut sim)
            .unwrap_err();
        assert!(err.contains("no eligible"));
    }

    #[test]
    fn report_serializes() {
        let mut sim = scenarios::healthy_line(2, 5);
        sim.run_until(SimTime::from_nanos(12_000_000_000));
        let report = quick(Campaign::new(&sim))
            .executions(8)
            .validate_top(2)
            .run(&mut sim)
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("coverage_union"));
        assert!(json.contains("per_explorer"));
        // The campaign configuration round-trips through JSON text — the
        // contract behind `exp_campaign --config <file.json>`.
        let cfg = Campaign::new(&sim)
            .explorers([NodeId(1)])
            .pair_workers(3)
            .executions(17)
            .config_ref()
            .clone();
        let cfg_json = serde_json::to_string(&cfg).unwrap();
        assert!(cfg_json.contains("max_peers_per_explorer"));
        let back: CampaignConfig = serde_json::from_str(&cfg_json).unwrap();
        assert_eq!(back.pair_workers, 3);
        assert_eq!(back.explorers, vec![NodeId(1)]);
        assert_eq!(back.template.concolic_executions, 17);
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            cfg_json,
            "CampaignConfig -> JSON -> CampaignConfig is the identity"
        );
    }
}
