//! Property checkers and the fault taxonomy.
//!
//! Checkers embody the paper's three fault classes:
//!
//! * **Programming errors** — a node crashed while processing an input
//!   ([`CrashChecker`]).
//! * **Policy conflicts** — persistent best-route oscillation / failure to
//!   converge ([`OscillationChecker`], [`ConvergenceChecker`]); the classic
//!   instance is the "bad gadget" preference cycle.
//! * **Operator mistakes** — announced routes whose (prefix, origin) pair is
//!   not attested, i.e. prefix hijacking by misconfiguration
//!   ([`OriginAuthorityChecker`]).
//!
//! All checks are *local*: they read only the node's own state — through
//! the protocol-agnostic [`CheckView`] seam resolved by a [`SutCatalog`] —
//! and the shared [`AttestationRegistry`] digests, and publish
//! [`LocalVerdict`]s — the narrow interface that keeps federated domains'
//! state confidential.

use std::collections::BTreeMap;

use dice_bgp::Ipv4Net;
use dice_netsim::{NodeId, QuietOutcome, ShadowSnapshot, Simulator};
use serde::{Deserialize, Serialize};

use crate::interface::{AttestationRegistry, LocalVerdict};
use crate::sut::{CheckView, SutCatalog};

/// The paper's fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultClass {
    /// A defect in the implementation (crash, assertion, memory error).
    ProgrammingError,
    /// Conflicting routing policies across domains (e.g. dispute cycles).
    PolicyConflict,
    /// A configuration change that violates global intent (e.g. hijack).
    OperatorMistake,
}

impl core::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultClass::ProgrammingError => write!(f, "programming-error"),
            FaultClass::PolicyConflict => write!(f, "policy-conflict"),
            FaultClass::OperatorMistake => write!(f, "operator-mistake"),
        }
    }
}

/// A detected fault with provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Classification.
    pub class: FaultClass,
    /// Node where the fault manifested ([`FaultReport::SYSTEM_WIDE`] when
    /// no single node is responsible).
    pub node: NodeId,
    /// Human-readable description (non-confidential).
    pub detail: String,
    /// Simulated time of detection.
    pub at_nanos: u64,
}

impl FaultReport {
    /// Sentinel node id for system-wide faults (e.g. non-convergence).
    pub const SYSTEM_WIDE: NodeId = NodeId(u32::MAX);

    /// Dedup key: class + node + detail.
    pub fn key(&self) -> (FaultClass, NodeId, String) {
        (self.class, self.node, self.detail.clone())
    }
}

/// Everything a checker may look at for one explored clone.
pub struct CheckContext<'a> {
    /// The clone after running the exploration horizon.
    pub sim: &'a Simulator,
    /// Resolves nodes to their checker-visible state.
    pub catalog: &'a SutCatalog,
    /// Shared attestation digests.
    pub registry: &'a AttestationRegistry,
    /// Per-(node, prefix) best-route flip counts at snapshot time.
    pub baseline_flips: &'a BTreeMap<(NodeId, Ipv4Net), u64>,
    /// Whether the clone quiesced within the horizon.
    pub quiet: QuietOutcome,
    /// Whether a synthetic exploration input was injected into this clone.
    /// *State-based* properties (origin authority) are only meaningful on
    /// the un-perturbed clone — synthetic announcements are by construction
    /// unattested and would drown the signal; *input-triggered* properties
    /// (crashes, divergence) are checked on every clone.
    pub injected: bool,
}

impl<'a> CheckContext<'a> {
    /// The checker-visible state of every live (non-crashed) node the
    /// catalog recognizes.
    pub fn views(&self) -> impl Iterator<Item = (NodeId, &'a dyn CheckView)> + '_ {
        let sim = self.sim;
        sim.topology().node_ids().filter_map(move |id| {
            if sim.crashed(id).is_some() {
                return None;
            }
            self.catalog
                .resolve(sim.node(id))
                .map(|e| (id, e.check_view()))
        })
    }
}

/// A property checker producing local verdicts and fault reports.
pub trait Checker: Send + Sync {
    /// Stable identifier used in verdicts.
    fn name(&self) -> &'static str;
    /// Run the check over a clone.
    fn check(&self, cx: &CheckContext<'_>) -> (Vec<LocalVerdict>, Vec<FaultReport>);
}

/// Detects crashed nodes (programming errors).
#[derive(Debug, Default)]
pub struct CrashChecker;

impl Checker for CrashChecker {
    fn name(&self) -> &'static str {
        "crash"
    }

    fn check(&self, cx: &CheckContext<'_>) -> (Vec<LocalVerdict>, Vec<FaultReport>) {
        let mut verdicts = Vec::new();
        let mut faults = Vec::new();
        for id in cx.sim.topology().node_ids() {
            match cx.sim.crashed(id) {
                // Nodes absent from the snapshot scope are not crashes.
                Some(reason) if reason == Simulator::OUTSIDE_SNAPSHOT => {}
                Some(reason) => {
                    verdicts.push(LocalVerdict::fail(id, self.name(), "node crashed"));
                    faults.push(FaultReport {
                        class: FaultClass::ProgrammingError,
                        node: id,
                        detail: format!("crash: {reason}"),
                        at_nanos: cx.sim.now().as_nanos(),
                    });
                }
                None => verdicts.push(LocalVerdict::pass(id, self.name())),
            }
        }
        (verdicts, faults)
    }
}

/// Detects persistent best-route oscillation (policy conflicts).
#[derive(Debug)]
pub struct OscillationChecker {
    /// Flips (beyond baseline) for one prefix that count as oscillation.
    /// Must sit above transient convergence churn (a handful of flips per
    /// injected announcement) and below dispute-cycle livelock (hundreds).
    pub threshold: u64,
}

impl Default for OscillationChecker {
    fn default() -> Self {
        OscillationChecker { threshold: 20 }
    }
}

impl Checker for OscillationChecker {
    fn name(&self) -> &'static str {
        "oscillation"
    }

    fn check(&self, cx: &CheckContext<'_>) -> (Vec<LocalVerdict>, Vec<FaultReport>) {
        let mut verdicts = Vec::new();
        let mut faults = Vec::new();
        for (id, view) in cx.views() {
            let mut worst: Option<(Ipv4Net, u64)> = None;
            view.for_each_route_flip(&mut |prefix, flips| {
                let base = cx.baseline_flips.get(&(id, prefix)).copied().unwrap_or(0);
                let delta = flips.saturating_sub(base);
                if delta >= self.threshold && worst.map(|(_, w)| delta > w).unwrap_or(true) {
                    worst = Some((prefix, delta));
                }
            });
            match worst {
                Some((prefix, delta)) => {
                    verdicts.push(LocalVerdict::fail(
                        id,
                        self.name(),
                        format!("route flapping on {prefix}"),
                    ));
                    faults.push(FaultReport {
                        class: FaultClass::PolicyConflict,
                        node: id,
                        detail: format!("oscillation on {prefix} ({delta} flips)"),
                        at_nanos: cx.sim.now().as_nanos(),
                    });
                }
                None => verdicts.push(LocalVerdict::pass(id, self.name())),
            }
        }
        (verdicts, faults)
    }
}

/// Detects unattested route origins (operator mistakes / hijacks).
#[derive(Debug, Default)]
pub struct OriginAuthorityChecker;

impl Checker for OriginAuthorityChecker {
    fn name(&self) -> &'static str {
        "origin-authority"
    }

    fn check(&self, cx: &CheckContext<'_>) -> (Vec<LocalVerdict>, Vec<FaultReport>) {
        if cx.injected {
            // Origin authority is a state property of the live system;
            // synthetic inputs would be trivially (and meaninglessly)
            // unattested.
            return (Vec::new(), Vec::new());
        }
        let mut verdicts = Vec::new();
        let mut faults = Vec::new();
        for (id, view) in cx.views() {
            let mut bad: Vec<String> = Vec::new();
            view.for_each_best_route(&mut |prefix, origin| {
                if !cx.registry.is_attested(&prefix, origin) {
                    bad.push(format!("{prefix} originated by {origin} unattested"));
                    faults.push(FaultReport {
                        class: FaultClass::OperatorMistake,
                        node: id,
                        detail: format!("hijack: {prefix} via {origin}"),
                        at_nanos: cx.sim.now().as_nanos(),
                    });
                }
            });
            if bad.is_empty() {
                verdicts.push(LocalVerdict::pass(id, self.name()));
            } else {
                verdicts.push(LocalVerdict::fail(id, self.name(), bad.join("; ")));
            }
        }
        (verdicts, faults)
    }
}

/// Flags clones that failed to quiesce within the horizon.
#[derive(Debug, Default)]
pub struct ConvergenceChecker;

impl Checker for ConvergenceChecker {
    fn name(&self) -> &'static str {
        "convergence"
    }

    fn check(&self, cx: &CheckContext<'_>) -> (Vec<LocalVerdict>, Vec<FaultReport>) {
        match cx.quiet {
            QuietOutcome::Quiescent => (
                vec![LocalVerdict::pass(FaultReport::SYSTEM_WIDE, self.name())],
                vec![],
            ),
            QuietOutcome::TimedOut => (
                vec![LocalVerdict::fail(
                    FaultReport::SYSTEM_WIDE,
                    self.name(),
                    "no quiescence within horizon",
                )],
                vec![FaultReport {
                    class: FaultClass::PolicyConflict,
                    node: FaultReport::SYSTEM_WIDE,
                    detail: "system did not converge within exploration horizon".into(),
                    at_nanos: cx.sim.now().as_nanos(),
                }],
            ),
        }
    }
}

/// The default checker battery.
pub fn default_checkers(oscillation_threshold: u64) -> Vec<Box<dyn Checker>> {
    vec![
        Box::new(CrashChecker),
        Box::new(OscillationChecker {
            threshold: oscillation_threshold,
        }),
        Box::new(OriginAuthorityChecker),
        Box::new(ConvergenceChecker),
    ]
}

/// Aggregated outcome of a checker battery over one clone.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All verdicts published through the information-sharing interface.
    pub verdicts: Vec<LocalVerdict>,
    /// Detected faults.
    pub faults: Vec<FaultReport>,
}

impl CheckReport {
    /// Number of failing verdicts.
    pub fn failed(&self) -> usize {
        self.verdicts.iter().filter(|v| !v.ok).count()
    }
}

/// Run a battery of checkers over one clone.
pub fn run_checkers(checkers: &[Box<dyn Checker>], cx: &CheckContext<'_>) -> CheckReport {
    let mut report = CheckReport::default();
    for c in checkers {
        let (v, f) = c.check(cx);
        report.verdicts.extend(v);
        report.faults.extend(f);
    }
    report
}

/// Capture per-(node, prefix) best-route flip counts from a snapshot —
/// the baseline the oscillation checker subtracts.
pub fn flips_baseline(
    catalog: &SutCatalog,
    shadow: &ShadowSnapshot,
) -> BTreeMap<(NodeId, Ipv4Net), u64> {
    let mut out = BTreeMap::new();
    for (id, sut) in catalog.shadow_explorables(shadow) {
        sut.check_view().for_each_route_flip(&mut |prefix, flips| {
            out.insert((id, prefix), flips);
        });
    }
    out
}

/// Build the attestation registry from router configs: every node attests
/// the prefixes it legitimately owns. (In deployment this is an IRR/RPKI-
/// like out-of-band step; only digests are shared.) Prefer
/// [`SutCatalog::build_registry`] when a live simulator is at hand.
pub fn build_registry(
    configs: impl IntoIterator<Item = (NodeId, dice_bgp::RouterConfig)>,
    seed: u64,
) -> AttestationRegistry {
    let mut reg = AttestationRegistry::with_seed(seed);
    for (_, cfg) in configs {
        for prefix in &cfg.owned {
            reg.attest(prefix, cfg.asn);
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp_sut;
    use dice_bgp::{net, Asn, BgpRouter, RouterConfig, RouterId};
    use dice_netsim::{LinkParams, SimDuration, SimTime, Topology};

    fn mini_sim(cfgs: Vec<RouterConfig>) -> Simulator {
        let n = cfgs.len();
        let mut topo = Topology::with_nodes(n);
        for i in 1..n {
            topo.add_edge(
                NodeId(0),
                NodeId(i as u32),
                LinkParams::fixed(SimDuration::from_millis(2)),
                dice_netsim::Relationship::Unlabeled,
            );
        }
        let mut sim = Simulator::new(topo, 3);
        for (i, cfg) in cfgs.into_iter().enumerate() {
            sim.set_node(NodeId(i as u32), Box::new(BgpRouter::new(cfg)));
        }
        sim.start();
        sim
    }

    fn cfg(i: u32, peers: &[u32]) -> RouterConfig {
        let mut c = RouterConfig::minimal(Asn(65000 + i as u16), RouterId(i + 1));
        for &p in peers {
            c = c.with_neighbor(NodeId(p), Asn(65000 + p as u16), "all", "all");
        }
        c
    }

    #[test]
    fn crash_checker_reports_programming_error() {
        let mut sim = mini_sim(vec![cfg(0, &[1]), cfg(1, &[0])]);
        sim.run_until(SimTime::from_nanos(3_000_000_000));
        sim.inject_node_crash(NodeId(1));
        let catalog = SutCatalog::default();
        let reg = AttestationRegistry::with_seed(1);
        let baseline = BTreeMap::new();
        let cx = CheckContext {
            sim: &sim,
            catalog: &catalog,
            registry: &reg,
            baseline_flips: &baseline,
            quiet: QuietOutcome::Quiescent,
            injected: false,
        };
        let (verdicts, faults) = CrashChecker.check(&cx);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].class, FaultClass::ProgrammingError);
        assert_eq!(faults[0].node, NodeId(1));
        assert!(verdicts.iter().any(|v| !v.ok));
    }

    #[test]
    fn origin_checker_flags_unattested_route() {
        let c0 = cfg(0, &[1]).with_network(net("10.0.0.0/16"));
        let mut c1 = cfg(1, &[0]);
        // Node 1 announces a prefix it does not own (hijack).
        c1.networks.push(net("99.0.0.0/8"));
        let mut sim = mini_sim(vec![c0.clone(), c1.clone()]);
        sim.run_until(SimTime::from_nanos(10_000_000_000));

        let catalog = SutCatalog::default();
        let reg = build_registry([(NodeId(0), c0), (NodeId(1), c1)], 7);
        let baseline = BTreeMap::new();
        let cx = CheckContext {
            sim: &sim,
            catalog: &catalog,
            registry: &reg,
            baseline_flips: &baseline,
            quiet: QuietOutcome::Quiescent,
            injected: false,
        };
        let (_, faults) = OriginAuthorityChecker.check(&cx);
        assert!(
            faults
                .iter()
                .any(|f| f.class == FaultClass::OperatorMistake && f.detail.contains("99.0.0.0/8")),
            "hijack must be reported: {faults:?}"
        );
        // The legitimate prefix is NOT reported.
        assert!(!faults.iter().any(|f| f.detail.contains("10.0.0.0/16")));
    }

    #[test]
    fn oscillation_checker_uses_baseline() {
        let c0 = cfg(0, &[1]).with_network(net("10.0.0.0/8"));
        let c1 = cfg(1, &[0]);
        let mut sim = mini_sim(vec![c0, c1]);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let catalog = SutCatalog::default();
        let reg = AttestationRegistry::with_seed(1);

        // Baseline equal to current flips: no oscillation reported.
        let mut baseline = BTreeMap::new();
        for id in sim.topology().node_ids() {
            if let Some(r) = bgp_sut::as_bgp(sim.node(id)) {
                for (p, f) in &r.loc_rib().flips {
                    baseline.insert((id, *p), *f);
                }
            }
        }
        let cx = CheckContext {
            sim: &sim,
            catalog: &catalog,
            registry: &reg,
            baseline_flips: &baseline,
            quiet: QuietOutcome::Quiescent,
            injected: false,
        };
        let (_, faults) = OscillationChecker { threshold: 3 }.check(&cx);
        assert!(
            faults.is_empty(),
            "steady state is not oscillation: {faults:?}"
        );

        // Zero baseline with enough accumulated flips would fire; verify the
        // threshold arithmetic via an artificially low threshold.
        let zero = BTreeMap::new();
        let cx2 = CheckContext {
            sim: &sim,
            catalog: &catalog,
            registry: &reg,
            baseline_flips: &zero,
            quiet: QuietOutcome::Quiescent,
            injected: false,
        };
        let (_, faults_low) = OscillationChecker { threshold: 1 }.check(&cx2);
        assert!(!faults_low.is_empty(), "flips beyond baseline must fire");
    }

    #[test]
    fn convergence_checker_maps_quiet_outcome() {
        let sim = mini_sim(vec![cfg(0, &[1]), cfg(1, &[0])]);
        let catalog = SutCatalog::default();
        let reg = AttestationRegistry::with_seed(1);
        let baseline = BTreeMap::new();
        for (quiet, expect_fault) in [
            (QuietOutcome::Quiescent, false),
            (QuietOutcome::TimedOut, true),
        ] {
            let cx = CheckContext {
                sim: &sim,
                catalog: &catalog,
                registry: &reg,
                baseline_flips: &baseline,
                quiet,
                injected: false,
            };
            let (_, faults) = ConvergenceChecker.check(&cx);
            assert_eq!(!faults.is_empty(), expect_fault);
        }
    }

    #[test]
    fn registry_built_from_owned_lists() {
        let c0 = cfg(0, &[]).with_network(net("10.0.0.0/16"));
        let reg = build_registry([(NodeId(0), c0)], 5);
        assert!(reg.is_attested(&net("10.0.0.0/16"), Asn(65000)));
        assert!(!reg.is_attested(&net("10.0.0.0/16"), Asn(65001)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn check_report_aggregates() {
        let mut sim = mini_sim(vec![cfg(0, &[1]), cfg(1, &[0])]);
        sim.inject_node_crash(NodeId(0));
        let catalog = SutCatalog::default();
        let reg = AttestationRegistry::with_seed(1);
        let baseline = BTreeMap::new();
        let cx = CheckContext {
            sim: &sim,
            catalog: &catalog,
            registry: &reg,
            baseline_flips: &baseline,
            quiet: QuietOutcome::TimedOut,
            injected: false,
        };
        let battery = default_checkers(20);
        let report = run_checkers(&battery, &cx);
        assert!(report.failed() >= 2, "crash + convergence verdicts fail");
        let classes: std::collections::BTreeSet<FaultClass> =
            report.faults.iter().map(|f| f.class).collect();
        assert!(classes.contains(&FaultClass::ProgrammingError));
        assert!(classes.contains(&FaultClass::PolicyConflict));
    }
}
