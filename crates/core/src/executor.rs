//! The campaign-level parallel round executor.
//!
//! One worker pool, two task granularities. *Round tasks* run the explore
//! and check stages of a whole `(explorer, peer)` round; *validation
//! tasks* run one clone-validate-check unit of some round currently in
//! flight. Workers prefer claiming a fresh round (round-level parallelism
//! is what moves the campaign's rounds/s); when no unclaimed round remains
//! — or the worker's index is beyond the `pair_workers` concurrency cap —
//! they steal validation units from open rounds, so the tail of a round's
//! validation fan-out never idles the pool while another round explores.
//!
//! Determinism: rounds receive their ordinals before execution starts,
//! every stage is a pure function of `(shadow, cfg)`, and validation
//! results are collected keyed by candidate index and re-sorted before the
//! check stage folds them. The schedule (which worker runs what, in what
//! order) therefore cannot influence any report field except wall-clock
//! times — [`crate::campaign::CampaignReport::normalized`] is byte-stable
//! across `pair_workers` values, which `tests/heterogeneous.rs` locks in.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use dice_netsim::{NodeId, ShadowSnapshot, Topology};

use crate::check::{CheckReport, Checker};
use crate::explorer::{check_stage, explore_stage, validate_one, DiceConfig, PairOutcome};
use crate::interface::AttestationRegistry;
use crate::pool::{ClonePool, PoolStats};
use crate::snapshot::SnapshotMetrics;
use crate::sut::SutCatalog;
use crate::sync::lock_unpoisoned;

/// One scheduled `(explorer, peer)` round: its deterministic ordinal, the
/// per-round configuration, and the shared (Arc'd) snapshot context it
/// explores over.
pub(crate) struct RoundTask {
    /// 1-based round ordinal in sweep order; fixes report ordering, seed
    /// context, and first-detection attribution independent of schedule.
    pub(crate) ordinal: u64,
    /// Round configuration (template with `explorer` / `inject_peer` set).
    pub(crate) cfg: DiceConfig,
    /// The consistent snapshot shared by all of this explorer's rounds.
    pub(crate) shadow: Arc<ShadowSnapshot>,
    /// Flip baseline computed once per snapshot.
    pub(crate) baseline: Arc<BTreeMap<(NodeId, dice_bgp::Ipv4Net), u64>>,
    /// Snapshot cost carried by the first round per snapshot, zeroed for
    /// the reuse rounds (see `Campaign::run` docs).
    pub(crate) snap_metrics: SnapshotMetrics,
    /// Wall micros spent establishing the snapshot (first round only).
    pub(crate) snap_wall_us: u64,
}

/// A completed round plus when it finished on the campaign clock (for
/// online detection-latency accounting).
pub(crate) struct RoundDone {
    pub(crate) outcome: PairOutcome,
    /// Campaign wall-clock micros elapsed when the round completed.
    pub(crate) completed_wall_us: u64,
}

/// Validation fan-out state of one in-flight round, stealable by any
/// pool worker.
struct ValBatch {
    /// Index into the task list (identifies shadow/cfg/baseline context).
    task: usize,
    /// Validation candidates, null input first.
    candidates: Vec<Option<Vec<u8>>>,
    /// Next unclaimed candidate index.
    next: AtomicUsize,
    /// Completed candidate count.
    done: AtomicUsize,
    /// Collected `(candidate index, report)` pairs, re-sorted by the
    /// round owner before the check stage.
    results: Mutex<Vec<(usize, CheckReport)>>,
}

/// Read-only context shared by every worker.
struct Shared<'e> {
    tasks: &'e [RoundTask],
    topo: &'e Topology,
    catalog: &'e SutCatalog,
    registry: &'e AttestationRegistry,
    checkers: &'e [Box<dyn Checker>],
    campaign_start: std::time::Instant,
    /// Next unclaimed round.
    round_next: AtomicUsize,
    /// Completed round count (terminates the worker loop).
    rounds_done: AtomicUsize,
    /// Rounds currently fanning out validation units.
    open: Mutex<Vec<Arc<ValBatch>>>,
    /// Per-round results, indexed like `tasks`.
    slots: Mutex<Vec<Option<Result<RoundDone, String>>>>,
    /// Set when any worker unwinds, so the remaining workers stop waiting
    /// on counters the dead worker can no longer advance and
    /// [`run_rounds`] can re-raise the original panic instead of hanging.
    panicked: AtomicBool,
    /// The payload of the first worker panic, re-raised by [`run_rounds`]
    /// after the pool drains. Without this, the scope's automatic join
    /// replaces the worker's message with a generic "a scoped thread
    /// panicked".
    first_panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Clone-pool counters folded in as workers retire (worker pools are
    /// thread-local; only the final sums are shared).
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    /// Wire-path counters (bytes, buffer pool, delivery batching) drained
    /// from each worker's clone pool on retirement.
    wire_bytes: AtomicU64,
    buf_hits: AtomicU64,
    buf_misses: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    /// Channel-fidelity counters from unreliable-link validation runs.
    frames_dropped: AtomicU64,
    frames_duplicated: AtomicU64,
    frames_reordered: AtomicU64,
    link_retransmits: AtomicU64,
}

impl Shared<'_> {
    /// Claim and run one validation unit from `batch` using the calling
    /// worker's clone pool. Returns `false` when the batch has no
    /// unclaimed candidates left.
    // dice-lint: allow(panic-freedom): batch.task is a round index minted by run_rounds
    fn run_val_unit(&self, batch: &ValBatch, pool: &mut ClonePool) -> bool {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        let Some(candidate) = batch.candidates.get(i) else {
            return false;
        };
        let task = &self.tasks[batch.task];
        let report = validate_one(
            i,
            candidate.as_ref(),
            &task.shadow,
            self.topo,
            &task.cfg,
            self.catalog,
            self.registry,
            &task.baseline,
            self.checkers,
            pool,
        );
        lock_unpoisoned(&batch.results, "val-results").push((i, report));
        batch.done.fetch_add(1, Ordering::Release);
        true
    }

    /// Steal one validation unit from any open round. Returns `false` if
    /// nothing was stealable.
    fn steal_val_unit(&self, pool: &mut ClonePool) -> bool {
        let batch = {
            let open = lock_unpoisoned(&self.open, "open-batches");
            open.iter()
                .find(|b| b.next.load(Ordering::Relaxed) < b.candidates.len())
                .cloned()
        };
        match batch {
            Some(b) => self.run_val_unit(&b, pool),
            None => false,
        }
    }

    /// Run round `idx` to completion: explore, fan validation out on the
    /// shared pool (helping other rounds while waiting for stolen units),
    /// then fold the check stage and store the result.
    // dice-lint: allow(panic-freedom): idx comes from the round_next counter, bounded by tasks.len()
    fn run_round(&self, idx: usize, pool: &mut ClonePool) {
        let task = &self.tasks[idx];
        // dice-lint: allow(determinism-zone): per-round wall-clock accounting; zeroed by normalized()
        let stage_start = std::time::Instant::now();
        let result = match explore_stage(&task.shadow, &task.cfg, self.catalog) {
            Err(e) => Err(e),
            Ok(mut stage) => {
                let candidates = std::mem::take(&mut stage.candidates);
                let total = candidates.len();
                let batch = Arc::new(ValBatch {
                    task: idx,
                    candidates,
                    next: AtomicUsize::new(0),
                    done: AtomicUsize::new(0),
                    results: Mutex::new(Vec::with_capacity(total)),
                });
                lock_unpoisoned(&self.open, "open-batches").push(Arc::clone(&batch));
                // Drain own candidates; free workers steal concurrently.
                while self.run_val_unit(&batch, pool) {}
                // Wait for stolen units, helping other rounds meanwhile.
                // Time spent executing *foreign* validation units must not
                // be billed to this round: per-round wall_us feeds the
                // per-kind workload breakdown, and charging a BGP round
                // for a stolen gossip unit (or vice versa) would
                // misattribute cost across protocols.
                let mut foreign_us = 0u64;
                while batch.done.load(Ordering::Acquire) < batch.candidates.len() {
                    if self.panicked.load(Ordering::Acquire) {
                        // A stolen unit's worker is unwinding and will
                        // never advance `done`; abandon the round so the
                        // scope can join and re-raise its panic.
                        return;
                    }
                    // dice-lint: allow(determinism-zone): foreign-unit cost carve-out; zeroed by normalized()
                    let steal_start = std::time::Instant::now();
                    if self.steal_val_unit(pool) {
                        foreign_us += steal_start.elapsed().as_micros() as u64;
                    } else {
                        idle_wait();
                    }
                }
                lock_unpoisoned(&self.open, "open-batches").retain(|b| !Arc::ptr_eq(b, &batch));
                let mut results =
                    std::mem::take(&mut *lock_unpoisoned(&batch.results, "val-results"));
                results.sort_by_key(|(i, _)| *i);
                let results: Vec<CheckReport> = results.into_iter().map(|(_, r)| r).collect();
                let wall_us = task.snap_wall_us
                    + (stage_start.elapsed().as_micros() as u64).saturating_sub(foreign_us);
                Ok(check_stage(
                    stage,
                    &results,
                    &task.cfg,
                    task.ordinal,
                    task.snap_metrics,
                    wall_us,
                ))
            }
        };
        let result = result.map(|outcome| RoundDone {
            outcome,
            completed_wall_us: self.campaign_start.elapsed().as_micros() as u64,
        });
        lock_unpoisoned(&self.slots, "round-slots")[idx] = Some(result);
        self.rounds_done.fetch_add(1, Ordering::Release);
    }

    /// The worker loop. Workers `< round_workers` claim whole rounds;
    /// the rest only steal validation units (they exist when the
    /// validation `workers` knob exceeds `pair_workers`). Each worker
    /// owns a clone pool for its lifetime; counters fold into the shared
    /// sums on retirement.
    fn worker(&self, index: usize, round_workers: usize) {
        let mut pool = ClonePool::new();
        self.worker_loop(index, round_workers, &mut pool);
        self.retire_pool(&pool);
    }

    fn worker_loop(&self, index: usize, round_workers: usize, pool: &mut ClonePool) {
        let total = self.tasks.len();
        loop {
            if self.panicked.load(Ordering::Acquire)
                || self.rounds_done.load(Ordering::Acquire) >= total
            {
                return;
            }
            if index < round_workers {
                let i = self.round_next.fetch_add(1, Ordering::Relaxed);
                if i < total {
                    self.run_round(i, pool);
                    continue;
                }
            }
            if self.steal_val_unit(pool) {
                continue;
            }
            if self.rounds_done.load(Ordering::Acquire) >= total {
                return;
            }
            idle_wait();
        }
    }

    fn retire_pool(&self, pool: &ClonePool) {
        self.pool_hits.fetch_add(pool.hits, Ordering::Relaxed);
        self.pool_misses.fetch_add(pool.misses, Ordering::Relaxed);
        self.wire_bytes
            .fetch_add(pool.wire.wire_bytes, Ordering::Relaxed);
        self.buf_hits
            .fetch_add(pool.wire.buf_hits, Ordering::Relaxed);
        self.buf_misses
            .fetch_add(pool.wire.buf_misses, Ordering::Relaxed);
        self.batches.fetch_add(pool.wire.batches, Ordering::Relaxed);
        self.max_batch
            .fetch_max(pool.wire.max_batch, Ordering::Relaxed);
        self.frames_dropped
            .fetch_add(pool.wire.frames_dropped, Ordering::Relaxed);
        self.frames_duplicated
            .fetch_add(pool.wire.frames_duplicated, Ordering::Relaxed);
        self.frames_reordered
            .fetch_add(pool.wire.frames_reordered, Ordering::Relaxed);
        self.link_retransmits
            .fetch_add(pool.wire.link_retransmits, Ordering::Relaxed);
    }
}

/// Back off briefly when a worker finds nothing to run. A hot
/// `yield_now` loop is fine on idle multi-core hosts but on saturated or
/// single-core ones it steals timeslices from the workers doing real
/// work; a short sleep keeps the tail overhead bounded (≤ a few hundred
/// microseconds per wait) without any notification plumbing.
fn idle_wait() {
    std::thread::sleep(std::time::Duration::from_micros(100));
}

/// Test-only fault injection for the executor's shared locks, re-exported
/// as `dice_core::executor_test_support`. Thread-local on purpose: the
/// flag is armed and consumed on the campaign's calling thread, so
/// parallel tests in one binary cannot poison each other's runs.
#[doc(hidden)]
pub mod test_support {
    use std::cell::Cell;

    thread_local! {
        static POISON_OPEN_LOCK: Cell<bool> = const { Cell::new(false) };
    }

    /// Arm the one-shot poison: the calling thread's next `run_rounds`
    /// deliberately poisons its open-batches mutex before workers start.
    pub fn poison_next_run() {
        POISON_OPEN_LOCK.with(|c| c.set(true));
    }

    /// Consume the flag (internal).
    pub(crate) fn poison_armed() -> bool {
        POISON_OPEN_LOCK.with(|c| c.replace(false))
    }
}

/// Execute `tasks` with at most `pair_workers` rounds in flight over a
/// pool of `pool_workers` threads (`pool_workers >= pair_workers`), and
/// return per-round results in task order plus the aggregated clone-pool
/// counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_rounds(
    tasks: &[RoundTask],
    pair_workers: usize,
    pool_workers: usize,
    topo: &Topology,
    catalog: &SutCatalog,
    registry: &AttestationRegistry,
    checkers: &[Box<dyn Checker>],
    campaign_start: std::time::Instant,
) -> (Vec<Result<RoundDone, String>>, PoolStats) {
    let shared = Shared {
        tasks,
        topo,
        catalog,
        registry,
        checkers,
        campaign_start,
        round_next: AtomicUsize::new(0),
        rounds_done: AtomicUsize::new(0),
        open: Mutex::new(Vec::new()),
        slots: Mutex::new((0..tasks.len()).map(|_| None).collect()),
        panicked: AtomicBool::new(false),
        first_panic: Mutex::new(None),
        pool_hits: AtomicU64::new(0),
        pool_misses: AtomicU64::new(0),
        wire_bytes: AtomicU64::new(0),
        buf_hits: AtomicU64::new(0),
        buf_misses: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        max_batch: AtomicU64::new(0),
        frames_dropped: AtomicU64::new(0),
        frames_duplicated: AtomicU64::new(0),
        frames_reordered: AtomicU64::new(0),
        link_retransmits: AtomicU64::new(0),
    };
    // Test-only fault injection: poison the open-batches lock before any
    // worker starts, proving campaign results never depend on pristine
    // lock state (every access goes through lock_unpoisoned). The panic
    // unwinds through the held guard — that is what sets the poison flag
    // — and is caught on this thread before the pool spins up.
    if test_support::poison_armed() {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.open.lock();
            panic!("deliberate poison injection"); // dice-lint: allow(panic-freedom): test-only poison injection, caught on this thread
        }));
        debug_assert!(shared.open.is_poisoned());
    }
    let round_workers = pair_workers.max(1);
    let pool_workers = pool_workers.max(round_workers);
    if round_workers == 1 && pool_workers == 1 {
        // Degenerate pool: run inline, no threads to spawn or join;
        // panics propagate directly.
        let mut pool = ClonePool::new();
        for i in 0..tasks.len() {
            shared.run_round(i, &mut pool);
        }
        shared.retire_pool(&pool);
    } else {
        // Each worker catches its own unwind, records the payload of the
        // *first* panic, and raises the `panicked` flag so the surviving
        // workers stop waiting on counters the dead worker can no longer
        // advance. The scope then joins cleanly and the original panic is
        // re-raised below with its message intact.
        std::thread::scope(|s| {
            for index in 0..pool_workers {
                let shared = &shared;
                s.spawn(move || {
                    let body = std::panic::AssertUnwindSafe(|| {
                        shared.worker(index, round_workers);
                    });
                    if let Err(payload) = std::panic::catch_unwind(body) {
                        shared.panicked.store(true, Ordering::Release);
                        let mut slot = lock_unpoisoned(&shared.first_panic, "first-panic");
                        slot.get_or_insert(payload);
                    }
                });
            }
        });
    }
    if let Some(payload) = lock_unpoisoned(&shared.first_panic, "first-panic").take() {
        std::panic::resume_unwind(payload);
    }
    let pool_stats = PoolStats {
        hits: shared.pool_hits.load(Ordering::Relaxed),
        misses: shared.pool_misses.load(Ordering::Relaxed),
        wire: dice_netsim::WireStats {
            wire_bytes: shared.wire_bytes.load(Ordering::Relaxed),
            buf_hits: shared.buf_hits.load(Ordering::Relaxed),
            buf_misses: shared.buf_misses.load(Ordering::Relaxed),
            batches: shared.batches.load(Ordering::Relaxed),
            max_batch: shared.max_batch.load(Ordering::Relaxed),
            frames_dropped: shared.frames_dropped.load(Ordering::Relaxed),
            frames_duplicated: shared.frames_duplicated.load(Ordering::Relaxed),
            frames_reordered: shared.frames_reordered.load(Ordering::Relaxed),
            link_retransmits: shared.link_retransmits.load(Ordering::Relaxed),
        },
    };
    let slots = shared
        .slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    // Every slot is Some unless a worker died without reporting — panics
    // resume_unwind above, so surface the gap as a round error instead
    // of crashing the harness.
    let results = slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| Err("round never completed".into())))
        .collect();
    (results, pool_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{CheckContext, FaultReport};
    use crate::interface::LocalVerdict;
    use crate::scenarios;
    use crate::snapshot::take_consistent_snapshot;
    use dice_netsim::{SimDuration, SimTime};
    use std::panic::AssertUnwindSafe;

    /// A checker that panics while validating — stands in for any defect
    /// in round code running on a pool worker.
    struct ExplodingChecker;

    impl Checker for ExplodingChecker {
        fn name(&self) -> &'static str {
            "exploding"
        }
        fn check(&self, _cx: &CheckContext<'_>) -> (Vec<LocalVerdict>, Vec<FaultReport>) {
            panic!("checker boom: the original failure");
        }
    }

    #[test]
    fn worker_panic_propagates_its_own_message() {
        // Regression: a panicking validation unit must surface *its* panic
        // through the scope join — not a secondary "poisoned mutex" panic
        // from one of the surviving workers.
        let mut sim = scenarios::healthy_line(3, 5);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let catalog = SutCatalog::default();
        let registry = catalog.build_registry(&sim, 1);
        let topo = sim.topology().clone();
        let (shadow, snap_metrics) =
            take_consistent_snapshot(&mut sim, NodeId(1), SimDuration::from_secs(10))
                .expect("snapshot completes");
        let shadow = shadow.into_shared();
        let baseline = Arc::new(crate::check::flips_baseline(&catalog, &shadow));
        let mk_task = |ordinal: u64, peer: u32| {
            let mut cfg = DiceConfig::new(NodeId(1), NodeId(peer));
            cfg.concolic_executions = 8;
            cfg.validate_top = 4;
            cfg.horizon = SimDuration::from_secs(20);
            RoundTask {
                ordinal,
                cfg,
                shadow: Arc::clone(&shadow),
                baseline: Arc::clone(&baseline),
                snap_metrics,
                snap_wall_us: 0,
            }
        };
        let tasks = vec![mk_task(1, 0), mk_task(2, 2)];
        let checkers: Vec<Box<dyn Checker>> = vec![Box::new(ExplodingChecker)];
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_rounds(
                &tasks,
                2,
                3,
                &topo,
                &catalog,
                &registry,
                &checkers,
                // dice-lint: allow(determinism-zone): campaign start reference for latency fields
                std::time::Instant::now(),
            )
        }));
        let payload = match outcome {
            Ok(_) => panic!("panicking checker must propagate"),
            Err(payload) => payload,
        };
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string payload>".into());
        assert!(
            msg.contains("checker boom: the original failure"),
            "the worker's own panic must surface, got: {msg}"
        );
    }
}
