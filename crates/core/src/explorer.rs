//! The DiCE runtime: one exploration *round* per the paper's Figure 2.
//!
//! 1. Choose an explorer node and establish a consistent shadow snapshot of
//!    local node checkpoints (in-band Chandy–Lamport).
//! 2. Exercise the explorer node's input handler with concolic execution
//!    over the instrumented twin delivered by its
//!    [`ExplorationPlan`](crate::sut::ExplorationPlan) — for BGP routers,
//!    the UPDATE-handler twin seeded by grammar-generated messages
//!    ("test suite" seeds, Oasis-style).
//! 3. Validate each interesting input system-wide: clone the snapshot into
//!    an isolated simulator, inject the input as if received from a peer,
//!    run to quiescence, and run the property-checker battery.
//! 4. Aggregate local verdicts through the information-sharing interface
//!    into fault reports.
//!
//! The runtime never names a concrete protocol: nodes are resolved through
//! the [`SutCatalog`] probe chain, so federations mixing BGP routers with
//! other [`ExplorableNode`](crate::sut::ExplorableNode) implementors
//! explore uniformly. Clone validation parallelizes across workers (each
//! clone is independent) over a std scoped-thread pool.
//!
//! [`DiceRunner`] drives one fixed `(explorer, inject_peer)` pair per
//! round; [`crate::campaign::Campaign`] sweeps every eligible pair.

use std::collections::{BTreeMap, BTreeSet};

use dice_concolic::{explore, ExplorationReport, ExploreConfig, RunStatus, SolverBudget, Strategy};
use dice_netsim::{NodeId, ShadowSnapshot, SimDuration, Simulator, Topology};
use serde::{Deserialize, Serialize};

use crate::check::{
    default_checkers, flips_baseline, run_checkers, CheckContext, Checker, FaultClass, FaultReport,
};
use crate::interface::AttestationRegistry;
use crate::snapshot::{take_consistent_snapshot, SnapshotMetrics};
use crate::sut::SutCatalog;

/// Configuration of the DiCE runtime.
///
/// Serializes (and, with a full serde backend, deserializes) so experiment
/// binaries and CI perf jobs can persist and load configurations as JSON.
/// Deserialization is hand-written (below) so the perf knobs added after
/// the format was first persisted (`pool_size`, `solver_cache`) default
/// instead of erroring when absent — config files written by earlier
/// builds keep loading.
#[derive(Debug, Clone, Serialize)]
pub struct DiceConfig {
    /// The node whose actions are explored this round.
    pub explorer: NodeId,
    /// The neighbor whose inputs are impersonated during exploration.
    pub inject_peer: NodeId,
    /// Concolic execution budget (phase 2).
    pub concolic_executions: usize,
    /// Maximum inputs validated system-wide (phase 3).
    pub validate_top: usize,
    /// Simulated horizon each clone runs for.
    pub horizon: SimDuration,
    /// Idle window that counts as quiescent.
    pub quiet_window: SimDuration,
    /// Simulated deadline for snapshot establishment.
    pub snapshot_deadline: SimDuration,
    /// Concolic search strategy.
    pub strategy: Strategy,
    /// Grammar-generated seed count. `0` disables the grammar layer
    /// entirely: exploration starts from one fixed minimal seed.
    pub grammar_seeds: usize,
    /// Per-query solver budget.
    pub solver_budget: SolverBudget,
    /// Best-route flips beyond baseline that count as oscillation.
    pub oscillation_threshold: u64,
    /// Validation workers (1 = sequential).
    pub workers: usize,
    /// Master seed for grammar and clone simulators.
    pub seed: u64,
    /// Simulators each validation worker retains for reuse between
    /// inputs (reset via `Simulator::reset_from_shadow` instead of
    /// rebuilt via `from_shadow`). `0` disables pooling and forces a
    /// fresh clone per input; reports are byte-identical either way.
    pub pool_size: usize,
    /// Share the concolic refutation cache across seeds within a round
    /// (UNSAT negation queries never reach the solver twice). Exploration
    /// outcomes are identical with the cache on or off; only solver time
    /// differs.
    pub solver_cache: bool,
    /// Recycle payload buffers through the netsim
    /// [`BufPool`](dice_netsim::BufPool) on validation clones. Reports
    /// are byte-identical on or off; only allocation counts differ.
    pub wire_pool: bool,
    /// Coalesce same-instant frame deliveries into one batch on
    /// validation clones. The event schedule is mode-invariant, so
    /// reports are byte-identical on or off.
    pub batch_delivery: bool,
    /// Serve consistent-snapshot node checkpoints from the per-node
    /// delta cache (nodes untouched since the previous cut share their
    /// `Arc` with the prior shadow). A cached checkpoint of an unmutated
    /// node is state-identical to a fresh clone, so reports are
    /// byte-identical on or off; only the `nodes_recaptured` /
    /// `snapshot_delta_bytes` perf counters observe the difference.
    pub delta_snapshots: bool,
    /// Deterministic dynamics schedule (partition/heal windows, node
    /// churn) applied to the **live** system at the quiescent point
    /// before each sweep's snapshots. `None` (the default) and an empty
    /// spec are byte-identical to no schedule at all.
    pub schedule: Option<dice_netsim::ScheduleSpec>,
    /// Subject validation clones to the per-link channel-fidelity layer
    /// (probabilistic drop/duplication/reordering/burst loss per
    /// [`DiceConfig::link_faults`]). Off by default: clones then replay
    /// over the reliable channels the snapshot was taken on.
    pub unreliable_links: bool,
    /// Fault profile applied when [`DiceConfig::unreliable_links`] is on.
    /// `None` uses the netsim default ([`dice_netsim::LinkFaults`]'s 5%
    /// lossy profile).
    pub link_faults: Option<dice_netsim::LinkFaults>,
}

impl Deserialize for DiceConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        fn field<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::DeError> {
            Deserialize::from_value(v.field(name)).map_err(|e| e.at(&format!("DiceConfig.{name}")))
        }
        /// Later-added field: absent (`Null`) reads as its default.
        fn field_or<T: Deserialize>(
            v: &serde::Value,
            name: &str,
            default: T,
        ) -> Result<T, serde::DeError> {
            match v.field(name) {
                serde::Value::Null => Ok(default),
                present => Deserialize::from_value(present)
                    .map_err(|e| e.at(&format!("DiceConfig.{name}"))),
            }
        }
        Ok(DiceConfig {
            explorer: field(v, "explorer")?,
            inject_peer: field(v, "inject_peer")?,
            concolic_executions: field(v, "concolic_executions")?,
            validate_top: field(v, "validate_top")?,
            horizon: field(v, "horizon")?,
            quiet_window: field(v, "quiet_window")?,
            snapshot_deadline: field(v, "snapshot_deadline")?,
            strategy: field(v, "strategy")?,
            grammar_seeds: field(v, "grammar_seeds")?,
            solver_budget: field(v, "solver_budget")?,
            oscillation_threshold: field(v, "oscillation_threshold")?,
            workers: field(v, "workers")?,
            seed: field(v, "seed")?,
            pool_size: field_or(v, "pool_size", 1)?,
            solver_cache: field_or(v, "solver_cache", true)?,
            wire_pool: field_or(v, "wire_pool", true)?,
            batch_delivery: field_or(v, "batch_delivery", true)?,
            delta_snapshots: field_or(v, "delta_snapshots", true)?,
            schedule: field_or(v, "schedule", None)?,
            unreliable_links: field_or(v, "unreliable_links", false)?,
            link_faults: field_or(v, "link_faults", None)?,
        })
    }
}

/// The single derivation of every millisecond wall-clock report field
/// (`wall_ms`, `wall_ms_cum`, ...) from its microsecond counter:
/// truncating division, so a derived field is never larger than its
/// source implies. All report builders must go through this helper —
/// mixing rounding modes across fields would break the byte-identity
/// contract of [`crate::campaign::CampaignReport::normalized`] checks
/// that compare reports across code paths.
pub(crate) fn us_to_ms(us: u64) -> u64 {
    us / 1_000
}

impl DiceConfig {
    /// Sensible defaults for exploring `explorer` via `inject_peer`.
    pub fn new(explorer: NodeId, inject_peer: NodeId) -> Self {
        DiceConfig {
            explorer,
            inject_peer,
            concolic_executions: 192,
            validate_top: 48,
            horizon: SimDuration::from_secs(60),
            quiet_window: SimDuration::from_secs(5),
            snapshot_deadline: SimDuration::from_secs(10),
            strategy: Strategy::Generational,
            grammar_seeds: 8,
            solver_budget: SolverBudget::default(),
            oscillation_threshold: 20,
            workers: 1,
            seed: 0xD1CE,
            pool_size: 1,
            solver_cache: true,
            wire_pool: true,
            batch_delivery: true,
            delta_snapshots: true,
            schedule: None,
            unreliable_links: false,
            link_faults: None,
        }
    }
}

/// Outcome of one DiCE round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round number.
    pub round: u64,
    /// The node explored this round.
    pub explorer: NodeId,
    /// The peer whose inputs were impersonated.
    pub inject_peer: NodeId,
    /// Protocol tag of the explorer node ("bgp", ...).
    pub explorer_kind: String,
    /// Explorer session health at snapshot time (configured vs
    /// established sessions).
    pub explorer_sessions: crate::sut::SessionHealth,
    /// Snapshot cost accounting.
    pub snapshot: SnapshotMetrics,
    /// Concolic executions performed.
    pub executions: usize,
    /// Distinct code paths observed at the explorer node.
    pub distinct_paths: usize,
    /// Final branch coverage (site, direction) count.
    pub branch_coverage: usize,
    /// Inputs validated system-wide (including the null input).
    pub validated: usize,
    /// Deduplicated fault reports.
    pub faults: Vec<FaultReport>,
    /// Verdicts published through the information-sharing interface.
    pub verdicts_total: usize,
    /// Failing verdicts.
    pub verdicts_failed: usize,
    /// For each fault class detected: how many validated inputs ran before
    /// detection (1 = the null input / first input).
    pub detection_input_ordinal: BTreeMap<String, usize>,
    /// Host wall-clock duration of the round, in microseconds (snapshot
    /// share included for the round that paid for it).
    pub wall_us: u64,
    /// Host wall-clock duration of the round, in milliseconds (derived
    /// from [`RoundReport::wall_us`]; kept for report compatibility).
    pub wall_ms: u64,
    /// Negation queries *answered* during exploration: solver calls plus
    /// refutation-cache hits. Counting answered queries (not raw solver
    /// invocations) keeps this field — and therefore normalized report
    /// byte-identity — independent of whether the solver cache is
    /// enabled; the cache split lives in
    /// [`CampaignReport::perf`](crate::campaign::CampaignReport::perf).
    pub solver_queries: u64,
    /// Solver SAT answers (only UNSAT answers are ever cached, so this
    /// is cache-independent as-is).
    pub solver_sat: u64,
}

impl RoundReport {
    /// The set of fault classes detected this round.
    pub fn classes(&self) -> BTreeSet<FaultClass> {
        self.faults.iter().map(|f| f.class).collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "round {} ({}@{} via {}): {} execs, {} paths, {} validated, {} faults ({} classes), {}ms",
            self.round,
            self.explorer_kind,
            self.explorer,
            self.inject_peer,
            self.executions,
            self.distinct_paths,
            self.validated,
            self.faults.len(),
            self.classes().len(),
            self.wall_ms
        )
    }
}

/// One explored `(explorer, peer)` pair: the public report plus the full
/// exploration record the campaign layer aggregates coverage from.
pub(crate) struct PairOutcome {
    pub(crate) report: RoundReport,
    pub(crate) exploration: ExplorationReport,
}

/// Output of the explore stage: everything the later stages need, with
/// the validation candidates broken out so a campaign executor can fan
/// them out as independent sub-tasks on a shared worker pool.
pub(crate) struct ExploreStage {
    pub(crate) kind: String,
    pub(crate) explorer_sessions: crate::sut::SessionHealth,
    pub(crate) exploration: ExplorationReport,
    /// System-wide validation inputs, null input first.
    pub(crate) candidates: Vec<Option<Vec<u8>>>,
    /// `candidates.len()` at construction (stable even after an executor
    /// takes the candidate vector for fan-out).
    pub(crate) validated: usize,
}

/// Stage 2 + candidate selection: run concolic exploration of the
/// explorer node's handler twin over the (shared) snapshot, then pick the
/// inputs worth validating system-wide — crashes first, then highest new
/// coverage, distinct input bytes only.
///
/// Pure function of `(shadow, cfg)`: safe to call concurrently for
/// different rounds over the same `ShadowSnapshot`.
// dice-lint: allow(panic-freedom): order permutes 0..executions.len(), so the index stays in bounds
pub(crate) fn explore_stage(
    shadow: &ShadowSnapshot,
    cfg: &DiceConfig,
    catalog: &SutCatalog,
) -> Result<ExploreStage, String> {
    let explorer_node = shadow
        .nodes()
        .get(&cfg.explorer)
        .ok_or("explorer node missing from snapshot")?;
    let sut = catalog
        .resolve(explorer_node.as_ref())
        .ok_or("explorer node is not explorable (no SUT probe matched)")?;
    let kind = sut.kind();
    let explorer_sessions = sut.check_view().session_health();
    let plan = sut.exploration_plan(cfg.inject_peer, cfg.grammar_seeds, cfg.seed)?;
    let mut program = plan.program;
    let explore_cfg = ExploreConfig {
        strategy: cfg.strategy,
        max_executions: cfg.concolic_executions,
        solver_budget: cfg.solver_budget,
        solver_cache: cfg.solver_cache,
    };
    let exploration = explore(&mut *program, &plan.seeds, &plan.marker, &explore_cfg);

    let mut order: Vec<usize> = (0..exploration.executions.len()).collect();
    order.sort_by_key(|&i| {
        let e = &exploration.executions[i];
        let crash = matches!(e.status, RunStatus::Crash(_));
        (
            core::cmp::Reverse(crash as u8),
            core::cmp::Reverse(e.new_coverage),
            i,
        )
    });
    let mut seen_inputs: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut candidates: Vec<Option<Vec<u8>>> = vec![None]; // null input first
    for i in order {
        if candidates.len() > cfg.validate_top {
            break;
        }
        let e = &exploration.executions[i];
        if seen_inputs.insert(e.input.clone()) {
            candidates.push(Some(e.input.clone()));
        }
    }

    Ok(ExploreStage {
        kind: kind.to_string(),
        explorer_sessions,
        exploration,
        validated: candidates.len(),
        candidates,
    })
}

/// Validate one candidate on an isolated clone of the snapshot and run
/// the checker battery over the outcome — the unit of validation-level
/// parallelism. Deterministic in `(shadow, cfg, i, input)` regardless of
/// whether the clone came from `pool` (reset in place) or was freshly
/// built; the pool only recycles allocations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn validate_one(
    i: usize,
    input: Option<&Vec<u8>>,
    shadow: &ShadowSnapshot,
    topo: &Topology,
    cfg: &DiceConfig,
    catalog: &SutCatalog,
    registry: &AttestationRegistry,
    baseline: &BTreeMap<(NodeId, dice_bgp::Ipv4Net), u64>,
    checkers: &[Box<dyn Checker>],
    pool: &mut crate::pool::ClonePool,
) -> crate::check::CheckReport {
    // Validation units are the executor's stealable scheduling granule:
    // no lock may be held entering or leaving one (enforced under the
    // `race-audit` feature, a no-op otherwise).
    crate::sync::audit_task_boundary("validate_one entry");
    let mut clone = pool.acquire(cfg.pool_size, shadow, topo, cfg.seed ^ (i as u64) << 16);
    clone.set_wire_config(cfg.wire_pool, cfg.batch_delivery);
    clone.set_delta_snapshots(cfg.delta_snapshots);
    if let Some(faults) = cfg.link_faults {
        clone.set_link_faults(faults);
    }
    clone.set_unreliable_links(cfg.unreliable_links);
    if let Some(bytes) = input {
        clone.deliver_direct(cfg.inject_peer, cfg.explorer, bytes);
    }
    let end = shadow.base_time() + cfg.horizon;
    let quiet = clone.run_until_quiet(cfg.quiet_window, end);
    let report = {
        let cx = CheckContext {
            sim: &clone,
            catalog,
            registry,
            baseline_flips: baseline,
            quiet,
            injected: input.is_some(),
        };
        run_checkers(checkers, &cx)
    };
    pool.release(cfg.pool_size, clone);
    crate::sync::audit_task_boundary("validate_one exit");
    report
}

/// Stage 4: fold per-clone check reports into the round's [`RoundReport`].
/// `results` must be in candidate order; the fold is deterministic, so a
/// parallel executor reproduces the sequential report exactly.
pub(crate) fn check_stage(
    stage: ExploreStage,
    results: &[crate::check::CheckReport],
    cfg: &DiceConfig,
    round: u64,
    snap_metrics: SnapshotMetrics,
    wall_us: u64,
) -> PairOutcome {
    let mut faults: Vec<FaultReport> = Vec::new();
    let mut seen_keys = BTreeSet::new();
    let mut verdicts_total = 0;
    let mut verdicts_failed = 0;
    let mut detection: BTreeMap<String, usize> = BTreeMap::new();
    for (i, report) in results.iter().enumerate() {
        verdicts_total += report.verdicts.len();
        verdicts_failed += report.failed();
        for f in &report.faults {
            detection.entry(f.class.to_string()).or_insert(i + 1);
            if seen_keys.insert(f.key()) {
                faults.push(f.clone());
            }
        }
    }

    let exploration = stage.exploration;
    let report = RoundReport {
        round,
        explorer: cfg.explorer,
        inject_peer: cfg.inject_peer,
        explorer_kind: stage.kind,
        explorer_sessions: stage.explorer_sessions,
        snapshot: snap_metrics,
        executions: exploration.executions.len(),
        distinct_paths: exploration.distinct_paths,
        branch_coverage: exploration.final_coverage(),
        validated: stage.validated,
        faults,
        verdicts_total,
        verdicts_failed,
        detection_input_ordinal: detection,
        wall_us,
        wall_ms: us_to_ms(wall_us),
        solver_queries: exploration.solver.queries + exploration.solver.cache_hits,
        solver_sat: exploration.solver.sat,
    };
    PairOutcome {
        report,
        exploration,
    }
}

/// Stages 2–4 over an established snapshot, composed sequentially:
/// explore the configured pair, validate candidates system-wide (private
/// scoped-thread pool sized by `cfg.workers`), check, aggregate. This is
/// the [`DiceRunner`] path; [`crate::campaign::Campaign`] schedules the
/// same stages through its shared campaign-level executor instead.
/// `baseline` and `checkers` are computed by the caller so campaigns can
/// amortize them over all peers sharing one snapshot.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pair(
    shadow: &ShadowSnapshot,
    topo: &Topology,
    cfg: &DiceConfig,
    catalog: &SutCatalog,
    registry: &AttestationRegistry,
    baseline: &BTreeMap<(NodeId, dice_bgp::Ipv4Net), u64>,
    checkers: &[Box<dyn Checker>],
    round: u64,
    snap_metrics: SnapshotMetrics,
    snap_wall_us: u64,
) -> Result<PairOutcome, String> {
    // dice-lint: allow(determinism-zone): round wall-clock accounting; zeroed by normalized()
    let stage_start = std::time::Instant::now();
    let stage = explore_stage(shadow, cfg, catalog)?;
    let results = validate_candidates(
        shadow,
        topo,
        &stage.candidates,
        cfg,
        catalog,
        registry,
        baseline,
        checkers,
    );
    let wall_us = snap_wall_us + stage_start.elapsed().as_micros() as u64;
    Ok(check_stage(
        stage,
        &results,
        cfg,
        round,
        snap_metrics,
        wall_us,
    ))
}

/// The DiCE runtime bound to one deployed system and one fixed
/// `(explorer, inject_peer)` pair.
pub struct DiceRunner {
    pub(crate) config: DiceConfig,
    catalog: SutCatalog,
    registry: AttestationRegistry,
    exploration_last: Option<ExplorationReport>,
    round: u64,
}

impl DiceRunner {
    /// Build a runner over the default (BGP-only) SUT catalog, deriving
    /// the attestation registry from the nodes' ownership facts.
    pub fn from_sim(config: DiceConfig, live: &Simulator) -> Self {
        Self::with_catalog(config, live, SutCatalog::default())
    }

    /// Build a runner over a custom SUT catalog (heterogeneous
    /// federations register extra probes on the catalog first).
    pub fn with_catalog(config: DiceConfig, live: &Simulator, catalog: SutCatalog) -> Self {
        let registry = catalog.build_registry(live, config.seed);
        DiceRunner {
            config,
            catalog,
            registry,
            exploration_last: None,
            round: 0,
        }
    }

    /// The shared attestation registry.
    pub fn registry(&self) -> &AttestationRegistry {
        &self.registry
    }

    /// The SUT catalog resolving nodes under test.
    pub fn catalog(&self) -> &SutCatalog {
        &self.catalog
    }

    /// The full exploration report of the last round (inputs included).
    pub fn last_exploration(&self) -> Option<&ExplorationReport> {
        self.exploration_last.as_ref()
    }

    /// Execute one full DiCE round against the live system.
    pub fn run_round(&mut self, live: &mut Simulator) -> Result<RoundReport, String> {
        // dice-lint: allow(determinism-zone): round wall-clock accounting; zeroed by normalized()
        let wall = std::time::Instant::now();
        self.round += 1;
        let cfg = &self.config;

        // Phase 1: consistent shadow snapshot.
        let (shadow, snap_metrics) =
            take_consistent_snapshot(live, cfg.explorer, cfg.snapshot_deadline)?;
        let topo = live.topology().clone();
        let baseline = flips_baseline(&self.catalog, &shadow);
        let checkers = default_checkers(cfg.oscillation_threshold);
        let snap_wall_us = wall.elapsed().as_micros() as u64;

        let outcome = run_pair(
            &shadow,
            &topo,
            cfg,
            &self.catalog,
            &self.registry,
            &baseline,
            &checkers,
            self.round,
            snap_metrics,
            snap_wall_us,
        )?;
        self.exploration_last = Some(outcome.exploration);
        Ok(outcome.report)
    }
}

/// Validate candidates over clones; parallel when `cfg.workers > 1`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn validate_candidates(
    shadow: &ShadowSnapshot,
    topo: &Topology,
    candidates: &[Option<Vec<u8>>],
    cfg: &DiceConfig,
    catalog: &SutCatalog,
    registry: &AttestationRegistry,
    baseline: &BTreeMap<(NodeId, dice_bgp::Ipv4Net), u64>,
    checkers: &[Box<dyn Checker>],
) -> Vec<crate::check::CheckReport> {
    let run_one = |i: usize, input: Option<&Vec<u8>>, pool: &mut crate::pool::ClonePool| {
        validate_one(
            i, input, shadow, topo, cfg, catalog, registry, baseline, checkers, pool,
        )
    };

    if cfg.workers <= 1 {
        let mut pool = crate::pool::ClonePool::new();
        return candidates
            .iter()
            .enumerate()
            .map(|(i, c)| run_one(i, c.as_ref(), &mut pool))
            .collect();
    }

    // Work-stealing by shared index: each worker claims the next candidate
    // until the list is drained. std-only, no external channel crate needed.
    // Clone pools are worker-local, so no synchronization on the reuse path.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::with_capacity(candidates.len()));
    std::thread::scope(|s| {
        for _ in 0..cfg.workers {
            let next = &next;
            let results = &results;
            let run_one = &run_one;
            s.spawn(move || {
                let mut pool = crate::pool::ClonePool::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(cand) = candidates.get(i) else { break };
                    let report = run_one(i, cand.as_ref(), &mut pool);
                    // Poison-tolerant like the campaign executor: a panicking
                    // sibling must not trigger secondary "poisoned" panics
                    // that mask its message at the scope join.
                    crate::sync::lock_unpoisoned(results, "val-results").push((i, report));
                }
            });
        }
    });
    let mut collected = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp_sut;
    use crate::scenarios;
    use dice_netsim::SimTime;

    #[test]
    fn round_detects_seeded_programming_error() {
        let mut sim = scenarios::buggy_parser_scenario(7);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 160;
        cfg.validate_top = 24;
        let mut runner = DiceRunner::from_sim(cfg, &sim);
        let report = runner.run_round(&mut sim).expect("round runs");
        assert!(
            report.classes().contains(&FaultClass::ProgrammingError),
            "seeded bug must be found: {report:?}"
        );
        assert!(report.distinct_paths > 10, "exploration should branch out");
        assert_eq!(report.explorer, NodeId(1));
        assert_eq!(report.explorer_kind, "bgp");
    }

    #[test]
    fn round_detects_hijack_mistake() {
        let mut sim = scenarios::hijack_scenario(5);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let mut runner = DiceRunner::from_sim(DiceConfig::new(NodeId(1), NodeId(0)), &sim);

        // Operator mistake happens on the live system AFTER registry setup.
        scenarios::apply_hijack(&mut sim);
        sim.run_until(SimTime::from_nanos(25_000_000_000));

        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 32;
        cfg.validate_top = 4;
        runner.config = cfg;
        let report = runner.run_round(&mut sim).expect("round runs");
        assert!(
            report.classes().contains(&FaultClass::OperatorMistake),
            "hijack must be detected: {:?}",
            report.faults
        );
    }

    #[test]
    fn round_detects_policy_conflict_oscillation() {
        let mut sim = scenarios::bad_gadget_scenario(3);
        // Let the gadget start oscillating.
        sim.run_until(SimTime::from_nanos(20_000_000_000));
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 24;
        cfg.validate_top = 4;
        cfg.horizon = SimDuration::from_secs(120);
        cfg.oscillation_threshold = 20;
        let mut runner = DiceRunner::from_sim(cfg, &sim);
        let report = runner.run_round(&mut sim).expect("round runs");
        assert!(
            report.classes().contains(&FaultClass::PolicyConflict),
            "bad gadget oscillation must be detected: {:?}",
            report.faults
        );
    }

    #[test]
    fn healthy_system_reports_no_faults() {
        let mut sim = scenarios::healthy_line(4, 11);
        sim.run_until(SimTime::from_nanos(15_000_000_000));
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 48;
        cfg.validate_top = 8;
        let mut runner = DiceRunner::from_sim(cfg, &sim);
        let report = runner.run_round(&mut sim).expect("round runs");
        assert!(
            report.faults.is_empty(),
            "healthy system must stay clean: {:?}",
            report.faults
        );
        assert!(report.verdicts_total > 0);
        assert_eq!(report.verdicts_failed, 0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut sim = scenarios::buggy_parser_scenario(9);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let mk = |workers: usize| {
            let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
            cfg.concolic_executions = 96;
            cfg.validate_top = 12;
            cfg.workers = workers;
            cfg
        };
        // Two snapshots of the same quiescent system explore identically.
        let mut r1 = DiceRunner::from_sim(mk(1), &sim);
        let seq = r1.run_round(&mut sim).unwrap();
        let mut r2 = DiceRunner::from_sim(mk(4), &sim);
        let par = r2.run_round(&mut sim).unwrap();
        assert_eq!(seq.classes(), par.classes());
        assert_eq!(seq.executions, par.executions);
        assert_eq!(seq.validated, par.validated);
    }

    #[test]
    fn zero_grammar_seeds_disables_grammar_layer() {
        // Regression: `grammar_seeds = 0` is documented to disable the
        // grammar layer but used to seed two generated messages anyway.
        let mut sim = scenarios::healthy_line(3, 13);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 24;
        cfg.validate_top = 4;
        cfg.grammar_seeds = 0;
        let mut runner = DiceRunner::from_sim(cfg, &sim);
        let report = runner.run_round(&mut sim).expect("round runs");
        assert!(report.executions > 0);
        // The only seed executed is the fixed minimal message.
        let exploration = runner.last_exploration().unwrap();
        let peer_asn = scenarios::asn_of(0);
        assert_eq!(
            exploration.executions[0].input,
            bgp_sut::minimal_seed(peer_asn),
            "grammar layer must be fully disabled at zero seeds"
        );
    }

    #[test]
    fn config_json_without_new_perf_knobs_still_loads() {
        // Config files persisted before pool_size / solver_cache existed
        // must keep deserializing, with the new knobs at their defaults.
        let cfg = DiceConfig::new(NodeId(1), NodeId(0));
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json
            .replace(&format!(",\"pool_size\":{}", cfg.pool_size), "")
            .replace(",\"solver_cache\":true", "")
            .replace(",\"wire_pool\":true", "")
            .replace(",\"batch_delivery\":true", "")
            .replace(",\"delta_snapshots\":true", "")
            .replace(",\"schedule\":null", "")
            .replace(",\"unreliable_links\":false", "")
            .replace(",\"link_faults\":null", "");
        assert_ne!(json, stripped, "all knobs were present and removed");
        let back: DiceConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.pool_size, 1, "absent pool_size defaults to 1");
        assert!(back.solver_cache, "absent solver_cache defaults to on");
        assert!(back.wire_pool, "absent wire_pool defaults to on");
        assert!(back.batch_delivery, "absent batch_delivery defaults to on");
        assert!(
            back.delta_snapshots,
            "absent delta_snapshots defaults to on"
        );
        assert!(back.schedule.is_none(), "absent schedule defaults to none");
        assert!(
            !back.unreliable_links,
            "absent unreliable_links defaults to off"
        );
        assert!(back.link_faults.is_none(), "absent link_faults defaults");
        assert_eq!(back.explorer, cfg.explorer);
        assert_eq!(back.concolic_executions, cfg.concolic_executions);
        // And the full round-trip still holds when the knobs are present.
        let full: DiceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&full).unwrap(), json);
    }

    #[test]
    fn exploration_never_perturbs_live_system() {
        let mut sim = scenarios::healthy_line(3, 13);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
        cfg.concolic_executions = 32;
        cfg.validate_top = 8;
        let mut runner = DiceRunner::from_sim(cfg, &sim);

        // Capture live state before/after a round: only snapshot-marker
        // traffic may appear; RIBs and sessions stay untouched.
        let flips = |sim: &Simulator| -> Vec<u64> {
            sim.topology()
                .node_ids()
                .map(|id| {
                    bgp_sut::as_bgp(sim.node(id))
                        .unwrap()
                        .loc_rib()
                        .total_flips()
                })
                .collect()
        };
        let before = flips(&sim);
        let _ = runner.run_round(&mut sim).unwrap();
        let after = flips(&sim);
        assert_eq!(before, after, "live RIBs must be untouched by exploration");
    }
}
