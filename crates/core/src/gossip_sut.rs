//! The gossip adapter for the SUT seam — the **only** module in
//! `dice-core` that downcasts to [`GossipNode`].
//!
//! Structurally parallel to [`crate::bgp_sut`]: a [`SutProbe`]-shaped
//! [`probe`], an [`ExplorableNode`] implementation supplying the
//! instrumented twin ([`SymbolicGossipHandler`]) plus its seed corpus, and
//! a [`CheckView`] that translates gossip state into the checker-visible
//! vocabulary:
//!
//! * **best routes** — per-topic, the origin of the highest rumor id seen,
//!   keyed by a synthetic multicast-style prefix ([`topic_prefix`]). A node
//!   publishing on a topic it does not own therefore trips the
//!   origin-authority checker exactly like a BGP prefix hijack.
//! * **route flips** — per-topic duplicate-delivery counters: a
//!   duplication storm reads as oscillation.
//! * **session health** — configured gossip peers vs. established
//!   sessions.

use dice_bgp::{Asn, Ipv4Net};
use dice_concolic::{ConcolicCtx, ConcolicProgram, RunStatus, SiteId, SymBool};
use dice_gossip::{
    encode, GossipConfig, GossipFrame, GossipNode, Rumor, TopicId, ACK_KIND_RUMOR,
    ACK_KIND_SUBSCRIBE, ACK_LEN, BUG_COUNT_THRESHOLD, DIGEST_ENTRY_LEN, MAX_DIGEST_ENTRIES,
    MAX_PAYLOAD, MAX_TTL, OP_ACK, OP_DIGEST, OP_RUMOR, OP_SUBSCRIBE, RUMOR_HEADER_LEN,
};
use dice_netsim::{Node, NodeId, SimRng};

use crate::interface::AttestationRegistry;
use crate::sut::{CheckView, ExplorableNode, ExplorationPlan, SessionHealth, SutProbe};

/// Stable branch-site identifiers for the gossip twin. Based at 200 so the
/// campaign-level coverage union never aliases the BGP handler's sites
/// (10..=150) or the scenario test stubs' single-digit sites.
pub mod sites {
    #![allow(missing_docs)]
    pub const OP_IS_RUMOR: u32 = 200;
    pub const OP_IS_DIGEST: u32 = 201;
    pub const OP_IS_SUBSCRIBE: u32 = 202;
    pub const RUMOR_TTL: u32 = 203;
    pub const RUMOR_PLEN_LIMIT: u32 = 204;
    pub const RUMOR_PLEN_EXACT: u32 = 205;
    pub const RUMOR_TOPIC_SUBSCRIBED: u32 = 206;
    pub const RUMOR_NOVEL: u32 = 207;
    pub const DIGEST_COUNT_LIMIT: u32 = 208;
    pub const DIGEST_LEN_EXACT: u32 = 209;
    pub const DIGEST_ENTRY_KNOWN: u32 = 210;
    pub const BUG_DIGEST_COUNT: u32 = 211;
    pub const OP_IS_ACK: u32 = 212;
    pub const ACK_KIND_VALID: u32 = 213;
}

/// The probe registered by
/// [`SutCatalog::standard`](crate::sut::SutCatalog::standard): recognizes
/// [`GossipNode`]s.
pub fn probe(node: &dyn Node) -> Option<&dyn ExplorableNode> {
    node.as_any()
        .downcast_ref::<GossipNode>()
        .map(|g| g as &dyn ExplorableNode)
}

// Let the type checker confirm the signature matches the seam.
const _: SutProbe = probe;

/// View a node as a gossip node, if it is one.
pub fn as_gossip(node: &dyn Node) -> Option<&GossipNode> {
    node.as_any().downcast_ref::<GossipNode>()
}

/// Mutable variant of [`as_gossip`].
pub fn as_gossip_mut(node: &mut dyn Node) -> Option<&mut GossipNode> {
    node.as_any_mut().downcast_mut::<GossipNode>()
}

/// The synthetic prefix standing in for a topic in checker vocabulary:
/// `239.<hi>.<lo>.0/24` (administratively scoped multicast block), so
/// topic "routes" can never collide with the scenarios' unicast space.
pub fn topic_prefix(topic: TopicId) -> Ipv4Net {
    Ipv4Net::new(0xEF00_0000 | ((topic as u32) << 8), 24)
}

/// The fixed minimal seed used when the grammar layer is disabled
/// (`grammar_seeds == 0`): one valid rumor on the node's first interest
/// (or topic 0), from a fixed foreign origin.
pub fn minimal_seed(config: &GossipConfig) -> Vec<u8> {
    let topic = config.interests().into_iter().next().unwrap_or(0);
    encode(&GossipFrame::Rumor(Rumor {
        topic,
        id: 1,
        origin: 0x5EED,
        ttl: 2,
        payload: vec![0xA5; 4],
    }))
}

/// Deterministic seed corpus for `grammar_seeds >= 1`: one valid digest,
/// one subscribe and one ack, then `n` valid rumors over the node's
/// interests — every opcode is represented, so exploration starts with all
/// four dispatch arms covered. The digest frame leads the corpus on purpose:
/// seeds run FIFO, so its count byte is negated within the first
/// generation of flips and the seeded overflow bug (count >= threshold)
/// is reachable well inside the default execution budget — no rumor seed
/// has to be flipped *into* the digest arm first.
// dice-lint: allow(panic-freedom): topics is non-empty by construction (falls back to vec![0])
pub fn seed_corpus(config: &GossipConfig, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x6055_19D0);
    let topics: Vec<TopicId> = {
        let i = config.interests();
        if i.is_empty() {
            vec![0]
        } else {
            i.into_iter().collect()
        }
    };
    // Draw order is part of the corpus contract (rumors first), so the
    // rumor bytes are stable across this reordering of the output.
    let mut rumors = Vec::with_capacity(n);
    for k in 0..n {
        let topic = topics[k % topics.len()];
        let plen = rng.below(9) as usize;
        let mut payload = Vec::with_capacity(plen);
        for _ in 0..plen {
            payload.push(rng.next_u32() as u8);
        }
        rumors.push(encode(&GossipFrame::Rumor(Rumor {
            topic,
            id: rng.next_u32() & 0x00FF_FFFF,
            origin: (0xE000 | rng.below(64) as u16) ^ 0x0800,
            ttl: (rng.below(MAX_TTL as u64 + 1)) as u8,
            payload,
        })));
    }
    let digest: Vec<(TopicId, u32)> = topics
        .iter()
        .take(3)
        .map(|&t| (t, rng.next_u32() & 0xFFFF))
        .collect();
    let mut seeds = Vec::with_capacity(n + 3);
    seeds.push(encode(&GossipFrame::Digest(digest)));
    seeds.push(encode(&GossipFrame::Subscribe { topic: topics[0] }));
    seeds.push(encode(&GossipFrame::Ack {
        kind: ACK_KIND_RUMOR,
        topic: topics[0],
        id: 1,
    }));
    seeds.extend(rumors);
    seeds
}

/// All bytes symbolic: gossip frames are datagram-exact, so (unlike BGP's
/// concrete stream header) even the opcode is fair game — flipping it is
/// precisely how exploration crosses from the rumor arm into the digest
/// arm where the seeded bug lives.
pub fn mark_gossip(bytes: &[u8]) -> Vec<bool> {
    vec![true; bytes.len()]
}

/// The instrumented twin of [`GossipNode`]'s frame handler: the same
/// dispatch-validate pipeline as `GossipNode::on_message` + `wire::decode`,
/// written against concolic values so every data-dependent branch lands in
/// the path condition. Subscription membership is interpreted over the
/// node's *configuration*, so constraints mention config-derived constants
/// (the paper's code-and-configuration claim, on a non-BGP protocol).
#[derive(Debug, Clone)]
pub struct SymbolicGossipHandler {
    config: GossipConfig,
    /// How often an input survived the whole pipeline.
    pub accepted: u64,
    /// How often the novelty oracle admitted a rumor as fresh.
    pub fresh: u64,
}

impl SymbolicGossipHandler {
    /// Create the twin for a node with `config`.
    pub fn new(config: GossipConfig) -> Self {
        SymbolicGossipHandler {
            config,
            accepted: 0,
            fresh: 0,
        }
    }
}

impl ConcolicProgram for SymbolicGossipHandler {
    fn run(&mut self, ctx: &mut ConcolicCtx) -> RunStatus {
        run_gossip_frame(self, ctx)
    }
}

/// Branch helper mirroring `crate::handler::br`.
fn br(ctx: &mut ConcolicCtx, site: u32, cond: SymBool) -> bool {
    ctx.branch(SiteId(site), cond)
}

fn run_gossip_frame(h: &mut SymbolicGossipHandler, ctx: &mut ConcolicCtx) -> RunStatus {
    let total = ctx.input().bytes.len();
    if total == 0 {
        return RunStatus::Rejected("empty".into());
    }
    let op = ctx.read_u8(0);

    // ---- RUMOR arm ---------------------------------------------------
    let is_rumor = ctx.eq_const(op, OP_RUMOR as u64);
    if br(ctx, sites::OP_IS_RUMOR, is_rumor) {
        if total < RUMOR_HEADER_LEN {
            return RunStatus::Rejected("rumor-truncated".into());
        }
        let topic = ctx.read_u16_be(1);
        let _id = ctx.read_u32_be(3);
        let _origin = ctx.read_u16_be(7);
        let ttl = ctx.read_u8(9);
        let ttl_ok = ctx.ule_const(ttl, MAX_TTL as u64);
        if !br(ctx, sites::RUMOR_TTL, ttl_ok) {
            return RunStatus::Rejected("ttl-too-large".into());
        }
        let plen = ctx.read_u8(10);
        let plen_ok = ctx.ule_const(plen, MAX_PAYLOAD as u64);
        if !br(ctx, sites::RUMOR_PLEN_LIMIT, plen_ok) {
            return RunStatus::Rejected("payload-too-long".into());
        }
        let exact = ctx.eq_const(plen, (total - RUMOR_HEADER_LEN) as u64);
        if !br(ctx, sites::RUMOR_PLEN_EXACT, exact) {
            return RunStatus::Rejected("rumor-length".into());
        }
        // Configuration interpreted symbolically: subscription membership.
        let mut subscribed = SymBool::concrete(false);
        for &t in &h.config.subscriptions {
            let eq = ctx.eq_const(topic, t as u64);
            subscribed = ctx.bor(subscribed, eq);
        }
        let delivered = br(ctx, sites::RUMOR_TOPIC_SUBSCRIBED, subscribed);
        // Novelty (seen-set membership) depends on node state the twin
        // does not carry; mark the condition symbolic via an oracle, like
        // the BGP twin's route-preference treatment.
        let novel = ctx.oracle_bool(true);
        if br(ctx, sites::RUMOR_NOVEL, novel) {
            h.fresh += 1;
        }
        let _ = delivered;
        h.accepted += 1;
        return RunStatus::Ok;
    }

    // ---- DIGEST arm --------------------------------------------------
    let is_digest = ctx.eq_const(op, OP_DIGEST as u64);
    if br(ctx, sites::OP_IS_DIGEST, is_digest) {
        if total < 2 {
            return RunStatus::Rejected("digest-truncated".into());
        }
        let count = ctx.read_u8(1);
        // ---- Seeded programming error (mirrors GossipNode's hook) ----
        // The buggy build consumes the count byte before any validation.
        if h.config.bugs.digest_count_overflow {
            let count_big = ctx.uge_const(count, BUG_COUNT_THRESHOLD as u64);
            if br(ctx, sites::BUG_DIGEST_COUNT, count_big) {
                return RunStatus::Crash(
                    "seeded bug: digest count overflow corrupts seen-set".into(),
                );
            }
        }
        let count_ok = ctx.ule_const(count, MAX_DIGEST_ENTRIES as u64);
        if !br(ctx, sites::DIGEST_COUNT_LIMIT, count_ok) {
            return RunStatus::Rejected("digest-too-long".into());
        }
        let exact = ctx.eq_const(count, ((total - 2) / DIGEST_ENTRY_LEN) as u64);
        let body_aligned = (total - 2).is_multiple_of(DIGEST_ENTRY_LEN);
        let exact = if body_aligned {
            exact
        } else {
            SymBool::concrete(false)
        };
        if !br(ctx, sites::DIGEST_LEN_EXACT, exact) {
            return RunStatus::Rejected("digest-length".into());
        }
        let interests = h.config.interests();
        for k in 0..count.val as usize {
            let at = 2 + k * DIGEST_ENTRY_LEN;
            let topic = ctx.read_u16_be(at);
            let _id = ctx.read_u32_be(at + 2);
            let mut known = SymBool::concrete(false);
            for &t in &interests {
                let eq = ctx.eq_const(topic, t as u64);
                known = ctx.bor(known, eq);
            }
            // Either direction is fine (unknown entries are ignored), but
            // the branch records config constants in the path condition.
            br(ctx, sites::DIGEST_ENTRY_KNOWN, known);
        }
        h.accepted += 1;
        return RunStatus::Ok;
    }

    // ---- SUBSCRIBE arm -----------------------------------------------
    let is_sub = ctx.eq_const(op, OP_SUBSCRIBE as u64);
    if br(ctx, sites::OP_IS_SUBSCRIBE, is_sub) {
        if total != 3 {
            return RunStatus::Rejected("subscribe-length".into());
        }
        let _topic = ctx.read_u16_be(1);
        h.accepted += 1;
        return RunStatus::Ok;
    }

    // ---- ACK arm -----------------------------------------------------
    let is_ack = ctx.eq_const(op, OP_ACK as u64);
    if br(ctx, sites::OP_IS_ACK, is_ack) {
        if total != ACK_LEN {
            return RunStatus::Rejected("ack-length".into());
        }
        let kind = ctx.read_u8(1);
        let is_rumor_ack = ctx.eq_const(kind, ACK_KIND_RUMOR as u64);
        let is_sub_ack = ctx.eq_const(kind, ACK_KIND_SUBSCRIBE as u64);
        let kind_ok = ctx.bor(is_rumor_ack, is_sub_ack);
        if !br(ctx, sites::ACK_KIND_VALID, kind_ok) {
            return RunStatus::Rejected("ack-kind".into());
        }
        let _topic = ctx.read_u16_be(2);
        let _id = ctx.read_u32_be(4);
        h.accepted += 1;
        return RunStatus::Ok;
    }

    RunStatus::Rejected("unknown-opcode".into())
}

impl ExplorableNode for GossipNode {
    fn kind(&self) -> &'static str {
        "gossip"
    }

    fn injection_peers(&self) -> Vec<NodeId> {
        self.config().peers.clone()
    }

    fn exploration_plan(
        &self,
        peer: NodeId,
        grammar_seeds: usize,
        seed: u64,
    ) -> Result<ExplorationPlan, String> {
        if !self.config().peers.contains(&peer) {
            return Err("inject peer is not a gossip peer of the explorer".into());
        }
        let config = self.config().clone();
        let seeds = if grammar_seeds == 0 {
            vec![minimal_seed(&config)]
        } else {
            seed_corpus(&config, grammar_seeds, seed)
        };
        Ok(ExplorationPlan {
            program: Box::new(SymbolicGossipHandler::new(config)),
            marker: mark_gossip,
            seeds,
        })
    }

    fn attest(&self, registry: &mut AttestationRegistry) {
        let cfg = self.config();
        for &t in &cfg.publishes {
            registry.attest(&topic_prefix(t), Asn(cfg.origin));
        }
    }

    fn check_view(&self) -> &dyn CheckView {
        self
    }
}

impl CheckView for GossipNode {
    fn for_each_route_flip(&self, visit: &mut dyn FnMut(Ipv4Net, u64)) {
        for (&topic, &dupes) in self.duplicates() {
            visit(topic_prefix(topic), dupes);
        }
    }

    fn for_each_best_route(&self, visit: &mut dyn FnMut(Ipv4Net, Asn)) {
        for (&topic, &(_id, origin)) in self.best_per_topic() {
            visit(topic_prefix(topic), Asn(origin));
        }
    }

    fn session_health(&self) -> SessionHealth {
        SessionHealth {
            configured: self.config().peers.len(),
            established: self.established_peers(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_concolic::SymInput;

    fn config() -> GossipConfig {
        GossipConfig::new(61001)
            .with_peer(NodeId(2))
            .with_peer(NodeId(3))
            .subscribe(1)
            .subscribe(2)
            .publish(7)
    }

    fn run_concrete(cfg: GossipConfig, bytes: &[u8]) -> RunStatus {
        let mut h = SymbolicGossipHandler::new(cfg);
        let mut ctx = ConcolicCtx::new(SymInput::all_concrete(bytes.to_vec()));
        h.run(&mut ctx)
    }

    #[test]
    fn probe_recognizes_gossip_nodes_only() {
        let g: Box<dyn Node> = Box::new(GossipNode::new(config()));
        assert!(probe(g.as_ref()).is_some());
        assert_eq!(probe(g.as_ref()).unwrap().kind(), "gossip");
        let b: Box<dyn Node> = Box::new(dice_bgp::BgpRouter::new(dice_bgp::RouterConfig::minimal(
            Asn(65000),
            dice_bgp::RouterId(1),
        )));
        assert!(probe(b.as_ref()).is_none());
    }

    #[test]
    fn plan_requires_configured_peer() {
        let g = GossipNode::new(config());
        assert!(g.exploration_plan(NodeId(9), 4, 1).is_err());
        assert!(g.exploration_plan(NodeId(2), 4, 1).is_ok());
    }

    #[test]
    fn zero_grammar_seeds_means_fixed_minimal_seed() {
        let g = GossipNode::new(config());
        let a = g.exploration_plan(NodeId(2), 0, 1).unwrap();
        let b = g.exploration_plan(NodeId(2), 0, 999).unwrap();
        assert_eq!(a.seeds.len(), 1);
        assert_eq!(a.seeds, b.seeds, "minimal seed is fixed, not generated");
        // And the minimal seed is accepted by the twin.
        let st = run_concrete(config(), &a.seeds[0]);
        assert_eq!(st, RunStatus::Ok);
    }

    #[test]
    fn grammar_seed_counts_cover_all_opcodes() {
        let g = GossipNode::new(config());
        let plan = g.exploration_plan(NodeId(2), 4, 7).unwrap();
        assert_eq!(plan.seeds.len(), 7, "4 rumors + digest + subscribe + ack");
        let ops: std::collections::BTreeSet<u8> = plan.seeds.iter().map(|s| s[0]).collect();
        assert!(ops.contains(&OP_RUMOR));
        assert!(ops.contains(&OP_DIGEST));
        assert!(ops.contains(&OP_SUBSCRIBE));
        assert!(ops.contains(&OP_ACK));
        // Every generated seed is valid-by-construction for the twin.
        for s in &plan.seeds {
            assert_eq!(run_concrete(config(), s), RunStatus::Ok, "seed {s:?}");
        }
    }

    #[test]
    fn twin_agrees_with_wire_decoder() {
        // Differential fidelity on frame validation: the twin accepts
        // exactly the frames the conforming decoder accepts (novelty and
        // forwarding are node-state concerns outside the twin's scope).
        let cases: Vec<Vec<u8>> = vec![
            minimal_seed(&config()),
            encode(&GossipFrame::Digest(vec![(1, 5), (9, 2)])),
            encode(&GossipFrame::Subscribe { topic: 4 }),
            encode(&GossipFrame::Ack {
                kind: ACK_KIND_SUBSCRIBE,
                topic: 4,
                id: 0,
            }),
            vec![OP_RUMOR, 0, 1, 0, 0, 0, 1, 0, 9, 20, 0], // ttl 20 > MAX_TTL
            vec![OP_DIGEST, 3, 0, 0],                      // truncated digest
            vec![0x44, 1, 2],                              // unknown opcode
            vec![OP_SUBSCRIBE, 1, 2, 3],                   // trailing bytes
            vec![OP_ACK, 7, 0, 1, 0, 0, 0, 2],             // bad ack kind
            vec![OP_ACK, 0, 0, 1],                         // truncated ack
        ];
        for bytes in cases {
            let twin = run_concrete(config(), &bytes);
            let reference = dice_gossip::decode(&bytes);
            assert_eq!(
                matches!(twin, RunStatus::Ok),
                reference.is_ok(),
                "twin={twin:?} reference={reference:?} bytes={bytes:?}"
            );
        }
    }

    #[test]
    fn seeded_bug_reached_only_when_enabled() {
        let attack = vec![OP_DIGEST, BUG_COUNT_THRESHOLD];
        assert!(matches!(
            run_concrete(config(), &attack),
            RunStatus::Rejected(_)
        ));
        let mut buggy = config();
        buggy.bugs.digest_count_overflow = true;
        assert!(matches!(run_concrete(buggy, &attack), RunStatus::Crash(_)));
    }

    #[test]
    fn exploration_reaches_seeded_bug_from_rumor_seeds() {
        // End-to-end concolic reachability: starting from valid rumor
        // seeds only, the solver must flip the opcode into the digest arm
        // and then the count above the bug threshold.
        let mut buggy = config();
        buggy.bugs.digest_count_overflow = true;
        let mut program = SymbolicGossipHandler::new(buggy.clone());
        let seeds = vec![minimal_seed(&buggy)];
        let report = dice_concolic::explore(
            &mut program,
            &seeds,
            &mark_gossip,
            &dice_concolic::ExploreConfig {
                strategy: dice_concolic::Strategy::Generational,
                max_executions: 64,
                ..Default::default()
            },
        );
        let crash = report.first_crash().expect("bug must be reached");
        let input = &report.executions[crash].input;
        assert_eq!(input[0], OP_DIGEST);
        assert!(input[1] >= BUG_COUNT_THRESHOLD);
    }

    #[test]
    fn default_corpus_reaches_seeded_bug_within_a_small_budget() {
        // The digest frame leads the corpus, so the overflow-guarded
        // count byte is a first-generation flip target: the campaign's
        // default budget (192 executions) has an order of magnitude of
        // headroom over what detection actually needs. Locked in at 32
        // so a corpus-ordering regression fails loudly here instead of
        // as a missing fault class in the heterogeneous campaign test.
        let mut buggy = config();
        buggy.bugs.digest_count_overflow = true;
        let mut program = SymbolicGossipHandler::new(buggy.clone());
        let seeds = seed_corpus(&buggy, 4, 7);
        assert_eq!(seeds[0][0], OP_DIGEST, "digest seed must lead");
        let report = dice_concolic::explore(
            &mut program,
            &seeds,
            &mark_gossip,
            &dice_concolic::ExploreConfig {
                strategy: dice_concolic::Strategy::Generational,
                max_executions: 32,
                ..Default::default()
            },
        );
        let crash = report
            .first_crash()
            .expect("digest-first corpus must reach the bug within 32 executions");
        let input = &report.executions[crash].input;
        assert_eq!(input[0], OP_DIGEST);
        assert!(input[1] >= BUG_COUNT_THRESHOLD);
    }

    #[test]
    fn config_complexity_grows_constraints() {
        // More subscriptions -> more recorded constraints on the same
        // input: interpreted configuration explored like code.
        let bytes = minimal_seed(&config());
        let path_len = |cfg: GossipConfig| {
            let mut h = SymbolicGossipHandler::new(cfg);
            let mask = mark_gossip(&bytes);
            let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes.clone(), mask));
            let _ = h.run(&mut ctx);
            ctx.path().len()
        };
        let simple = path_len(GossipConfig::new(1).with_peer(NodeId(2)).subscribe(0));
        let mut rich_cfg = GossipConfig::new(1).with_peer(NodeId(2));
        for t in 0..12 {
            rich_cfg = rich_cfg.subscribe(t);
        }
        let rich = path_len(rich_cfg);
        assert!(
            rich >= simple,
            "rich config must not lose constraints: {rich} vs {simple}"
        );
    }

    #[test]
    fn check_view_translates_gossip_state() {
        let g = GossipNode::new(config());
        let view = ExplorableNode::check_view(&g);
        assert_eq!(view.session_health().configured, 2);
        assert_eq!(view.session_health().established, 0);
        assert_eq!(view.total_flips(), 0);
        let mut reg = AttestationRegistry::with_seed(3);
        ExplorableNode::attest(&g, &mut reg);
        assert!(reg.is_attested(&topic_prefix(7), Asn(61001)));
        assert!(!reg.is_attested(&topic_prefix(1), Asn(61001)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn topic_prefixes_are_distinct_multicast_slices() {
        assert_ne!(topic_prefix(1), topic_prefix(2));
        assert_eq!(topic_prefix(0).len(), 24);
        // 239.0.7.0/24 for topic 7.
        assert_eq!(topic_prefix(7).addr(), 0xEF00_0700);
    }
}
