//! Grammar-based fuzzing of BGP UPDATE messages (paper insight (iii)).
//!
//! Systematic path exploration needs *small* inputs; variety comes from a
//! grammar that produces a large number of valid-by-construction messages.
//! The generator drives `dice_bgp::wire::encode`, so everything it emits is
//! structurally well-formed — the concolic layer is what mutates messages
//! *out* of the valid space along real code paths.

use dice_bgp::{
    AsPath, Asn, Community, Ipv4Addr, Ipv4Net, Message, Origin, PathAttrs, RawAttr, UpdateMsg,
};
use dice_netsim::SimRng;

/// Configuration of the UPDATE grammar.
#[derive(Debug, Clone)]
pub struct GrammarConfig {
    /// The AS that "sends" the message (first AS in the path, so the
    /// first-AS check passes).
    pub peer_asn: Asn,
    /// Pool of origin ASes to terminate paths with.
    pub asn_pool: Vec<Asn>,
    /// Pool of /8 bases to derive prefixes from.
    pub prefix_bases: Vec<u8>,
    /// Maximum NLRI entries per message.
    pub max_nlri: usize,
    /// Probability of a withdraw section.
    pub withdraw_prob: f64,
    /// Probability of attaching an unknown transitive attribute.
    pub unknown_attr_prob: f64,
}

impl GrammarConfig {
    /// Defaults for a given peer AS.
    pub fn for_peer(peer_asn: Asn) -> Self {
        GrammarConfig {
            peer_asn,
            asn_pool: (0..8).map(|i| Asn(64900 + i)).collect(),
            prefix_bases: vec![10, 20, 30, 172, 192, 198, 203],
            max_nlri: 3,
            withdraw_prob: 0.2,
            unknown_attr_prob: 0.15,
        }
    }
}

/// The grammar-based UPDATE generator. Deterministic in its RNG.
#[derive(Debug)]
pub struct UpdateGrammar {
    cfg: GrammarConfig,
    rng: SimRng,
}

impl UpdateGrammar {
    /// Create a generator.
    pub fn new(cfg: GrammarConfig, seed: u64) -> Self {
        UpdateGrammar {
            cfg,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    // dice-lint: allow(panic-freedom): rng.index(len) returns a value below len by contract
    fn random_prefix(&mut self) -> Ipv4Net {
        let base = self.cfg.prefix_bases[self.rng.index(self.cfg.prefix_bases.len())];
        let len = 8 + self.rng.below(17) as u8; // /8 ..= /24
        let addr = ((base as u32) << 24) | (self.rng.next_u32() & 0x00FF_FF00);
        Ipv4Net::new(addr, len)
    }

    // dice-lint: allow(panic-freedom): rng.index(len) returns a value below len by contract
    fn random_as_path(&mut self) -> AsPath {
        let hops = 1 + self.rng.below(3) as usize;
        let mut asns = vec![self.cfg.peer_asn.0];
        for _ in 0..hops {
            let a = self.cfg.asn_pool[self.rng.index(self.cfg.asn_pool.len())];
            if !asns.contains(&a.0) {
                asns.push(a.0);
            }
        }
        AsPath::sequence(asns)
    }

    /// Generate one valid UPDATE message (wire bytes).
    pub fn generate(&mut self) -> Vec<u8> {
        let mut attrs = PathAttrs {
            origin: match self.rng.below(3) {
                0 => Origin::Igp,
                1 => Origin::Egp,
                _ => Origin::Incomplete,
            },
            as_path: self.random_as_path(),
            next_hop: Ipv4Addr(0x0A00_0000 | (1 + self.rng.below(250) as u32)),
            ..Default::default()
        };
        if self.rng.chance(0.3) {
            attrs.med = Some(self.rng.below(200) as u32);
        }
        if self.rng.chance(0.3) {
            let n = 1 + self.rng.below(3);
            for _ in 0..n {
                attrs.communities.insert(Community::from_pair(
                    65000 + self.rng.below(16) as u16,
                    self.rng.below(1000) as u16,
                ));
            }
        }
        if self.rng.chance(self.cfg.unknown_attr_prob) {
            // Unknown transitive attribute with a *small* value — the
            // grammar stays in the benign range; only the concolic layer
            // will push the length into the overflow region.
            let len = 1 + self.rng.below(48) as usize;
            let mut value = vec![0u8; len];
            self.rng.fill_bytes(&mut value);
            attrs.unknown.push(RawAttr {
                flags: dice_bgp::attrs::flags::OPTIONAL | dice_bgp::attrs::flags::TRANSITIVE,
                code: 0xE0 + self.rng.below(16) as u8,
                value,
            });
        }
        let nlri_count = 1 + self.rng.below(self.cfg.max_nlri as u64) as usize;
        let mut nlri = Vec::with_capacity(nlri_count);
        for _ in 0..nlri_count {
            nlri.push(self.random_prefix());
        }
        let withdrawn = if self.rng.chance(self.cfg.withdraw_prob) {
            vec![self.random_prefix()]
        } else {
            vec![]
        };
        dice_bgp::encode(&Message::Update(UpdateMsg {
            withdrawn,
            attrs: Some(attrs),
            nlri,
        }))
    }

    /// Generate a batch of messages.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.generate()).collect()
    }

    /// A "test-suite" seed exercising the unknown-attribute path with a
    /// *large* (but benign: code < 0xF0, so outside the defect's trigger
    /// window) value. Gives the concolic layer a message whose attribute
    /// region is big enough that flipping the high-code branch reaches the
    /// seeded-overflow region — the Oasis insight that exploration should
    /// start from the test suite's interesting inputs.
    pub fn generate_large_unknown(&mut self) -> Vec<u8> {
        let mut attrs = PathAttrs {
            origin: Origin::Igp,
            as_path: AsPath::sequence([self.cfg.peer_asn.0]),
            next_hop: Ipv4Addr(0x0A00_0001),
            ..Default::default()
        };
        let mut value = vec![0u8; 0xA0];
        self.rng.fill_bytes(&mut value);
        attrs.unknown.push(RawAttr {
            flags: dice_bgp::attrs::flags::OPTIONAL | dice_bgp::attrs::flags::TRANSITIVE,
            code: 0xE0 + self.rng.below(16) as u8,
            value,
        });
        dice_bgp::encode(&Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![self.random_prefix()],
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::decode;

    #[test]
    fn everything_generated_is_wire_valid() {
        let mut g = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 7);
        for bytes in g.batch(200) {
            let (msg, used) = decode(&bytes)
                .unwrap_or_else(|e| panic!("grammar produced invalid message: {e} ({bytes:02x?})"));
            assert_eq!(used, bytes.len());
            match msg {
                Message::Update(u) => {
                    assert!(!u.nlri.is_empty());
                    let attrs = u.attrs.expect("announcements carry attrs");
                    assert_eq!(attrs.as_path.first_asn(), Some(Asn(65002)));
                }
                other => panic!("expected update, got {other:?}"),
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 42);
        let mut b = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 42);
        assert_eq!(a.batch(50), b.batch(50));
    }

    #[test]
    fn messages_vary() {
        let mut g = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 9);
        let batch = g.batch(50);
        let distinct: std::collections::BTreeSet<&Vec<u8>> = batch.iter().collect();
        assert!(distinct.len() > 40, "grammar should produce variety");
    }

    #[test]
    fn unknown_attrs_stay_benign() {
        let mut g = UpdateGrammar::new(GrammarConfig::for_peer(Asn(65002)), 11);
        for bytes in g.batch(300) {
            if let Ok((Message::Update(u), _)) = decode(&bytes) {
                if let Some(attrs) = u.attrs {
                    for raw in &attrs.unknown {
                        assert!(
                            raw.value.len() < 0x90,
                            "grammar must not trip the seeded bug by itself"
                        );
                    }
                }
            }
        }
    }
}
