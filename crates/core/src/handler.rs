//! The instrumented twin of the router's UPDATE path.
//!
//! This is the "source instrumentation" of the paper's BIRD integration,
//! reproduced explicitly: the same pipeline as
//! `dice_bgp::router::BgpRouter::handle_update` (wire validation → import
//! policy → decision preference), but written against concolic values so
//! every data-dependent branch lands in the path condition.
//!
//! Two properties matter and are enforced by tests:
//!
//! 1. **Differential fidelity** — on a fully concrete input, the twin's
//!    verdict agrees with the real decoder + policy engine.
//! 2. **Configuration coverage** — the import policy is *interpreted* over
//!    symbolic values, so constraints mention config-derived constants;
//!    exploration therefore covers code and configuration simultaneously.

use dice_bgp::attrs::code as ac;
use dice_bgp::policy::{Match, Policy, Verdict};
use dice_bgp::wire::HEADER_LEN;
use dice_bgp::{Asn, RouterConfig};
use dice_concolic::{CmpOp, ConcolicCtx, ConcolicProgram, RunStatus, SiteId, SymBool, SymWord};
use dice_netsim::NodeId;

/// Stable branch-site identifiers for the instrumented handler.
pub mod sites {
    #![allow(missing_docs)]
    pub const WLEN_FITS: u32 = 10;
    pub const WD_PLEN: u32 = 11;
    pub const WD_FITS: u32 = 12;
    pub const ALEN_FITS: u32 = 13;
    pub const ATTR_HDR_FITS: u32 = 20;
    pub const ATTR_EXT_LEN: u32 = 21;
    pub const ATTR_VAL_FITS: u32 = 22;
    pub const ATTR_WK_FLAGS: u32 = 23;
    pub const ATTR_OPT_FLAG: u32 = 24;
    /// Dispatch sites: `DISPATCH_BASE + type_code` for known codes.
    pub const DISPATCH_BASE: u32 = 30;
    pub const ORIGIN_LEN: u32 = 40;
    pub const ORIGIN_VAL: u32 = 41;
    pub const ASPATH_SEG_KIND: u32 = 42;
    pub const ASPATH_SEG_COUNT: u32 = 43;
    pub const ASPATH_SEG_FITS: u32 = 44;
    pub const NEXTHOP_LEN: u32 = 45;
    pub const NEXTHOP_NONZERO: u32 = 46;
    pub const MED_LEN: u32 = 47;
    pub const LOCALPREF_LEN: u32 = 48;
    pub const ATOMIC_LEN: u32 = 49;
    pub const AGGREGATOR_LEN: u32 = 50;
    pub const COMMUNITY_MOD4: u32 = 51;
    pub const NEXTHOP_NOT_BCAST: u32 = 54;
    pub const ATTR_OPT_TRANS_FLAGS: u32 = 55;
    pub const BUG_CODE_HIGH: u32 = 60;
    pub const BUG_LEN_OVERFLOW: u32 = 61;
    pub const LOOP_CHECK: u32 = 70;
    pub const FIRST_AS: u32 = 71;
    pub const NLRI_PLEN: u32 = 80;
    pub const NLRI_FITS: u32 = 81;
    pub const PREFERENCE_ORACLE: u32 = 90;
    /// Policy rule sites: `POLICY_BASE + rule_index`.
    pub const POLICY_BASE: u32 = 100;
}

/// A symbolic IPv4 prefix parsed from NLRI.
#[derive(Debug, Clone, Copy)]
struct SymPrefix {
    /// 32-bit address (missing NLRI bytes zero-filled).
    addr: SymWord,
    /// Length in bits.
    len: SymWord,
}

/// Symbolic view of the attributes relevant to policy evaluation.
#[derive(Debug, Clone, Default)]
struct SymAttrs {
    origin: Option<SymWord>,
    asns: Vec<SymWord>,
    communities: Vec<SymWord>,
    next_hop: Option<SymWord>,
    have_as_path: bool,
}

/// The instrumented UPDATE handler for one router node.
#[derive(Debug, Clone)]
pub struct SymbolicUpdateHandler {
    config: RouterConfig,
    peer: NodeId,
    /// How often the preference oracle said "this route becomes best".
    pub became_best: u64,
    /// How often an input survived the whole pipeline.
    pub accepted: u64,
}

impl SymbolicUpdateHandler {
    /// Create the twin for the node with `config`, treating inputs as
    /// arriving from `peer`.
    pub fn new(config: RouterConfig, peer: NodeId) -> Self {
        assert!(
            config.neighbor(peer).is_some(),
            "peer {peer} is not configured on this router"
        );
        SymbolicUpdateHandler {
            config,
            peer,
            became_best: 0,
            accepted: 0,
        }
    }

    /// The import policy for the configured peer.
    // dice-lint: allow(panic-freedom): peer and policy ids are validated in new()
    fn import_policy(&self) -> &Policy {
        let n = self.config.neighbor(self.peer).expect("validated in new()");
        &self.config.policies[&n.import]
    }

    // dice-lint: allow(panic-freedom): peer and policy ids are validated in new()
    fn neighbor_asn(&self) -> Asn {
        self.config
            .neighbor(self.peer)
            .expect("validated in new()")
            .asn
    }
}

impl ConcolicProgram for SymbolicUpdateHandler {
    fn run(&mut self, ctx: &mut ConcolicCtx) -> RunStatus {
        run_update(self, ctx)
    }
}

/// Branch helper: returns the concrete direction, recording the constraint.
fn br(ctx: &mut ConcolicCtx, site: u32, cond: SymBool) -> bool {
    ctx.branch(SiteId(site), cond)
}

fn run_update(h: &mut SymbolicUpdateHandler, ctx: &mut ConcolicCtx) -> RunStatus {
    let total = ctx.input().bytes.len();
    // Framing is concrete by the marking policy; check it plainly.
    if !(HEADER_LEN + 4..=dice_bgp::wire::MAX_MESSAGE_LEN).contains(&total) {
        return RunStatus::Rejected("framing".into());
    }
    if ctx.input().bytes[18] != 2 {
        return RunStatus::Rejected("not-update".into());
    }

    let mut pos = HEADER_LEN;

    // ---- Withdrawn routes ------------------------------------------------
    let wlen = ctx.read_u16_be(pos);
    pos += 2;
    let fits = ctx.ule_const(wlen, (total - pos) as u64);
    if !br(ctx, sites::WLEN_FITS, fits) {
        return RunStatus::Rejected("withdrawn-overrun".into());
    }
    let wend = pos + wlen.val as usize;
    while pos < wend {
        let plen = ctx.read_u8(pos);
        pos += 1;
        let ok = ctx.ule_const(plen, 32);
        if !br(ctx, sites::WD_PLEN, ok) {
            return RunStatus::Rejected("withdrawn-prefix-len".into());
        }
        // nbytes = (plen + 7) >> 3, symbolically.
        let p16 = ctx.zext(16, plen);
        let plus7 = ctx.add_const(p16, 7);
        let three = ctx.lit(16, 3);
        let nbytes = ctx.bin(dice_concolic::BinOp::Shr, plus7, three);
        let fits = ctx.ule_const(nbytes, (wend - pos) as u64);
        if !br(ctx, sites::WD_FITS, fits) {
            return RunStatus::Rejected("withdrawn-truncated".into());
        }
        pos += nbytes.val as usize;
    }
    pos = wend;

    // ---- Path attribute block --------------------------------------------
    if pos + 2 > total {
        return RunStatus::Rejected("no-attr-len".into());
    }
    let alen = ctx.read_u16_be(pos);
    pos += 2;
    let fits = ctx.ule_const(alen, (total - pos) as u64);
    if !br(ctx, sites::ALEN_FITS, fits) {
        return RunStatus::Rejected("attrs-overrun".into());
    }
    let aend = pos + alen.val as usize;

    let mut attrs = SymAttrs::default();
    let mut seen_codes: Vec<u8> = Vec::new();

    while pos < aend {
        // flags, type, length (1 or 2 bytes depending on ext-len flag).
        let hdr_fits = SymBool::concrete(pos + 2 <= aend);
        if !br(ctx, sites::ATTR_HDR_FITS, hdr_fits) {
            return RunStatus::Rejected("attr-header-truncated".into());
        }
        let flags = ctx.read_u8(pos);
        let tcode = ctx.read_u8(pos + 1);
        pos += 2;
        let ext_bit = ctx.and_const(flags, 0x10);
        let has_ext = ctx.cmp(CmpOp::Ne, ext_bit, SymWord::concrete(8, 0));
        let alen_field: SymWord;
        if br(ctx, sites::ATTR_EXT_LEN, has_ext) {
            if pos + 2 > aend {
                return RunStatus::Rejected("attr-extlen-truncated".into());
            }
            alen_field = ctx.read_u16_be(pos);
            pos += 2;
        } else {
            if pos + 1 > aend {
                return RunStatus::Rejected("attr-len-truncated".into());
            }
            let l8 = ctx.read_u8(pos);
            pos += 1;
            alen_field = ctx.zext(16, l8);
        }
        let val_fits = ctx.ule_const(alen_field, (aend - pos) as u64);
        if !br(ctx, sites::ATTR_VAL_FITS, val_fits) {
            return RunStatus::Rejected("attr-value-truncated".into());
        }
        let vstart = pos;
        let vlen = alen_field.val as usize;
        pos += vlen;

        // Duplicate detection (concrete, mirroring the table lookup in C).
        let code_concrete = tcode.val as u8;
        if seen_codes.contains(&code_concrete) {
            return RunStatus::Rejected("duplicate-attr".into());
        }
        seen_codes.push(code_concrete);

        let optional = ctx.and_const(flags, 0x80);
        let opt_set = ctx.cmp(CmpOp::Ne, optional, SymWord::concrete(8, 0));
        let transitive = ctx.and_const(flags, 0x40);
        let trans_set = ctx.cmp(CmpOp::Ne, transitive, SymWord::concrete(8, 0));

        // Well-known flag pattern: !optional && transitive.
        let not_opt = ctx.bnot(opt_set);
        let wk_ok = ctx.band(not_opt, trans_set);

        // Dispatch: if/else-if chain over known type codes, like the C code.
        let is = |ctx: &mut ConcolicCtx, k: u8| ctx.eq_const(tcode, k as u64);
        let c_origin = is(ctx, ac::ORIGIN);
        if br(ctx, sites::DISPATCH_BASE + ac::ORIGIN as u32, c_origin) {
            if !br(ctx, sites::ATTR_WK_FLAGS, wk_ok) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let len_ok = ctx.eq_const(alen_field, 1);
            if !br(ctx, sites::ORIGIN_LEN, len_ok) {
                return RunStatus::Rejected("origin-len".into());
            }
            let v = ctx.read_u8(vstart);
            let v_ok = ctx.ule_const(v, 2);
            if !br(ctx, sites::ORIGIN_VAL, v_ok) {
                return RunStatus::Rejected("origin-value".into());
            }
            attrs.origin = Some(v);
            continue;
        }
        let c_aspath = is(ctx, ac::AS_PATH);
        if br(ctx, sites::DISPATCH_BASE + ac::AS_PATH as u32, c_aspath) {
            if !br(ctx, sites::ATTR_WK_FLAGS, wk_ok) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let mut p = vstart;
            let vend = vstart + vlen;
            while p < vend {
                let kind = ctx.read_u8(p);
                let one = ctx.eq_const(kind, 1);
                let two = ctx.eq_const(kind, 2);
                let kind_ok = ctx.bor(one, two);
                if !br(ctx, sites::ASPATH_SEG_KIND, kind_ok) {
                    return RunStatus::Rejected("aspath-seg-kind".into());
                }
                if p + 2 > vend {
                    return RunStatus::Rejected("aspath-truncated".into());
                }
                let count = ctx.read_u8(p + 1);
                let nonzero = ctx.uge_const(count, 1);
                if !br(ctx, sites::ASPATH_SEG_COUNT, nonzero) {
                    return RunStatus::Rejected("aspath-empty-seg".into());
                }
                // seg bytes = count * 2, symbolically.
                let c16 = ctx.zext(16, count);
                let one16 = ctx.lit(16, 1);
                let segbytes = ctx.bin(dice_concolic::BinOp::Shl, c16, one16);
                let fits = ctx.ule_const(segbytes, (vend - p - 2) as u64);
                if !br(ctx, sites::ASPATH_SEG_FITS, fits) {
                    return RunStatus::Rejected("aspath-truncated".into());
                }
                p += 2;
                for _ in 0..count.val {
                    let asn = ctx.read_u16_be(p);
                    attrs.asns.push(asn);
                    p += 2;
                }
            }
            attrs.have_as_path = true;
            continue;
        }
        let c_nexthop = is(ctx, ac::NEXT_HOP);
        if br(ctx, sites::DISPATCH_BASE + ac::NEXT_HOP as u32, c_nexthop) {
            if !br(ctx, sites::ATTR_WK_FLAGS, wk_ok) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let len_ok = ctx.eq_const(alen_field, 4);
            if !br(ctx, sites::NEXTHOP_LEN, len_ok) {
                return RunStatus::Rejected("nexthop-len".into());
            }
            let v = ctx.read_u32_be(vstart);
            let nz = ctx.cmp(CmpOp::Ne, v, SymWord::concrete(32, 0));
            if !br(ctx, sites::NEXTHOP_NONZERO, nz) {
                return RunStatus::Rejected("nexthop-zero".into());
            }
            let not_bcast = ctx.cmp(CmpOp::Ne, v, SymWord::concrete(32, u32::MAX as u64));
            if !br(ctx, sites::NEXTHOP_NOT_BCAST, not_bcast) {
                return RunStatus::Rejected("nexthop-broadcast".into());
            }
            attrs.next_hop = Some(v);
            continue;
        }
        let c_med = is(ctx, ac::MED);
        if br(ctx, sites::DISPATCH_BASE + ac::MED as u32, c_med) {
            if !br(ctx, sites::ATTR_OPT_FLAG, opt_set) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let len_ok = ctx.eq_const(alen_field, 4);
            if !br(ctx, sites::MED_LEN, len_ok) {
                return RunStatus::Rejected("med-len".into());
            }
            continue;
        }
        let c_lp = is(ctx, ac::LOCAL_PREF);
        if br(ctx, sites::DISPATCH_BASE + ac::LOCAL_PREF as u32, c_lp) {
            if !br(ctx, sites::ATTR_WK_FLAGS, wk_ok) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let len_ok = ctx.eq_const(alen_field, 4);
            if !br(ctx, sites::LOCALPREF_LEN, len_ok) {
                return RunStatus::Rejected("localpref-len".into());
            }
            continue;
        }
        let c_atomic = is(ctx, ac::ATOMIC_AGGREGATE);
        if br(
            ctx,
            sites::DISPATCH_BASE + ac::ATOMIC_AGGREGATE as u32,
            c_atomic,
        ) {
            if !br(ctx, sites::ATTR_WK_FLAGS, wk_ok) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let len_ok = ctx.eq_const(alen_field, 0);
            if !br(ctx, sites::ATOMIC_LEN, len_ok) {
                return RunStatus::Rejected("atomic-len".into());
            }
            continue;
        }
        // Optional-transitive flag pattern shared by AGGREGATOR/COMMUNITY.
        let opt_trans = ctx.band(opt_set, trans_set);
        let c_aggr = is(ctx, ac::AGGREGATOR);
        if br(ctx, sites::DISPATCH_BASE + ac::AGGREGATOR as u32, c_aggr) {
            if !br(ctx, sites::ATTR_OPT_TRANS_FLAGS, opt_trans) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let len_ok = ctx.eq_const(alen_field, 6);
            if !br(ctx, sites::AGGREGATOR_LEN, len_ok) {
                return RunStatus::Rejected("aggregator-len".into());
            }
            continue;
        }
        let c_comm = is(ctx, ac::COMMUNITY);
        if br(ctx, sites::DISPATCH_BASE + ac::COMMUNITY as u32, c_comm) {
            if !br(ctx, sites::ATTR_OPT_TRANS_FLAGS, opt_trans) {
                return RunStatus::Rejected("attr-flags".into());
            }
            let low2 = ctx.and_const(alen_field, 3);
            let mod_ok = ctx.eq_const(low2, 0);
            if !br(ctx, sites::COMMUNITY_MOD4, mod_ok) {
                return RunStatus::Rejected("community-len".into());
            }
            let mut p = vstart;
            while p + 4 <= vstart + vlen {
                let c = ctx.read_u32_be(p);
                attrs.communities.push(c);
                p += 4;
            }
            continue;
        }

        // Unknown attribute. Well-known unknown is fatal; optional
        // non-transitive is dropped; optional transitive is carried.
        if !br(ctx, sites::ATTR_OPT_FLAG, opt_set) {
            return RunStatus::Rejected("unrecognized-well-known".into());
        }
        // ---- Seeded programming error (mirrors BgpRouter's bug hook) ----
        if h.config.bugs.attr_overflow_crash {
            let code_high = ctx.uge_const(tcode, 0xF0);
            if br(ctx, sites::BUG_CODE_HIGH, code_high) {
                let len_big = ctx.uge_const(alen_field, 0x90);
                if br(ctx, sites::BUG_LEN_OVERFLOW, len_big) {
                    return RunStatus::Crash(
                        "seeded bug: unknown-attribute length overflow".into(),
                    );
                }
            }
        }
    }
    pos = aend;

    // ---- NLRI --------------------------------------------------------
    let mut prefixes: Vec<SymPrefix> = Vec::new();
    while pos < total {
        let plen = ctx.read_u8(pos);
        pos += 1;
        let ok = ctx.ule_const(plen, 32);
        if !br(ctx, sites::NLRI_PLEN, ok) {
            return RunStatus::Rejected("nlri-prefix-len".into());
        }
        let p16 = ctx.zext(16, plen);
        let plus7 = ctx.add_const(p16, 7);
        let three = ctx.lit(16, 3);
        let nbytes = ctx.bin(dice_concolic::BinOp::Shr, plus7, three);
        let fits = ctx.ule_const(nbytes, (total - pos) as u64);
        if !br(ctx, sites::NLRI_FITS, fits) {
            return RunStatus::Rejected("nlri-truncated".into());
        }
        // Assemble the 32-bit address from up to 4 symbolic bytes.
        let mut addr = ctx.lit(32, 0);
        for k in 0..4usize {
            let byte = if k < nbytes.val as usize {
                let b = ctx.read_u8(pos + k);
                ctx.zext(32, b)
            } else {
                ctx.lit(32, 0)
            };
            let shifted = ctx.shl_const(byte, (24 - 8 * k) as u8);
            addr = ctx.bin(dice_concolic::BinOp::Or, addr, shifted);
        }
        pos += nbytes.val as usize;
        prefixes.push(SymPrefix { addr, len: plen });
    }

    if prefixes.is_empty() {
        // Withdraw-only update: accepted trivially.
        return RunStatus::Ok;
    }

    // Mandatory attributes (presence is concrete at this point).
    if attrs.origin.is_none() || !attrs.have_as_path || attrs.next_hop.is_none() {
        return RunStatus::Rejected("missing-mandatory".into());
    }

    // ---- Loop detection and first-AS check ---------------------------
    let own = h.config.asn;
    let mut has_own = SymBool::concrete(false);
    for &asn in &attrs.asns {
        let eq = ctx.eq_const(asn, own.0 as u64);
        has_own = ctx.bor(has_own, eq);
    }
    if br(ctx, sites::LOOP_CHECK, has_own) {
        return RunStatus::Rejected("as-loop".into());
    }
    let neigh = h.neighbor_asn();
    let first_ok = match attrs.asns.first() {
        Some(&first) => ctx.eq_const(first, neigh.0 as u64),
        None => SymBool::concrete(false),
    };
    if !br(ctx, sites::FIRST_AS, first_ok) {
        return RunStatus::Rejected("first-as".into());
    }

    // ---- Import policy, interpreted symbolically ----------------------
    let policy = h.import_policy().clone();
    for (pi, prefix) in prefixes.iter().enumerate() {
        match eval_policy(ctx, &policy, *prefix, &attrs, pi) {
            Verdict::Reject => return RunStatus::Rejected("import-policy".into()),
            Verdict::Accept => {}
        }
    }

    // ---- Route-preference condition, marked symbolic (paper §3) -------
    h.accepted += 1;
    let preferred = ctx.oracle_bool(true);
    if br(ctx, sites::PREFERENCE_ORACLE, preferred) {
        h.became_best += 1;
    }
    RunStatus::Ok
}

/// Interpret the policy over a symbolic route. Every rule's predicate is a
/// recorded branch, so constraints encode the *configuration*.
fn eval_policy(
    ctx: &mut ConcolicCtx,
    policy: &Policy,
    prefix: SymPrefix,
    attrs: &SymAttrs,
    prefix_index: usize,
) -> Verdict {
    for (ri, rule) in policy.rules.iter().enumerate() {
        let mut fires = SymBool::concrete(true);
        for m in &rule.matches {
            let hit = eval_match(ctx, m, prefix, attrs);
            fires = ctx.band(fires, hit);
        }
        // Site encodes (rule, prefix slot) so different NLRI entries keep
        // distinguishable branch identities.
        let site = sites::POLICY_BASE + (ri as u32) * 8 + (prefix_index as u32 % 8);
        if br(ctx, site, fires) {
            if let Some(v) = rule.verdict {
                return v;
            }
        }
    }
    policy.default
}

fn eval_match(ctx: &mut ConcolicCtx, m: &Match, prefix: SymPrefix, attrs: &SymAttrs) -> SymBool {
    match m {
        Match::Any => SymBool::concrete(true),
        Match::PrefixIn(filters) => {
            let mut any = SymBool::concrete(false);
            for f in filters {
                let maskv: u64 = if f.net.len() == 0 {
                    0
                } else {
                    ((u32::MAX as u64) << (32 - f.net.len() as u64)) & u32::MAX as u64
                };
                let masked = ctx.and_const(prefix.addr, maskv);
                let base_eq = ctx.eq_const(masked, f.net.addr() as u64);
                let ge = ctx.uge_const(prefix.len, f.min_len as u64);
                let le = ctx.ule_const(prefix.len, f.max_len as u64);
                let range = ctx.band(ge, le);
                let hit = ctx.band(base_eq, range);
                any = ctx.bor(any, hit);
            }
            any
        }
        Match::PrefixLenIn { min, max } => {
            let ge = ctx.uge_const(prefix.len, *min as u64);
            let le = ctx.ule_const(prefix.len, *max as u64);
            ctx.band(ge, le)
        }
        Match::AsPathContains(a) => {
            let mut any = SymBool::concrete(false);
            for &asn in &attrs.asns {
                let eq = ctx.eq_const(asn, a.0 as u64);
                any = ctx.bor(any, eq);
            }
            any
        }
        Match::AsPathLenAtMost(n) => SymBool::concrete(attrs.asns.len() as u32 <= *n),
        Match::OriginatedBy(a) => match attrs.asns.last() {
            Some(&last) => ctx.eq_const(last, a.0 as u64),
            None => SymBool::concrete(false),
        },
        Match::HasCommunity(c) => {
            let mut any = SymBool::concrete(false);
            for &comm in &attrs.communities {
                let eq = ctx.eq_const(comm, c.0 as u64);
                any = ctx.bor(any, eq);
            }
            any
        }
        Match::OriginIs(o) => match attrs.origin {
            Some(origin) => ctx.eq_const(origin, *o as u64),
            None => SymBool::concrete(false),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::{
        encode, net, AsPath, Ipv4Addr, Message, PathAttrs, RouterConfig, RouterId, UpdateMsg,
    };
    use dice_concolic::SymInput;

    fn config_with_peer() -> RouterConfig {
        RouterConfig::minimal(Asn(65001), RouterId(0x0A000001)).with_neighbor(
            NodeId(2),
            Asn(65002),
            "all",
            "all",
        )
    }

    fn valid_update(nlri: &[&str]) -> Vec<u8> {
        let attrs = PathAttrs {
            as_path: AsPath::sequence([65002, 65003]),
            next_hop: Ipv4Addr(0x0A000002),
            ..Default::default()
        };
        encode(&Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: nlri.iter().map(|s| net(s)).collect(),
        }))
    }

    fn run_concrete(h: &mut SymbolicUpdateHandler, bytes: &[u8]) -> RunStatus {
        let mut ctx = ConcolicCtx::new(SymInput::all_concrete(bytes.to_vec()));
        h.run(&mut ctx)
    }

    fn run_symbolic(h: &mut SymbolicUpdateHandler, bytes: &[u8]) -> (RunStatus, usize) {
        let mask = crate::symmark::mark_update(bytes);
        let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes.to_vec(), mask));
        let st = h.run(&mut ctx);
        (st, ctx.path().len())
    }

    #[test]
    fn accepts_valid_update() {
        let mut h = SymbolicUpdateHandler::new(config_with_peer(), NodeId(2));
        let bytes = valid_update(&["10.0.0.0/8"]);
        assert_eq!(run_concrete(&mut h, &bytes), RunStatus::Ok);
        assert_eq!(h.accepted, 1);
    }

    #[test]
    fn symbolic_run_records_constraints() {
        let mut h = SymbolicUpdateHandler::new(config_with_peer(), NodeId(2));
        let bytes = valid_update(&["10.0.0.0/8"]);
        let (st, path_len) = run_symbolic(&mut h, &bytes);
        assert_eq!(st, RunStatus::Ok);
        assert!(
            path_len >= 15,
            "expected a rich path condition, got {path_len}"
        );
    }

    #[test]
    fn rejects_as_loop() {
        let cfg = config_with_peer();
        let mut h = SymbolicUpdateHandler::new(cfg, NodeId(2));
        let attrs = PathAttrs {
            as_path: AsPath::sequence([65002, 65001]), // contains own AS
            next_hop: Ipv4Addr(0x0A000002),
            ..Default::default()
        };
        let bytes = encode(&Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![net("10.0.0.0/8")],
        }));
        assert_eq!(
            run_concrete(&mut h, &bytes),
            RunStatus::Rejected("as-loop".into())
        );
    }

    #[test]
    fn rejects_wrong_first_as() {
        let mut h = SymbolicUpdateHandler::new(config_with_peer(), NodeId(2));
        let attrs = PathAttrs {
            as_path: AsPath::sequence([65009]), // not the peer AS
            next_hop: Ipv4Addr(0x0A000002),
            ..Default::default()
        };
        let bytes = encode(&Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![net("10.0.0.0/8")],
        }));
        assert_eq!(
            run_concrete(&mut h, &bytes),
            RunStatus::Rejected("first-as".into())
        );
    }

    #[test]
    fn policy_rejection_mirrors_engine() {
        use dice_bgp::policy::{Match, PrefixFilter, Rule};
        let mut cfg = config_with_peer().with_policy(dice_bgp::Policy {
            name: "no10".into(),
            rules: vec![Rule::reject(vec![Match::PrefixIn(vec![
                PrefixFilter::or_longer(net("10.0.0.0/8")),
            ])])],
            default: dice_bgp::Verdict::Accept,
        });
        cfg.neighbors[0].import = "no10".into();
        let mut h = SymbolicUpdateHandler::new(cfg.clone(), NodeId(2));
        let rejected = valid_update(&["10.1.0.0/16"]);
        let accepted = valid_update(&["20.0.0.0/8"]);
        assert_eq!(
            run_concrete(&mut h, &rejected),
            RunStatus::Rejected("import-policy".into())
        );
        assert_eq!(run_concrete(&mut h, &accepted), RunStatus::Ok);
    }

    /// Differential fidelity: the twin's verdict equals decode + policy +
    /// loop/first-AS checks done with the concrete machinery.
    #[test]
    fn differential_against_concrete_pipeline() {
        use dice_bgp::policy::{Match, PrefixFilter, Rule};
        let mut cfg = config_with_peer().with_policy(dice_bgp::Policy {
            name: "imp".into(),
            rules: vec![
                Rule {
                    matches: vec![Match::PrefixIn(vec![PrefixFilter {
                        net: net("10.0.0.0/8"),
                        min_len: 8,
                        max_len: 24,
                    }])],
                    actions: vec![],
                    verdict: Some(dice_bgp::Verdict::Accept),
                },
                Rule::reject(vec![Match::AsPathContains(Asn(64000))]),
            ],
            default: dice_bgp::Verdict::Accept,
        });
        cfg.neighbors[0].import = "imp".into();

        let cases: Vec<Vec<u8>> = vec![
            valid_update(&["10.2.0.0/16"]),
            valid_update(&["10.0.0.0/8"]),
            valid_update(&["192.0.2.0/24"]),
            {
                let attrs = PathAttrs {
                    as_path: AsPath::sequence([65002, 64000]),
                    next_hop: Ipv4Addr(0x0A000002),
                    ..Default::default()
                };
                encode(&Message::Update(UpdateMsg {
                    withdrawn: vec![],
                    attrs: Some(attrs),
                    nlri: vec![net("172.16.0.0/12")],
                }))
            },
        ];

        for bytes in cases {
            let mut h = SymbolicUpdateHandler::new(cfg.clone(), NodeId(2));
            let twin = run_concrete(&mut h, &bytes);

            // Concrete reference pipeline.
            let reference = match dice_bgp::decode(&bytes) {
                Ok((Message::Update(u), _)) => {
                    let attrs = u.attrs.as_ref().unwrap();
                    if attrs.as_path.contains(Asn(65001)) {
                        RunStatus::Rejected("as-loop".into())
                    } else if attrs.as_path.first_asn() != Some(Asn(65002)) {
                        RunStatus::Rejected("first-as".into())
                    } else {
                        let pol = &cfg.policies["imp"];
                        let all_ok = u
                            .nlri
                            .iter()
                            .all(|p| pol.apply(p, attrs, Asn(65001)).is_some());
                        if all_ok {
                            RunStatus::Ok
                        } else {
                            RunStatus::Rejected("import-policy".into())
                        }
                    }
                }
                Ok(_) => RunStatus::Rejected("not-update".into()),
                Err(e) => RunStatus::Rejected(format!("decode: {e}")),
            };
            let agree = matches!(
                (&twin, &reference),
                (RunStatus::Ok, RunStatus::Ok) | (RunStatus::Rejected(_), RunStatus::Rejected(_))
            );
            assert!(agree, "twin={twin:?} reference={reference:?}");
        }
    }

    #[test]
    fn seeded_bug_reached_only_when_enabled() {
        let mut attrs = PathAttrs {
            as_path: AsPath::sequence([65002]),
            next_hop: Ipv4Addr(0x0A000002),
            ..Default::default()
        };
        attrs.unknown.push(dice_bgp::RawAttr {
            flags: dice_bgp::attrs::flags::OPTIONAL | dice_bgp::attrs::flags::TRANSITIVE,
            code: 0xF7,
            value: vec![0xAA; 0x95],
        });
        let bytes = encode(&Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![net("10.0.0.0/8")],
        }));

        let mut benign = SymbolicUpdateHandler::new(config_with_peer(), NodeId(2));
        assert_eq!(run_concrete(&mut benign, &bytes), RunStatus::Ok);

        let mut buggy_cfg = config_with_peer();
        buggy_cfg.bugs.attr_overflow_crash = true;
        let mut buggy = SymbolicUpdateHandler::new(buggy_cfg, NodeId(2));
        assert!(matches!(
            run_concrete(&mut buggy, &bytes),
            RunStatus::Crash(_)
        ));
    }

    #[test]
    fn config_complexity_grows_constraints() {
        // The same input produces more recorded constraints under a more
        // complex configuration — the paper's "code and configuration"
        // claim in miniature.
        use dice_bgp::policy::{Match, PrefixFilter, Rule};
        let bytes = valid_update(&["10.0.0.0/8"]);

        let simple = config_with_peer();
        let mut h1 = SymbolicUpdateHandler::new(simple, NodeId(2));
        let (_, len_simple) = run_symbolic(&mut h1, &bytes);

        let mut rich = config_with_peer();
        let mut rules = Vec::new();
        for i in 0..6u16 {
            rules.push(Rule {
                matches: vec![
                    Match::PrefixIn(vec![PrefixFilter::or_longer(net(&format!(
                        "{}.0.0.0/8",
                        20 + i
                    )))]),
                    Match::AsPathContains(Asn(64100 + i)),
                ],
                actions: vec![],
                verdict: None,
            });
        }
        rich = rich.with_policy(dice_bgp::Policy {
            name: "rich".into(),
            rules,
            default: dice_bgp::Verdict::Accept,
        });
        rich.neighbors[0].import = "rich".into();
        let mut h2 = SymbolicUpdateHandler::new(rich, NodeId(2));
        let (_, len_rich) = run_symbolic(&mut h2, &bytes);

        assert!(
            len_rich > len_simple,
            "rich config must add constraints: {len_rich} vs {len_simple}"
        );
    }

    #[test]
    fn withdraw_only_accepted() {
        let mut h = SymbolicUpdateHandler::new(config_with_peer(), NodeId(2));
        let bytes = encode(&Message::Update(UpdateMsg {
            withdrawn: vec![net("10.0.0.0/8")],
            attrs: None,
            nlri: vec![],
        }));
        assert_eq!(run_concrete(&mut h, &bytes), RunStatus::Ok);
    }

    #[test]
    fn preference_oracle_branches() {
        let mut h = SymbolicUpdateHandler::new(config_with_peer(), NodeId(2));
        let bytes = valid_update(&["10.0.0.0/8"]);
        let mask = crate::symmark::mark_update(&bytes);
        let mut ctx = ConcolicCtx::new(SymInput::with_mask(bytes.clone(), mask));
        let st = h.run(&mut ctx);
        assert_eq!(st, RunStatus::Ok);
        // The last recorded branch is the preference oracle.
        let last = ctx.path().last().unwrap();
        assert_eq!(last.site, SiteId(sites::PREFERENCE_ORACLE));
        assert_eq!(h.became_best, 1, "default oracle says preferred");
    }
}
