//! The narrow information-sharing interface (paper §2, last challenge).
//!
//! Federated domains will not reveal RIBs, policies or configuration. What
//! crosses domain boundaries is restricted to:
//!
//! 1. **Salted attestations** of prefix ownership — `SHA-256(salt ‖ prefix ‖
//!    origin AS)`. A checker holding a route can test *membership* ("is this
//!    (prefix, origin) pair attested?") but cannot enumerate what a domain
//!    owns.
//! 2. **Local verdicts** — the boolean outcome of a check run inside the
//!    domain, with a coarse detail string; never the state that produced it.
//!
//! This mirrors DiCE's design point that property checking must work
//! without unrestricted access to remote node state.

use crate::hash::{hex, sha256, Sha256};
use dice_bgp::{Asn, Ipv4Net};
use dice_netsim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Registry of salted ownership attestations, shared among participating
/// domains (e.g. seeded from an IRR-like registry).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttestationRegistry {
    salt: [u8; 16],
    digests: BTreeSet<[u8; 32]>,
}

impl AttestationRegistry {
    /// A registry with the given shared salt.
    pub fn new(salt: [u8; 16]) -> Self {
        AttestationRegistry {
            salt,
            digests: BTreeSet::new(),
        }
    }

    /// A registry with a salt derived from a seed (for deterministic tests).
    pub fn with_seed(seed: u64) -> Self {
        let d = sha256(&seed.to_be_bytes());
        let mut salt = [0u8; 16];
        salt.copy_from_slice(&d[..16]);
        Self::new(salt)
    }

    fn digest(&self, prefix: &Ipv4Net, origin: Asn) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.salt);
        h.update(&prefix.addr().to_be_bytes());
        h.update(&[prefix.len()]);
        h.update(&origin.0.to_be_bytes());
        h.finalize()
    }

    /// A domain attests that `origin` legitimately originates `prefix`.
    /// Only the digest enters the registry.
    pub fn attest(&mut self, prefix: &Ipv4Net, origin: Asn) {
        let d = self.digest(prefix, origin);
        self.digests.insert(d);
    }

    /// Membership test used by the origin-authority checker.
    pub fn is_attested(&self, prefix: &Ipv4Net, origin: Asn) -> bool {
        self.digests.contains(&self.digest(prefix, origin))
    }

    /// Number of attestations.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }
}

/// The outcome of one local check, as shared across domain boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalVerdict {
    /// The node that ran the check.
    pub node: NodeId,
    /// Checker identifier.
    pub checker: String,
    /// Whether the property held locally.
    pub ok: bool,
    /// Coarse, non-confidential detail (prefix and class only).
    pub detail: String,
}

impl LocalVerdict {
    /// A passing verdict.
    pub fn pass(node: NodeId, checker: &str) -> Self {
        LocalVerdict {
            node,
            checker: checker.to_string(),
            ok: true,
            detail: String::new(),
        }
    }

    /// A failing verdict with a coarse detail string.
    pub fn fail(node: NodeId, checker: &str, detail: impl Into<String>) -> Self {
        LocalVerdict {
            node,
            checker: checker.to_string(),
            ok: false,
            detail: detail.into(),
        }
    }
}

/// Render a digest for reports (first 8 bytes).
pub fn short_digest(d: &[u8; 32]) -> String {
    hex(d)[..16].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::net;

    #[test]
    fn attestation_membership() {
        let mut reg = AttestationRegistry::with_seed(42);
        reg.attest(&net("10.0.0.0/16"), Asn(65001));
        assert!(reg.is_attested(&net("10.0.0.0/16"), Asn(65001)));
        assert!(
            !reg.is_attested(&net("10.0.0.0/16"), Asn(65002)),
            "wrong origin"
        );
        assert!(
            !reg.is_attested(&net("10.0.0.0/24"), Asn(65001)),
            "different prefix"
        );
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn salt_separates_registries() {
        let mut a = AttestationRegistry::with_seed(1);
        let mut b = AttestationRegistry::with_seed(2);
        a.attest(&net("10.0.0.0/8"), Asn(1));
        b.attest(&net("10.0.0.0/8"), Asn(1));
        // Digest sets differ even for the same fact (salted).
        let fact_in_a = a.digest(&net("10.0.0.0/8"), Asn(1));
        let fact_in_b = b.digest(&net("10.0.0.0/8"), Asn(1));
        assert_ne!(fact_in_a, fact_in_b);
    }

    #[test]
    fn digests_do_not_reveal_prefix() {
        // The registry stores only 32-byte digests: check that nothing in
        // the serialized form contains the raw prefix bytes in sequence.
        let mut reg = AttestationRegistry::with_seed(7);
        reg.attest(&net("203.0.113.0/24"), Asn(64500));
        let json = serde_json::to_string(&reg).unwrap();
        // 203.0.113.0 encoded bytes as a JSON array fragment.
        assert!(!json.contains("203,0,113"), "raw prefix must not appear");
    }

    #[test]
    fn verdict_constructors() {
        let p = LocalVerdict::pass(NodeId(3), "oscillation");
        assert!(p.ok);
        let f = LocalVerdict::fail(NodeId(3), "origin", "hijack 10.0.0.0/24");
        assert!(!f.ok);
        assert_eq!(f.node, NodeId(3));
        assert!(f.detail.contains("10.0.0.0/24"));
    }
}
