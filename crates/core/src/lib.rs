//! # dice-core — DiCE: online testing of federated and heterogeneous
//! distributed systems
//!
//! Reproduction of Canini et al., SIGCOMM'11 (demo) / USENIX ATC'11. DiCE
//! continuously checks a *live* federated system — here, BGP inter-domain
//! routing — by exploring its behavior from the current state, in isolation
//! from the deployment:
//!
//! 1. **Consistent shadow snapshots** ([`snapshot`]): in-band
//!    Chandy–Lamport checkpoints of node state and channel contents, taken
//!    while the system keeps running.
//! 2. **Concolic exploration** ([`handler`], [`symmark`], [`grammar`]): the
//!    explorer node's UPDATE handler runs as an instrumented twin over
//!    symbolic message bytes (NLRI, path attributes) and a symbolic
//!    route-preference condition; the `dice-concolic` engine negates path
//!    constraints to systematically cover handler paths — through both code
//!    *and* interpreted configuration. Grammar-based fuzzing supplies
//!    valid-by-construction seed messages.
//! 3. **Property checking** ([`check`]): clones of the snapshot are
//!    subjected to each interesting input; checkers detect the paper's
//!    three fault classes — programming errors (crashes), policy conflicts
//!    (oscillation / divergence), operator mistakes (unattested origins).
//! 4. **The narrow information-sharing interface** ([`interface`]): only
//!    salted SHA-256 ownership attestations and local verdicts cross domain
//!    boundaries; RIBs, policies and configuration stay private.
//!
//! The runtime is protocol-agnostic: everything it needs from a node under
//! test is captured by the [`sut`] seam ([`sut::ExplorableNode`] for
//! exploration, [`sut::CheckView`] for checking), resolved through a
//! [`sut::SutCatalog`] of probes. Two real protocols implement it: the BGP
//! adapter ([`bgp_sut`]) and the epidemic pub/sub adapter ([`gossip_sut`]
//! over `dice-gossip`); heterogeneous federations register extra probes.
//!
//! Two drivers sit on top: [`explorer::DiceRunner`] runs rounds for one
//! fixed `(explorer, inject peer)` pair, and [`campaign::Campaign`] sweeps
//! every eligible pair across the federation — one `Arc`-shared snapshot
//! per explorer, whole rounds run concurrently (`pair_workers`) on a
//! worker pool shared between round- and validation-level tasks, with the
//! aggregated [`campaign::CampaignReport`] byte-identical for any
//! parallelism level modulo wall-clock fields. [`scenarios`] provides the
//! paper's demo systems (including the 27-router Figure 1 topology).
//!
//! ## Quickstart
//!
//! ```
//! use dice_core::{scenarios, DiceConfig, DiceRunner};
//! use dice_netsim::{NodeId, SimTime};
//!
//! // A live 3-router system whose middle node carries a seeded parser bug.
//! let mut live = scenarios::buggy_parser_scenario(7);
//! live.run_until(SimTime::from_nanos(10_000_000_000));
//!
//! let mut cfg = DiceConfig::new(NodeId(1), NodeId(0));
//! cfg.concolic_executions = 192;
//! let mut dice = DiceRunner::from_sim(cfg, &live);
//! let report = dice.run_round(&mut live).unwrap();
//! assert!(!report.faults.is_empty()); // the seeded bug is found online
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp_sut;
pub mod campaign;
pub mod check;
mod executor;
pub mod explorer;
pub mod gossip_sut;
pub mod grammar;
pub mod handler;
pub mod hash;
pub mod interface;
mod pool;
pub mod scenarios;
pub mod snapshot;
pub mod sut;
pub mod symmark;
mod sync;

pub use campaign::{
    Campaign, CampaignConfig, CampaignReport, ClassDetection, ExplorerSummary, PerfCounters,
};
pub use check::{
    build_registry, default_checkers, flips_baseline, run_checkers, CheckContext, CheckReport,
    Checker, ConvergenceChecker, CrashChecker, FaultClass, FaultReport, OriginAuthorityChecker,
    OscillationChecker,
};
#[doc(hidden)]
pub use executor::test_support as executor_test_support;
pub use explorer::{DiceConfig, DiceRunner, RoundReport};
pub use gossip_sut::SymbolicGossipHandler;
pub use grammar::{GrammarConfig, UpdateGrammar};
pub use handler::SymbolicUpdateHandler;
pub use hash::{sha256, Sha256};
pub use interface::{AttestationRegistry, LocalVerdict};
pub use snapshot::{take_consistent_snapshot, take_instant_snapshot, SnapshotMetrics};
pub use sut::{CheckView, ExplorableNode, ExplorationPlan, SessionHealth, SutCatalog, SutProbe};
pub use symmark::{mark_nlri_only, mark_none, mark_update};
#[cfg(feature = "race-audit")]
pub use sync::race_audit;
