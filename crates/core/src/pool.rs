//! Per-worker clone pools for system-wide validation.
//!
//! Phase 3 used to pay a full [`Simulator::from_shadow`] per validated
//! input: re-cloning the topology, reallocating every channel queue, the
//! event heap and the trace ring, and deep-copying node checkpoints. With
//! copy-on-write snapshots the node copies are already lazy; the pool
//! removes the remaining per-input construction cost by letting each
//! worker keep finished simulators and rebind them to the next input with
//! [`Simulator::reset_from_shadow`] — which reuses every allocation and
//! is state-for-state identical to a fresh clone (netsim unit-tested), so
//! pooling cannot perturb the report. `pool_size = 0` disables reuse and
//! forces the fresh-clone path (the determinism tests compare both).
//!
//! Pools are strictly worker-local (no sharing, no locks); hit/miss
//! counters fold into [`CampaignReport::perf`] at the end of a campaign
//! and are zeroed by [`CampaignReport::normalized`] — which worker's pool
//! serves an input is schedule-dependent even though the input's result
//! is not.
//!
//! [`CampaignReport::perf`]: crate::campaign::CampaignReport::perf
//! [`CampaignReport::normalized`]: crate::campaign::CampaignReport::normalized
//! [`Simulator::from_shadow`]: dice_netsim::Simulator::from_shadow
//! [`Simulator::reset_from_shadow`]: dice_netsim::Simulator::reset_from_shadow

use dice_netsim::{ShadowSnapshot, Simulator, Topology, WireStats};

/// A worker-local pool of reusable validation simulators.
///
/// All simulators checked in must have been built over the same topology
/// as the shadows they are later reset to — guaranteed here because a
/// pool never outlives one campaign/round execution, which runs over a
/// single topology.
#[derive(Default)]
pub(crate) struct ClonePool {
    free: Vec<Simulator>,
    /// Acquisitions served by resetting a pooled simulator.
    pub(crate) hits: u64,
    /// Acquisitions that had to build a fresh simulator.
    pub(crate) misses: u64,
    /// Wire-path counters drained from every released simulator.
    pub(crate) wire: WireStats,
}

impl ClonePool {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Check a simulator out, bound to `shadow` with `seed`: a pooled one
    /// reset in place when available (and `limit > 0`), a fresh
    /// `from_shadow` clone otherwise.
    pub(crate) fn acquire(
        &mut self,
        limit: usize,
        shadow: &ShadowSnapshot,
        topo: &Topology,
        seed: u64,
    ) -> Simulator {
        if limit > 0 {
            if let Some(mut sim) = self.free.pop() {
                sim.reset_from_shadow(shadow, seed);
                self.hits += 1;
                return sim;
            }
        }
        self.misses += 1;
        Simulator::from_shadow(shadow, topo, seed)
    }

    /// Return a simulator for reuse; dropped when the pool is full (or
    /// pooling is disabled via `limit = 0`). The simulator's wire-path
    /// counters are drained into the pool either way, so stats survive
    /// even when the simulator itself does not.
    pub(crate) fn release(&mut self, limit: usize, mut sim: Simulator) {
        self.wire.absorb(sim.take_wire_stats());
        if self.free.len() < limit {
            self.free.push(sim);
        }
    }
}

/// Aggregated pool counters returned by the campaign executor.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PoolStats {
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) wire: WireStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use dice_netsim::{NodeId, SimDuration, SimTime};

    #[test]
    fn pool_reuses_up_to_limit_and_respects_zero() {
        let mut sim = scenarios::healthy_line(3, 5);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let shadow = sim.instant_snapshot();
        let topo = sim.topology().clone();

        let mut pool = ClonePool::new();
        let a = pool.acquire(1, &shadow, &topo, 1);
        assert_eq!((pool.hits, pool.misses), (0, 1));
        pool.release(1, a);
        let b = pool.acquire(1, &shadow, &topo, 2);
        assert_eq!((pool.hits, pool.misses), (1, 1), "second acquire is a hit");
        pool.release(1, b);

        // Disabled pool: always fresh, never retains.
        let mut off = ClonePool::new();
        let c = off.acquire(0, &shadow, &topo, 3);
        off.release(0, c);
        let _d = off.acquire(0, &shadow, &topo, 4);
        assert_eq!((off.hits, off.misses), (0, 2));
    }

    #[test]
    fn pooled_reset_matches_fresh_clone_against_a_delta_chain() {
        // A pooled simulator rebound (`reset_from_shadow`) to the newest
        // link of a delta-snapshot chain — taken after a node left
        // (crashed) and rejoined on the live system — must match a fresh
        // `from_shadow` clone state-for-state.
        let mut live = scenarios::healthy_line(4, 11);
        live.run_until(SimTime::from_nanos(12_000_000_000));
        let (snap1, _) = crate::snapshot::take_consistent_snapshot(
            &mut live,
            NodeId(0),
            SimDuration::from_secs(5),
        )
        .expect("first cut");

        // Churn node 3: leave, rejoin, re-converge, then cut again. The
        // second cut extends the delta chain started by the first.
        live.inject_node_crash(NodeId(3));
        live.run_until(live.now() + SimDuration::from_secs(2));
        live.inject_node_restart(NodeId(3));
        live.run_until(live.now() + SimDuration::from_secs(10));
        let (snap2, _) = crate::snapshot::take_consistent_snapshot(
            &mut live,
            NodeId(0),
            SimDuration::from_secs(5),
        )
        .expect("post-churn cut");
        let topo = live.topology().clone();

        let drive = |sim: &mut Simulator| {
            sim.run_until(sim.now() + SimDuration::from_secs(5));
        };
        let mut fresh = Simulator::from_shadow(&snap2, &topo, 7);
        drive(&mut fresh);

        let mut pool = ClonePool::new();
        let warm = pool.acquire(1, &snap1, &topo, 3);
        pool.release(1, warm);
        let mut pooled = pool.acquire(1, &snap2, &topo, 7);
        assert_eq!(pool.hits, 1, "second acquisition must reuse the clone");
        drive(&mut pooled);

        assert_eq!(fresh.now(), pooled.now());
        assert_eq!(fresh.trace().stats(), pooled.trace().stats());
        for i in 0..4u32 {
            let a = crate::bgp_sut::as_bgp(fresh.node(NodeId(i))).expect("bgp node");
            let b = crate::bgp_sut::as_bgp(pooled.node(NodeId(i))).expect("bgp node");
            assert_eq!(
                a.loc_rib().total_flips(),
                b.loc_rib().total_flips(),
                "node {i} flip history diverges"
            );
            for j in 0..4u32 {
                let p = scenarios::prefix_of(j);
                assert_eq!(
                    a.loc_rib().best(&p).is_some(),
                    b.loc_rib().best(&p).is_some(),
                    "node {i} best route for prefix {j} diverges"
                );
            }
        }
    }
}
