//! Ready-made systems for the paper's experiments: the three fault
//! scenarios, a healthy baseline, the 27-router Internet-like demo of
//! Figure 1 with Gao–Rexford policies, and the gossip/mixed federations
//! that exercise the heterogeneity claim with two real protocols.

use dice_bgp::policy::gao_rexford;
use dice_bgp::{
    net, Asn, BgpRouter, Ipv4Net, Match, Policy, RouterConfig, RouterId, Rule, Verdict,
};
use dice_gossip::{GossipConfig, GossipNode, TopicId};
use dice_netsim::{LinkParams, NodeId, SimDuration, Simulator, Topology};

/// The ASN hosted on simulator node `i` (`AS65000 + i`, wrapping in u16
/// space so 1k–10k-node topologies stay buildable; ASNs repeat past
/// ~65535 nodes, which BGP tolerates since sessions are keyed by NodeId).
pub fn asn_of(i: u32) -> Asn {
    Asn(65000u16.wrapping_add(i as u16))
}

/// The prefix originated by node `i` in generated systems: `10.<i>.0.0/16`
/// for `i < 256`, wrapping through the address space beyond that (distinct
/// up to 65536 originators, which covers every supported topology size).
pub fn prefix_of(i: u32) -> Ipv4Net {
    Ipv4Net::new(0x0A00_0000u32.wrapping_add(i.wrapping_mul(0x1_0000)), 16)
}

fn base_config(i: u32) -> RouterConfig {
    RouterConfig::minimal(asn_of(i), RouterId(0x0A00_0001 + i))
}

/// Build a full BGP system over `topo`: every node originates its
/// [`prefix_of`] prefix and applies Gao–Rexford import/export policies
/// derived from the edge relationships (Unlabeled edges get accept-all).
pub fn build_system(topo: &Topology, seed: u64) -> Simulator {
    build_system_with_originators(topo, topo.len(), seed)
}

/// [`build_system`] with only the first `originators` nodes originating a
/// prefix. Bounds total routing state on 1k–10k-node internet topologies,
/// where `n` originators would mean `n²` RIB entries and convergence that
/// dwarfs the campaign being measured. Every node still runs full
/// Gao–Rexford policies and propagates the originated prefixes.
pub fn build_system_with_originators(topo: &Topology, originators: usize, seed: u64) -> Simulator {
    let mut sim = Simulator::new(topo.clone(), seed);
    for n in topo.node_ids() {
        let mut cfg = base_config(n.0);
        if (n.0 as usize) < originators {
            cfg = cfg.with_network(prefix_of(n.0));
        }
        for m in topo.neighbors(n) {
            let role = topo.relationship(n, m).expect("adjacent");
            let import = gao_rexford::import_policy(asn_of(n.0), role);
            let export = gao_rexford::export_policy(asn_of(n.0), role);
            let import_name = format!("imp-{}", m.0);
            let export_name = format!("exp-{}", m.0);
            cfg = cfg
                .with_policy(Policy {
                    name: import_name.clone(),
                    ..import
                })
                .with_policy(Policy {
                    name: export_name.clone(),
                    ..export
                });
            cfg = cfg.with_neighbor(m, asn_of(m.0), import_name, export_name);
        }
        sim.set_node(n, Box::new(BgpRouter::new(cfg)));
    }
    sim.start();
    sim
}

/// The paper's Figure 1 system: 27 BGP routers in an Internet-like
/// topology, Gao–Rexford policies, one originated prefix per router.
pub fn demo27_system(seed: u64) -> Simulator {
    build_system(&Topology::demo27(), seed)
}

/// A healthy line of `n` routers with accept-all policies; node `i`
/// originates [`prefix_of`]`(i)`.
pub fn healthy_line(n: usize, seed: u64) -> Simulator {
    let topo = Topology::line(n, LinkParams::fixed(SimDuration::from_millis(5)));
    let mut sim = Simulator::new(topo.clone(), seed);
    for i in topo.node_ids() {
        let mut cfg = base_config(i.0).with_network(prefix_of(i.0));
        for m in topo.neighbors(i) {
            cfg = cfg.with_neighbor(m, asn_of(m.0), "all", "all");
        }
        sim.set_node(i, Box::new(BgpRouter::new(cfg)));
    }
    sim.start();
    sim
}

/// **Programming-error scenario** (paper fault class 1): a 3-router line
/// where the middle router runs the build with the seeded BIRD-style
/// attribute-length defect. DiCE's concolic exploration must synthesize the
/// unknown-attribute message that trips it.
pub fn buggy_parser_scenario(seed: u64) -> Simulator {
    let topo = Topology::line(3, LinkParams::fixed(SimDuration::from_millis(5)));
    let mut sim = Simulator::new(topo.clone(), seed);
    for i in topo.node_ids() {
        let mut cfg = base_config(i.0).with_network(prefix_of(i.0));
        for m in topo.neighbors(i) {
            cfg = cfg.with_neighbor(m, asn_of(m.0), "all", "all");
        }
        if i.0 == 1 {
            cfg.bugs.attr_overflow_crash = true;
        }
        sim.set_node(i, Box::new(BgpRouter::new(cfg)));
    }
    sim.start();
    sim
}

/// **Operator-mistake scenario** (fault class 3): 0 – 1 – 2 line; node 0
/// legitimately owns `10.10.0.0/16`. Call [`apply_hijack`] to make node 2
/// announce a covered `/24` it does not own.
pub fn hijack_scenario(seed: u64) -> Simulator {
    let topo = Topology::line(3, LinkParams::fixed(SimDuration::from_millis(5)));
    let mut sim = Simulator::new(topo.clone(), seed);
    for i in topo.node_ids() {
        let mut cfg = base_config(i.0);
        if i.0 == 0 {
            cfg = cfg.with_network(net("10.10.0.0/16"));
        }
        for m in topo.neighbors(i) {
            cfg = cfg.with_neighbor(m, asn_of(m.0), "all", "all");
        }
        sim.set_node(i, Box::new(BgpRouter::new(cfg)));
    }
    sim.start();
    sim
}

/// The hijacked prefix announced by [`apply_hijack`].
pub fn hijack_prefix() -> Ipv4Net {
    net("10.10.0.0/24")
}

/// The operator mistake: node 2 starts originating [`hijack_prefix`]
/// without owning it (a more-specific hijack of node 0's block).
pub fn apply_hijack(sim: &mut Simulator) {
    sim.invoke_node(NodeId(2), |node, api| {
        let r = crate::bgp_sut::as_bgp_mut(node).expect("node 2 is a router");
        r.announce_network(hijack_prefix(), false, api);
    });
}

/// **Policy-conflict scenario** (fault class 2): Griffin's BAD GADGET.
///
/// Node 0 originates a prefix; ring nodes 1, 2, 3 each prefer the route
/// through their clockwise ring neighbor (LOCAL_PREF 200, accepted only
/// when the path has ≤ 2 hops) over the direct route (LOCAL_PREF 100).
/// No stable routing exists, so best routes oscillate forever.
pub fn bad_gadget_scenario(seed: u64) -> Simulator {
    let mut topo = Topology::with_nodes(4);
    let lp = || LinkParams::fixed(SimDuration::from_millis(10));
    for ring in 1..=3u32 {
        topo.add_edge(
            NodeId(0),
            NodeId(ring),
            lp(),
            dice_netsim::Relationship::Unlabeled,
        );
    }
    topo.add_edge(
        NodeId(1),
        NodeId(2),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );
    topo.add_edge(
        NodeId(2),
        NodeId(3),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );
    topo.add_edge(
        NodeId(3),
        NodeId(1),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );

    let gadget_prefix = prefix_of(0);
    let mut sim = Simulator::new(topo.clone(), seed);

    // Center: originates the contested prefix, accept-all.
    let mut cfg0 = base_config(0).with_network(gadget_prefix);
    for m in topo.neighbors(NodeId(0)) {
        cfg0 = cfg0.with_neighbor(m, asn_of(m.0), "all", "all");
    }
    sim.set_node(NodeId(0), Box::new(BgpRouter::new(cfg0)));

    // Ring node i prefers the path via its clockwise neighbor succ(i).
    let succ = |i: u32| -> u32 {
        match i {
            1 => 2,
            2 => 3,
            3 => 1,
            _ => unreachable!(),
        }
    };
    for i in 1..=3u32 {
        let mut cfg = base_config(i).with_network(prefix_of(i));
        // From the center: acceptable at low preference.
        let from_center = Policy {
            name: "from-center".into(),
            rules: vec![Rule {
                matches: vec![Match::Any],
                actions: vec![dice_bgp::Action::SetLocalPref(100)],
                verdict: Some(Verdict::Accept),
            }],
            default: Verdict::Accept,
        };
        // From the preferred ring neighbor: high preference, but only the
        // two-hop path (succ, 0); anything longer is unusable.
        let from_ring = Policy {
            name: "from-ring".into(),
            rules: vec![
                Rule {
                    matches: vec![Match::AsPathLenAtMost(2)],
                    actions: vec![dice_bgp::Action::SetLocalPref(200)],
                    verdict: Some(Verdict::Accept),
                },
                Rule::reject(vec![Match::Any]),
            ],
            default: Verdict::Reject,
        };
        cfg = cfg.with_policy(from_center).with_policy(from_ring);
        for m in topo.neighbors(NodeId(i)) {
            let import = if m.0 == succ(i) {
                "from-ring"
            } else if m.0 == 0 {
                "from-center"
            } else {
                // The counterclockwise neighbor's routes are unusable but
                // harmless; reuse the ring filter (it only admits 2-hop
                // paths at high preference — the gadget still has no
                // stable solution).
                "from-ring"
            };
            cfg = cfg.with_neighbor(m, asn_of(m.0), import, "all");
        }
        cfg = cfg.with_policy(Policy::accept_all("all"));
        sim.set_node(NodeId(i), Box::new(BgpRouter::new(cfg)));
    }
    sim.start();
    sim
}

/// The contested prefix of the bad gadget.
pub fn gadget_prefix() -> Ipv4Net {
    prefix_of(0)
}

// ---------------------------------------------------------------------------
// Gossip and mixed-protocol federations
// ---------------------------------------------------------------------------

/// The topic owned by gossip node `i` in generated systems.
pub fn topic_of(i: u32) -> TopicId {
    i as TopicId
}

/// The gossip identity ("origin") hosted on simulator node `i`.
pub fn gossip_origin_of(i: u32) -> u16 {
    61000 + i as u16
}

fn gossip_config(
    i: u32,
    peers: &[NodeId],
    topics: impl IntoIterator<Item = TopicId>,
) -> GossipConfig {
    let mut cfg = GossipConfig::new(gossip_origin_of(i)).publish(topic_of(i));
    for &p in peers {
        cfg = cfg.with_peer(p);
    }
    for t in topics {
        cfg = cfg.subscribe(t);
    }
    cfg
}

/// A full mesh of `n` gossip nodes: node `i` publishes [`topic_of`]`(i)`
/// and subscribes to every topic — the gossip analogue of
/// [`healthy_line`].
pub fn gossip_mesh(n: usize, seed: u64) -> Simulator {
    let topo = Topology::full_mesh(n, LinkParams::fixed(SimDuration::from_millis(5)));
    let mut sim = Simulator::new(topo.clone(), seed);
    for i in topo.node_ids() {
        let peers: Vec<NodeId> = topo.neighbors(i);
        let cfg = gossip_config(i.0, &peers, (0..n as u32).map(topic_of));
        sim.set_node(i, Box::new(GossipNode::new(cfg)));
    }
    sim.start();
    sim
}

/// **Gossip programming-error scenario**: a gossip mesh whose node 1 runs
/// the build with the seeded digest-count defect. DiCE's concolic layer
/// must flip a rumor seed into the digest arm and push the count byte over
/// the bug threshold — the gossip analogue of [`buggy_parser_scenario`].
pub fn buggy_gossip_scenario(n: usize, seed: u64) -> Simulator {
    let topo = Topology::full_mesh(n, LinkParams::fixed(SimDuration::from_millis(5)));
    let mut sim = Simulator::new(topo.clone(), seed);
    for i in topo.node_ids() {
        let peers: Vec<NodeId> = topo.neighbors(i);
        let mut cfg = gossip_config(i.0, &peers, (0..n as u32).map(topic_of));
        if i.0 == 1 {
            cfg.bugs.digest_count_overflow = true;
        }
        sim.set_node(i, Box::new(GossipNode::new(cfg)));
    }
    sim.start();
    sim
}

/// **Mixed federation**: BGP routers 0 – 1 peer over a line; gossip nodes
/// 2, 3, 4 form a triangle; an administrative link 1 – 2 bridges the two
/// domains so one Chandy–Lamport snapshot spans both protocols. Both
/// sides speak their own wire format for real — the first end-to-end
/// instantiation of the paper's *heterogeneous federation* claim.
///
/// Set `buggy_gossip` to seed the digest-count defect on gossip node 2
/// (the bridge node).
pub fn mixed_bgp_gossip(seed: u64, buggy_gossip: bool) -> Simulator {
    mixed_federation(seed, buggy_gossip, false)
}

/// **Nemesis federation**: [`mixed_bgp_gossip`] with *both* seeded defect
/// classes armed — BGP router 1 (the bridge-side router) runs the
/// attribute-length parser defect and gossip node 2 (the bridge node) the
/// digest-count overflow. One campaign over this system must surface both
/// fault classes; the `exp_faults` nemesis bench sweeps it under link loss
/// and dynamics schedules.
pub fn nemesis_federation(seed: u64) -> Simulator {
    mixed_federation(seed, true, true)
}

fn mixed_federation(seed: u64, buggy_gossip: bool, buggy_bgp: bool) -> Simulator {
    let mut topo = Topology::with_nodes(5);
    let lp = || LinkParams::fixed(SimDuration::from_millis(5));
    topo.add_edge(
        NodeId(0),
        NodeId(1),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );
    topo.add_edge(
        NodeId(1),
        NodeId(2),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );
    topo.add_edge(
        NodeId(2),
        NodeId(3),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );
    topo.add_edge(
        NodeId(3),
        NodeId(4),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );
    topo.add_edge(
        NodeId(4),
        NodeId(2),
        lp(),
        dice_netsim::Relationship::Unlabeled,
    );
    let mut sim = Simulator::new(topo, seed);

    // BGP side: 0 and 1 peer with each other only.
    for i in 0..2u32 {
        let peer = 1 - i;
        let mut cfg = base_config(i).with_network(prefix_of(i)).with_neighbor(
            NodeId(peer),
            asn_of(peer),
            "all",
            "all",
        );
        if buggy_bgp && i == 1 {
            cfg.bugs.attr_overflow_crash = true;
        }
        sim.set_node(NodeId(i), Box::new(BgpRouter::new(cfg)));
    }

    // Gossip side: triangle 2-3-4, all subscribed to all gossip topics.
    for i in 2..5u32 {
        let peers: Vec<NodeId> = (2..5u32).filter(|&j| j != i).map(NodeId).collect();
        let mut cfg = gossip_config(i, &peers, (2..5u32).map(topic_of));
        if buggy_gossip && i == 2 {
            cfg.bugs.digest_count_overflow = true;
        }
        sim.set_node(NodeId(i), Box::new(GossipNode::new(cfg)));
    }
    sim.start();
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_netsim::SimTime;

    #[test]
    fn healthy_line_converges() {
        let mut sim = healthy_line(4, 1);
        sim.run_until(SimTime::from_nanos(15_000_000_000));
        // Every node knows every prefix.
        for i in 0..4u32 {
            let r = crate::bgp_sut::as_bgp(sim.node(NodeId(i))).unwrap();
            for j in 0..4u32 {
                assert!(
                    r.loc_rib().best(&prefix_of(j)).is_some(),
                    "node {i} missing prefix of {j}"
                );
            }
        }
    }

    #[test]
    fn demo27_converges_and_respects_gao_rexford() {
        let mut sim = demo27_system(4);
        let out = sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(300_000_000_000),
        );
        assert_eq!(
            out,
            dice_netsim::QuietOutcome::Quiescent,
            "demo27 must converge"
        );
        // Spot-check: every stub reaches a tier-1 prefix.
        for stub in 11..27u32 {
            let r = crate::bgp_sut::as_bgp(sim.node(NodeId(stub))).unwrap();
            assert!(
                r.loc_rib().best(&prefix_of(0)).is_some(),
                "stub {stub} cannot reach tier-1 prefix"
            );
        }
        // Valley-free spot check: a tier-1 node must not route to another
        // tier-1's prefix via a customer path that re-ascends ... minimal
        // check: its path to node 1's prefix is at most 2 AS hops (peering).
        let r0 = crate::bgp_sut::as_bgp(sim.node(NodeId(0))).unwrap();
        let best = r0.loc_rib().best(&prefix_of(1)).expect("tier-1 reachable");
        assert!(best.route.attrs.as_path.path_len() <= 2);
    }

    #[test]
    fn bad_gadget_never_converges() {
        let mut sim = bad_gadget_scenario(2);
        let out = sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(120_000_000_000),
        );
        assert_eq!(
            out,
            dice_netsim::QuietOutcome::TimedOut,
            "gadget must keep oscillating"
        );
        // Ring nodes accumulate best-route flips on the contested prefix.
        let mut total = 0;
        for i in 1..=3u32 {
            let r = crate::bgp_sut::as_bgp(sim.node(NodeId(i))).unwrap();
            total += r
                .loc_rib()
                .flips
                .get(&gadget_prefix())
                .copied()
                .unwrap_or(0);
        }
        assert!(total > 20, "expected heavy flapping, saw {total} flips");
    }

    #[test]
    fn hijack_scenario_draws_traffic() {
        let mut sim = hijack_scenario(3);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        apply_hijack(&mut sim);
        sim.run_until(SimTime::from_nanos(25_000_000_000));
        let r1 = crate::bgp_sut::as_bgp(sim.node(NodeId(1))).unwrap();
        let best = r1
            .loc_rib()
            .best(&hijack_prefix())
            .expect("hijack visible at node 1");
        assert_eq!(best.route.attrs.as_path.origin_asn(), Some(asn_of(2)));
    }

    #[test]
    fn gossip_mesh_converges_and_delivers() {
        let mut sim = gossip_mesh(4, 8);
        let out = sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(60_000_000_000),
        );
        assert_eq!(out, dice_netsim::QuietOutcome::Quiescent);
        for i in 0..4u32 {
            let g = crate::gossip_sut::as_gossip(sim.node(NodeId(i))).unwrap();
            assert_eq!(g.seen_count(), 8, "node {i}: 4 topics x 2 rumors");
        }
    }

    #[test]
    fn mixed_federation_runs_both_protocols_for_real() {
        let mut sim = mixed_bgp_gossip(6, false);
        sim.run_until(SimTime::from_nanos(15_000_000_000));
        // BGP side converged routes.
        let r0 = crate::bgp_sut::as_bgp(sim.node(NodeId(0))).unwrap();
        assert!(r0.loc_rib().best(&prefix_of(1)).is_some());
        // Gossip side disseminated rumors.
        let g4 = crate::gossip_sut::as_gossip(sim.node(NodeId(4))).unwrap();
        assert_eq!(g4.seen_count(), 6, "3 topics x 2 rumors");
        // Nobody crashed across the bridge.
        for i in 0..5u32 {
            assert!(sim.crashed(NodeId(i)).is_none());
        }
    }

    #[test]
    fn buggy_gossip_scenario_is_healthy_until_triggered() {
        let mut sim = buggy_gossip_scenario(3, 4);
        sim.run_until(SimTime::from_nanos(15_000_000_000));
        for i in 0..3u32 {
            assert!(sim.crashed(NodeId(i)).is_none());
        }
        let g1 = crate::gossip_sut::as_gossip(sim.node(NodeId(1))).unwrap();
        assert!(g1.config().bugs.digest_count_overflow);
        assert_eq!(
            g1.seen_count(),
            6,
            "dissemination works despite dormant bug"
        );
    }

    #[test]
    fn buggy_parser_scenario_is_healthy_until_triggered() {
        let mut sim = buggy_parser_scenario(4);
        sim.run_until(SimTime::from_nanos(15_000_000_000));
        for i in 0..3u32 {
            assert!(sim.crashed(NodeId(i)).is_none());
        }
        // Regular routing works despite the dormant bug.
        let r2 = crate::bgp_sut::as_bgp(sim.node(NodeId(2))).unwrap();
        assert!(r2.loc_rib().best(&prefix_of(0)).is_some());
    }
}
