//! Snapshot orchestration: drive the in-band Chandy–Lamport protocol to
//! completion and account for its cost (the paper's "lightweight node
//! checkpoints" / low-overhead claim, measured by experiment T2).

use dice_netsim::{NodeId, ShadowSnapshot, SimDuration, SimTime, Simulator, SnapshotProgress};
use serde::{Deserialize, Serialize};

/// Cost accounting for one consistent snapshot.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SnapshotMetrics {
    /// Simulated time from initiation to completion (marker propagation).
    pub sim_duration_nanos: u64,
    /// Host wall-clock time spent (checkpointing + bookkeeping).
    pub wall_micros: u64,
    /// Nodes checkpointed.
    pub nodes: usize,
    /// In-flight messages captured as channel state.
    pub in_flight: usize,
    /// Approximate checkpoint footprint in bytes.
    pub bytes: usize,
}

/// Drive the live simulator until the snapshot initiated at `initiator`
/// completes, or `deadline` of simulated time passes.
///
/// The live system keeps executing while markers propagate — exactly the
/// paper's "operates alongside the deployed system" property.
pub fn take_consistent_snapshot(
    live: &mut Simulator,
    initiator: NodeId,
    deadline: SimDuration,
) -> Result<(ShadowSnapshot, SnapshotMetrics), String> {
    let started = live.now();
    // dice-lint: allow(determinism-zone): snapshot wall cost metric; zeroed by normalized()
    let wall_start = std::time::Instant::now();
    let id = live.start_snapshot(initiator);
    let limit = started + deadline;
    loop {
        match live.poll_snapshot(id) {
            SnapshotProgress::Complete(shadow) => {
                let metrics = SnapshotMetrics {
                    sim_duration_nanos: (live.now() - started).as_nanos(),
                    wall_micros: wall_start.elapsed().as_micros() as u64,
                    nodes: shadow.node_count(),
                    in_flight: shadow.in_flight_count(),
                    bytes: shadow.approx_bytes(),
                };
                return Ok((*shadow, metrics));
            }
            SnapshotProgress::Failed(e) => return Err(e),
            SnapshotProgress::InProgress => {
                if live.now() >= limit {
                    return Err(format!(
                        "snapshot {id:?} did not complete within {deadline}"
                    ));
                }
                // Advance the live system a little and poll again.
                let step = SimDuration::from_millis(5);
                let next = live.now() + step;
                live.run_until(next.min(limit));
            }
        }
    }
}

/// Uncoordinated alternative for the consistency ablation: clone everything
/// instantly with no marker protocol. Cheap but not causally consistent
/// when messages are in flight.
pub fn take_instant_snapshot(live: &mut Simulator) -> (ShadowSnapshot, SnapshotMetrics) {
    // dice-lint: allow(determinism-zone): snapshot wall cost metric; zeroed by normalized()
    let wall_start = std::time::Instant::now();
    let shadow = live.instant_snapshot();
    let metrics = SnapshotMetrics {
        sim_duration_nanos: 0,
        wall_micros: wall_start.elapsed().as_micros() as u64,
        nodes: shadow.node_count(),
        in_flight: shadow.in_flight_count(),
        bytes: shadow.approx_bytes(),
    };
    (shadow, metrics)
}

/// Convenience: run a freshly instantiated clone of `shadow` for a bounded
/// horizon and return it (used by exploration and tests).
pub fn spawn_clone(shadow: &ShadowSnapshot, topo: &dice_netsim::Topology, seed: u64) -> Simulator {
    Simulator::from_shadow(shadow, topo, seed)
}

/// The end of a clone's exploration horizon.
pub fn horizon_end(shadow: &ShadowSnapshot, horizon: SimDuration) -> SimTime {
    shadow.base_time() + horizon
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::{net, Asn, BgpRouter, RouterConfig, RouterId};
    use dice_netsim::{LinkParams, Topology};

    fn bgp_sim() -> Simulator {
        let topo = Topology::line(3, LinkParams::fixed(SimDuration::from_millis(5)));
        let mut sim = Simulator::new(topo, 11);
        for i in 0..3u32 {
            let mut cfg = RouterConfig::minimal(Asn(65000 + i as u16), RouterId(i + 1));
            if i > 0 {
                cfg = cfg.with_neighbor(NodeId(i - 1), Asn(65000 + (i - 1) as u16), "all", "all");
            }
            if i < 2 {
                cfg = cfg.with_neighbor(NodeId(i + 1), Asn(65000 + (i + 1) as u16), "all", "all");
            }
            if i == 0 {
                cfg = cfg.with_network(net("10.0.0.0/8"));
            }
            sim.set_node(NodeId(i), Box::new(BgpRouter::new(cfg)));
        }
        sim.start();
        sim
    }

    #[test]
    fn consistent_snapshot_of_bgp_network() {
        let mut sim = bgp_sim();
        sim.run_until(SimTime::from_nanos(8_000_000_000));
        let (shadow, metrics) =
            take_consistent_snapshot(&mut sim, NodeId(0), SimDuration::from_secs(5))
                .expect("snapshot completes");
        assert_eq!(metrics.nodes, 3);
        assert!(metrics.bytes > 0);
        assert!(
            metrics.sim_duration_nanos > 0,
            "markers take time to propagate"
        );
        // The cloned routers carry the converged RIB.
        let clone = spawn_clone(&shadow, sim.topology(), 1);
        let r2 = crate::bgp_sut::as_bgp(clone.node(NodeId(2))).unwrap();
        assert!(r2.loc_rib().best(&net("10.0.0.0/8")).is_some());
    }

    #[test]
    fn clone_is_isolated_from_live() {
        let mut sim = bgp_sim();
        sim.run_until(SimTime::from_nanos(8_000_000_000));
        let (shadow, _) =
            take_consistent_snapshot(&mut sim, NodeId(0), SimDuration::from_secs(5)).unwrap();
        let live_stats_before = sim.trace().stats();
        let mut clone = spawn_clone(&shadow, sim.topology(), 2);
        // Drive the clone hard; the live system must not observe anything.
        clone.deliver_direct(NodeId(1), NodeId(2), &[0u8; 30]);
        clone.run_until(clone.now() + SimDuration::from_secs(10));
        assert_eq!(sim.trace().stats(), live_stats_before);
    }

    #[test]
    fn instant_snapshot_has_zero_sim_cost() {
        let mut sim = bgp_sim();
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        let (shadow, metrics) = take_instant_snapshot(&mut sim);
        assert_eq!(metrics.sim_duration_nanos, 0);
        assert_eq!(shadow.node_count(), 3);
    }

    #[test]
    fn snapshot_deadline_enforced() {
        let mut sim = bgp_sim();
        sim.run_until(SimTime::from_nanos(2_000_000));
        // Take a link down so a marker can never traverse; with sessions not
        // yet up the snapshot scope may be trivial, so first let sessions rise.
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        sim.inject_link_down(NodeId(1), NodeId(2));
        // Now snapshot from node 0: scope excludes the dead link, so this
        // still completes — the deadline path is exercised by a zero
        // deadline instead.
        let r = take_consistent_snapshot(&mut sim, NodeId(0), SimDuration::ZERO);
        match r {
            Err(e) => assert!(e.contains("did not complete"), "unexpected error: {e}"),
            Ok((shadow, _)) => {
                // Acceptable alternative: the snapshot trivially completed
                // within the same instant (all channels already drained).
                assert!(shadow.node_count() >= 1);
            }
        }
    }
}
