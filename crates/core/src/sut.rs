//! The system-under-test seam: what DiCE needs from a node to test it.
//!
//! The paper's claim is online testing of *federated and heterogeneous*
//! systems, so the runtime must not be welded to one protocol
//! implementation. This module captures the complete contract between
//! `dice-core` and a node implementation as two traits:
//!
//! * [`ExplorableNode`] — everything the exploration pipeline needs:
//!   which peers' inputs can be impersonated, how to build the
//!   instrumented twin plus its seed corpus ([`ExplorationPlan`]), and
//!   which ownership facts the node attests into the shared registry.
//! * [`CheckView`] — the read-only state the property-checker battery
//!   inspects on clones: best-route table, route-flip counters, session
//!   health.
//!
//! Concrete node types are connected through [`SutProbe`] functions
//! collected in a [`SutCatalog`]. A probe inspects a `dyn Node` and, when
//! it recognizes the concrete type, returns it as an [`ExplorableNode`].
//! The BGP adapter in [`crate::bgp_sut`] is the canonical (and, inside
//! `dice-core`, the *only*) place that downcasts to `BgpRouter`; external
//! crates add their own probes with [`SutCatalog::with_probe`] to test
//! heterogeneous federations.

use dice_bgp::{Asn, Ipv4Net};
use dice_concolic::ConcolicProgram;
use dice_netsim::{Node, NodeId, ShadowSnapshot, Simulator};

use crate::interface::AttestationRegistry;

/// Everything phase 2 (concolic exploration) needs for one `(explorer,
/// peer)` pair: the instrumented twin, the symbolic-marking policy, and
/// the seed corpus.
pub struct ExplorationPlan {
    /// The instrumented twin of the node's input handler, run by the
    /// concolic engine over symbolically marked message bytes.
    pub program: Box<dyn ConcolicProgram + Send>,
    /// Which bytes of an input are symbolic (DiCE's marking policy).
    pub marker: fn(&[u8]) -> Vec<bool>,
    /// Valid-by-construction seed inputs (the Oasis "test suite" role).
    pub seeds: Vec<Vec<u8>>,
}

impl core::fmt::Debug for ExplorationPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ExplorationPlan")
            .field("seeds", &self.seeds.len())
            .finish_non_exhaustive()
    }
}

/// Session-health summary exposed to checkers and campaign reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SessionHealth {
    /// Sessions the node is configured to maintain.
    pub configured: usize,
    /// Sessions currently established.
    pub established: usize,
}

/// Checker-visible node state, behind a trait so checkers work on any
/// protocol. All of it is *local* state — nothing here crosses domain
/// boundaries except through [`crate::interface::LocalVerdict`]s.
///
/// The table accessors are visitor-shaped so implementations stream
/// straight from their routing structures — checkers run once per node
/// per validated clone, and materializing intermediate `Vec`s there would
/// be pure allocation churn. Protocols without a routing table simply
/// never call the visitor.
pub trait CheckView {
    /// Visit the per-prefix best-route flip counters (cumulative since
    /// node start).
    fn for_each_route_flip(&self, visit: &mut dyn FnMut(Ipv4Net, u64));

    /// Visit the best-route table as (prefix, origin AS) pairs, with the
    /// origin already resolved (own AS for locally originated routes).
    fn for_each_best_route(&self, visit: &mut dyn FnMut(Ipv4Net, Asn));

    /// Configured vs. established sessions, surfaced per round as
    /// [`RoundReport::explorer_sessions`](crate::explorer::RoundReport::explorer_sessions).
    fn session_health(&self) -> SessionHealth;

    /// Total best-route flips across all prefixes.
    fn total_flips(&self) -> u64 {
        let mut total = 0;
        self.for_each_route_flip(&mut |_, flips| total += flips);
        total
    }
}

/// The complete contract between DiCE and a node implementation under
/// test. One implementation per protocol; `BgpRouter`'s lives in
/// [`crate::bgp_sut`].
pub trait ExplorableNode: Send + Sync {
    /// Short protocol tag used in reports (`"bgp"`, `"monitor"`, ...).
    fn kind(&self) -> &'static str;

    /// Peers whose inputs may be impersonated during exploration (for a
    /// BGP router: its configured neighbors).
    fn injection_peers(&self) -> Vec<NodeId>;

    /// Build the instrumented twin and seed corpus for exploring inputs
    /// that appear to arrive from `peer`.
    ///
    /// `grammar_seeds` is the grammar-generation budget: `0` disables the
    /// grammar layer entirely and the implementation must fall back to a
    /// single fixed minimal seed; for `n >= 1` implementations generate at
    /// least `n` seeds and may add a bounded number of protocol-specific
    /// structural seeds on top (the BGP adapter adds one large-unknown-
    /// attribute message). `seed` derives any generator randomness
    /// deterministically.
    fn exploration_plan(
        &self,
        peer: NodeId,
        grammar_seeds: usize,
        seed: u64,
    ) -> Result<ExplorationPlan, String>;

    /// Publish this node's ownership facts (e.g. `owned` prefixes) into
    /// the shared attestation registry. Only salted digests are stored.
    fn attest(&self, registry: &mut AttestationRegistry);

    /// The read-only state checkers may inspect.
    fn check_view(&self) -> &dyn CheckView;
}

/// A probe inspects a node and, when it recognizes the concrete type,
/// exposes it through the SUT seam. Plain function pointers keep the
/// catalog `Copy`-cheap, `Send + Sync`, and trivially clonable.
pub type SutProbe = fn(&dyn Node) -> Option<&dyn ExplorableNode>;

/// The ordered set of [`SutProbe`]s the runtime uses to recognize nodes.
/// Earlier probes win. The default catalog recognizes every protocol with
/// an in-tree adapter (BGP routers and gossip nodes).
#[derive(Clone)]
pub struct SutCatalog {
    probes: Vec<SutProbe>,
}

impl Default for SutCatalog {
    fn default() -> Self {
        SutCatalog::standard()
    }
}

impl core::fmt::Debug for SutCatalog {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SutCatalog")
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl SutCatalog {
    /// A catalog with no probes; nothing is explorable until probes are
    /// added with [`SutCatalog::with_probe`].
    pub fn empty() -> Self {
        SutCatalog { probes: Vec::new() }
    }

    /// A catalog recognizing [`dice_bgp::BgpRouter`] nodes only.
    pub fn bgp_only() -> Self {
        SutCatalog {
            probes: vec![crate::bgp_sut::probe],
        }
    }

    /// The default catalog: every protocol with an in-tree adapter —
    /// BGP routers ([`crate::bgp_sut`]) and gossip nodes
    /// ([`crate::gossip_sut`]). External protocols chain their probes on
    /// with [`SutCatalog::with_probe`].
    pub fn standard() -> Self {
        SutCatalog {
            probes: vec![crate::bgp_sut::probe, crate::gossip_sut::probe],
        }
    }

    /// Add a probe (tried after the existing ones). Returns `self` for
    /// builder-style chaining.
    pub fn with_probe(mut self, probe: SutProbe) -> Self {
        self.probes.push(probe);
        self
    }

    /// Resolve a node through the probe chain.
    pub fn resolve<'a>(&self, node: &'a dyn Node) -> Option<&'a dyn ExplorableNode> {
        self.probes.iter().find_map(|p| p(node))
    }

    /// Iterate the explorable nodes of a live simulator.
    pub fn explorables<'a>(
        &'a self,
        sim: &'a Simulator,
    ) -> impl Iterator<Item = (NodeId, &'a dyn ExplorableNode)> + 'a {
        sim.topology()
            .node_ids()
            .filter_map(move |id| self.resolve(sim.node(id)).map(|e| (id, e)))
    }

    /// Iterate the explorable nodes captured in a shadow snapshot.
    pub fn shadow_explorables<'a>(
        &'a self,
        shadow: &'a ShadowSnapshot,
    ) -> impl Iterator<Item = (NodeId, &'a dyn ExplorableNode)> + 'a {
        shadow
            .nodes()
            .iter()
            .filter_map(move |(id, node)| self.resolve(node.as_ref()).map(|e| (*id, e)))
    }

    /// Build the shared attestation registry by letting every explorable
    /// node attest its ownership facts (the IRR/RPKI-like out-of-band
    /// step; only digests are stored).
    pub fn build_registry(&self, sim: &Simulator, seed: u64) -> AttestationRegistry {
        let mut registry = AttestationRegistry::with_seed(seed);
        for (_, sut) in self.explorables(sim) {
            sut.attest(&mut registry);
        }
        registry
    }

    /// Every eligible `(explorer, inject_peer)` pair across the
    /// federation, in node order — the sweep domain of a
    /// [`crate::campaign::Campaign`].
    pub fn eligible_pairs(&self, sim: &Simulator) -> Vec<(NodeId, NodeId)> {
        self.explorables(sim)
            .flat_map(|(id, sut)| sut.injection_peers().into_iter().map(move |p| (id, p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn default_catalog_resolves_bgp_routers() {
        let sim = scenarios::healthy_line(3, 5);
        let catalog = SutCatalog::default();
        let found: Vec<_> = catalog.explorables(&sim).collect();
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|(_, e)| e.kind() == "bgp"));
    }

    #[test]
    fn empty_catalog_resolves_nothing() {
        let sim = scenarios::healthy_line(3, 5);
        let catalog = SutCatalog::empty();
        assert_eq!(catalog.explorables(&sim).count(), 0);
        assert!(catalog.eligible_pairs(&sim).is_empty());
    }

    #[test]
    fn eligible_pairs_follow_neighbor_config() {
        let sim = scenarios::healthy_line(3, 5);
        let pairs = SutCatalog::default().eligible_pairs(&sim);
        // Line 0-1-2: ends have one neighbor, the middle node two.
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(pairs.contains(&(NodeId(1), NodeId(0))));
        assert!(pairs.contains(&(NodeId(1), NodeId(2))));
        assert!(pairs.contains(&(NodeId(2), NodeId(1))));
    }

    #[test]
    fn registry_built_through_the_seam() {
        let sim = scenarios::healthy_line(2, 5);
        let reg = SutCatalog::default().build_registry(&sim, 7);
        // Every node owns its generated prefix.
        assert_eq!(reg.len(), 2);
        assert!(reg.is_attested(&scenarios::prefix_of(0), scenarios::asn_of(0)));
        assert!(!reg.is_attested(&scenarios::prefix_of(0), scenarios::asn_of(1)));
    }
}
