//! Symbolic-marking policy for BGP messages (paper §3).
//!
//! DiCE's BIRD integration marks as symbolic: the NLRI region of UPDATE
//! messages (prefixes and mask lengths), and each path attribute's type,
//! length and value fields. The 19-byte message header (marker, total
//! length, type) stays concrete so generated inputs remain well-framed —
//! framing is exercised offline, message *handling* is what online testing
//! targets (insight (ii): focus on state-changing code).

use dice_bgp::wire::HEADER_LEN;

/// Produce the symbolic mask for a BGP message: header concrete, entire
/// body (withdrawn routes, path attributes, NLRI) symbolic.
pub fn mark_update(bytes: &[u8]) -> Vec<bool> {
    let mut mask = vec![false; bytes.len()];
    for m in mask.iter_mut().skip(HEADER_LEN) {
        *m = true;
    }
    mask
}

/// A fully concrete mask (baseline / replay runs).
pub fn mark_none(bytes: &[u8]) -> Vec<bool> {
    vec![false; bytes.len()]
}

/// Mark only the NLRI region symbolic (narrow marking ablation). Falls back
/// to [`mark_update`] when the body cannot be sliced (malformed lengths).
pub fn mark_nlri_only(bytes: &[u8]) -> Vec<bool> {
    let mut mask = vec![false; bytes.len()];
    if bytes.len() < HEADER_LEN + 4 {
        return mask;
    }
    let wlen = u16::from_be_bytes([bytes[HEADER_LEN], bytes[HEADER_LEN + 1]]) as usize;
    let attr_len_pos = HEADER_LEN + 2 + wlen;
    if attr_len_pos + 2 > bytes.len() {
        return mark_update(bytes);
    }
    let alen = u16::from_be_bytes([bytes[attr_len_pos], bytes[attr_len_pos + 1]]) as usize;
    let nlri_start = attr_len_pos + 2 + alen;
    if nlri_start > bytes.len() {
        return mark_update(bytes);
    }
    for m in mask.iter_mut().skip(nlri_start) {
        *m = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::{encode, net, AsPath, Ipv4Addr, Message, PathAttrs, UpdateMsg};

    fn sample_update() -> Vec<u8> {
        let attrs = PathAttrs {
            as_path: AsPath::sequence([65001]),
            next_hop: Ipv4Addr(0x0A000001),
            ..Default::default()
        };
        encode(&Message::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs),
            nlri: vec![net("10.0.0.0/8")],
        }))
    }

    #[test]
    fn header_stays_concrete() {
        let bytes = sample_update();
        let mask = mark_update(&bytes);
        assert_eq!(mask.len(), bytes.len());
        assert!(mask[..HEADER_LEN].iter().all(|&m| !m));
        assert!(mask[HEADER_LEN..].iter().all(|&m| m));
    }

    #[test]
    fn none_mask_is_all_concrete() {
        let bytes = sample_update();
        assert!(mark_none(&bytes).iter().all(|&m| !m));
    }

    #[test]
    fn nlri_only_marks_tail() {
        let bytes = sample_update();
        let mask = mark_nlri_only(&bytes);
        // The NLRI for 10.0.0.0/8 is the last 2 bytes (len byte + 1 byte).
        let n = bytes.len();
        assert!(mask[n - 1] && mask[n - 2]);
        assert!(mask[..n - 2].iter().all(|&m| !m));
    }

    #[test]
    fn nlri_only_handles_short_messages() {
        let mask = mark_nlri_only(&[0xFF; 10]);
        assert!(mask.iter().all(|&m| !m));
    }
}
