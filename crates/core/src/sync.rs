//! Poison-tolerant locking for `dice-core`, plus the optional `race-audit`
//! instrumentation layer.
//!
//! ## Why poison-tolerant (the PR 4 contract, enforced by dice-lint R4)
//!
//! Executor and validation mutexes only guard plain collections (result
//! vectors, the open-batch list, the slot table), so the data is never
//! left in a broken intermediate state by an unwinding worker. Treating
//! poison as fatal used to *mask* the original failure: every surviving
//! worker would raise a secondary "poisoned" panic, aborting the process
//! via double panic or replacing the first worker's own message. Poison-
//! tolerant acquisition lets the survivors drain normally, so the panic
//! `run_rounds` re-raises is the original one. The `lock-hygiene` lint
//! rule keeps every `dice-core` acquisition routed through
//! [`lock_unpoisoned`].
//!
//! ## Race audit (`--features race-audit`)
//!
//! With the feature on, every [`lock_unpoisoned`] acquisition is recorded
//! against a per-thread stack of currently held lock names, building a
//! global order relation "`a` was held while `b` was acquired". The
//! [`race_audit::report`] then flags **lock-order inversions** (both
//! `(a, b)` and `(b, a)` observed — the classic deadlock recipe) and
//! **task-boundary holds** (a lock still held when a `validate_one`
//! validation unit starts or ends — validation units migrate between
//! worker threads via stealing, so a guard held across one pins a lock to
//! a foreign round's schedule). The stress test
//! `crates/core/tests/race_audit_stress.rs` drives a mixed campaign at
//! `pair_workers = 4` and asserts the audit stays clean while the
//! normalized report stays byte-identical to the sequential run. With the
//! feature off everything here compiles to plain poison-tolerant locking
//! with zero overhead.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Guard returned by [`lock_unpoisoned`]: derefs to the guarded data;
/// with `race-audit` on it also pops the thread's held-lock stack when
/// dropped.
pub(crate) struct Guard<'a, T> {
    inner: MutexGuard<'a, T>,
    #[cfg(feature = "race-audit")]
    name: &'static str,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for Guard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "race-audit")]
impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        race_audit::on_release(self.name);
    }
}

/// Acquire `m`, recovering the guarded data if another worker panicked
/// while holding the lock (see module docs for why poison is tolerated).
/// `name` identifies the lock to the race-audit layer; pick one stable
/// name per lock role (e.g. `"val-results"`), not per instance.
pub(crate) fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>, name: &'static str) -> Guard<'a, T> {
    #[cfg(feature = "race-audit")]
    race_audit::on_acquire(name);
    #[cfg(not(feature = "race-audit"))]
    let _ = name;
    Guard {
        inner: m.lock().unwrap_or_else(PoisonError::into_inner),
        #[cfg(feature = "race-audit")]
        name,
    }
}

/// Record a task boundary: with `race-audit` on, flags any lock the
/// calling thread still holds (compiles to nothing otherwise). Validation
/// units are the executor's stealable scheduling granule, so no lock may
/// ever be held across their entry or exit.
#[inline]
pub(crate) fn audit_task_boundary(what: &str) {
    #[cfg(feature = "race-audit")]
    race_audit::check_task_boundary(what);
    #[cfg(not(feature = "race-audit"))]
    let _ = what;
}

/// Dynamic lock-order audit, compiled only with `--features race-audit`.
///
/// Global, process-wide state: tests that assert on a clean audit should
/// [`reset`] first and run the audited workload in their own process
/// (integration tests do; unit tests here use unique lock names instead).
#[cfg(feature = "race-audit")]
pub mod race_audit {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, OnceLock, PoisonError};

    thread_local! {
        /// Names of the locks this thread currently holds, in acquisition
        /// order (innermost last).
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    #[derive(Default)]
    struct AuditState {
        /// Total acquisitions per lock name.
        acquisitions: BTreeMap<&'static str, u64>,
        /// Order relation: `(outer, inner)` means `inner` was acquired
        /// while `outer` was held by the same thread.
        observed: BTreeSet<(&'static str, &'static str)>,
        /// Recursive acquisitions and task-boundary holds, as messages.
        violations: Vec<String>,
    }

    fn with_state<R>(f: impl FnOnce(&mut AuditState) -> R) -> R {
        static STATE: OnceLock<Mutex<AuditState>> = OnceLock::new();
        let m = STATE.get_or_init(|| Mutex::new(AuditState::default()));
        f(&mut m.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Record that the calling thread is about to acquire `name`.
    /// Recording *before* blocking means an acquisition that would
    /// deadlock still contributes its ordered pairs to the report.
    pub(crate) fn on_acquire(name: &'static str) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            with_state(|s| {
                *s.acquisitions.entry(name).or_default() += 1;
                for &outer in h.iter() {
                    if outer == name {
                        s.violations
                            .push(format!("recursive acquisition of `{name}`"));
                    }
                    s.observed.insert((outer, name));
                }
            });
            h.push(name);
        });
    }

    /// Record that the calling thread released `name`.
    pub(crate) fn on_release(name: &'static str) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&n| n == name) {
                h.remove(pos);
            }
        });
    }

    /// Flag any lock held by the calling thread across the `what`
    /// boundary.
    pub fn check_task_boundary(what: &str) {
        HELD.with(|h| {
            let h = h.borrow();
            if !h.is_empty() {
                with_state(|s| {
                    s.violations
                        .push(format!("locks held across {what}: [{}]", h.join(", ")))
                });
            }
        });
    }

    /// Everything the audit observed since the last [`reset`].
    #[derive(Debug, Clone)]
    pub struct AuditReport {
        /// Total acquisitions per lock name.
        pub acquisitions: BTreeMap<String, u64>,
        /// Observed `(outer, inner)` held-while-acquiring pairs.
        pub observed_orders: Vec<(String, String)>,
        /// Pairs observed in *both* orders — the deadlock recipe.
        pub inversions: Vec<(String, String)>,
        /// Recursive acquisitions and task-boundary holds.
        pub violations: Vec<String>,
    }

    impl AuditReport {
        /// No inversions and no boundary/recursion violations. (Plain
        /// nested acquisitions in one consistent order are fine.)
        pub fn is_clean(&self) -> bool {
            self.inversions.is_empty() && self.violations.is_empty()
        }

        /// Total acquisitions across all locks — a stress test asserting
        /// cleanliness should also assert this is nonzero, or it proved
        /// nothing.
        pub fn total_acquisitions(&self) -> u64 {
            self.acquisitions.values().sum()
        }
    }

    /// Snapshot the audit state.
    pub fn report() -> AuditReport {
        with_state(|s| {
            let mut inversions = Vec::new();
            for &(a, b) in &s.observed {
                if a < b && s.observed.contains(&(b, a)) {
                    inversions.push((a.to_string(), b.to_string()));
                }
            }
            AuditReport {
                acquisitions: s
                    .acquisitions
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect(),
                observed_orders: s
                    .observed
                    .iter()
                    .map(|&(a, b)| (a.to_string(), b.to_string()))
                    .collect(),
                inversions,
                violations: s.violations.clone(),
            }
        })
    }

    /// Clear all audit state (held stacks are per-thread and expected to
    /// be empty between workloads).
    pub fn reset() {
        with_state(|s| *s = AuditState::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn lock_unpoisoned_recovers_guarded_data() {
        let m = Mutex::new(vec![1]);
        let poison = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // dice-lint: allow(lock-hygiene): this test poisons the mutex on purpose
            let _guard = m.lock().unwrap();
            panic!("poison the mutex");
        }));
        assert!(poison.is_err());
        assert!(m.is_poisoned());
        lock_unpoisoned(&m, "test-poison").push(2);
        assert_eq!(*lock_unpoisoned(&m, "test-poison"), vec![1, 2]);
    }

    #[cfg(feature = "race-audit")]
    #[test]
    fn audit_observes_nesting_and_detects_inversions() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = lock_unpoisoned(&a, "inv-test-a");
            let _gb = lock_unpoisoned(&b, "inv-test-b");
        }
        let mid = race_audit::report();
        assert!(mid
            .observed_orders
            .contains(&("inv-test-a".into(), "inv-test-b".into())));
        assert!(!mid
            .inversions
            .iter()
            .any(|(x, _)| x.starts_with("inv-test")));
        {
            let _gb = lock_unpoisoned(&b, "inv-test-b");
            let _ga = lock_unpoisoned(&a, "inv-test-a");
        }
        let after = race_audit::report();
        assert!(
            after
                .inversions
                .contains(&("inv-test-a".into(), "inv-test-b".into())),
            "both orders observed => inversion: {:?}",
            after.inversions
        );
    }

    #[cfg(feature = "race-audit")]
    #[test]
    fn audit_flags_locks_held_across_boundaries() {
        let m = Mutex::new(());
        {
            let _g = lock_unpoisoned(&m, "boundary-test-lock");
            audit_task_boundary("boundary-test unit");
        }
        let report = race_audit::report();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("boundary-test unit") && v.contains("boundary-test-lock")),
            "boundary hold must be flagged: {:?}",
            report.violations
        );
        // Guard dropped => the held stack is clean again.
        audit_task_boundary("boundary-test after drop");
        assert!(!race_audit::report()
            .violations
            .iter()
            .any(|v| v.contains("after drop")));
    }

    #[cfg(feature = "race-audit")]
    #[test]
    fn audit_flags_recursive_acquisition_attempts() {
        // Recursive self-lock would deadlock for real, so simulate the
        // acquisition record without a second real lock call.
        race_audit::on_acquire("recursion-test");
        race_audit::on_acquire("recursion-test");
        race_audit::on_release("recursion-test");
        race_audit::on_release("recursion-test");
        assert!(race_audit::report()
            .violations
            .iter()
            .any(|v| v.contains("recursive acquisition of `recursion-test`")));
    }
}
