//! Race-audit stress test (`--features race-audit`): drive a mixed
//! BGP + gossip campaign with real round/validation contention and
//! assert the lock-order audit stays clean while the determinism
//! contract holds.
//!
//! The audit state is process-global, so this lives in its own
//! integration-test binary: `reset()` at the start owns the whole
//! process's audit history.

#![cfg(feature = "race-audit")]

use dice_core::{race_audit, scenarios, Campaign};
use dice_netsim::{SimDuration, SimTime};

fn run_campaign(pair_workers: usize) -> String {
    let mut sim = scenarios::mixed_bgp_gossip(21, true);
    sim.run_until(SimTime::from_nanos(12_000_000_000));
    let report = Campaign::new(&sim)
        .executions(48)
        .validate_top(6)
        .horizon(SimDuration::from_secs(30))
        .workers(2)
        .pair_workers(pair_workers)
        .run(&mut sim)
        .expect("mixed campaign runs");
    serde_json::to_string(&report.normalized()).unwrap()
}

#[test]
fn audited_parallel_campaign_is_clean_and_deterministic() {
    race_audit::reset();

    // Sequential reference, then the contended schedule: 4 rounds in
    // flight over a 5-thread pool (pair_workers=4, workers=2 means one
    // extra steal-only worker), so validation units migrate between
    // threads and every executor lock sees real contention.
    let sequential = run_campaign(1);
    let parallel = run_campaign(4);
    assert_eq!(
        sequential, parallel,
        "normalized report must be byte-identical at pair_workers 1 and 4"
    );

    let audit = race_audit::report();
    assert!(
        audit.total_acquisitions() > 0,
        "the audit must have observed the executor's locks, or this test proves nothing"
    );
    assert!(
        audit.acquisitions.contains_key("val-results"),
        "validation-result lock must be exercised: {:?}",
        audit.acquisitions
    );
    assert!(
        audit.is_clean(),
        "lock-order inversions: {:?}; violations: {:?}",
        audit.inversions,
        audit.violations
    );
}
