//! # dice-gossip — an epidemic publish/subscribe node
//!
//! The second *real* protocol under DiCE's SUT seam (the first is
//! `dice-bgp`). A [`GossipNode`] disseminates topic-tagged rumors over the
//! `dice-netsim` substrate using rumor mongering with per-peer infection
//! state, periodic anti-entropy digests, and TTL-based garbage collection —
//! application logic with nothing BGP-shaped about it: no routes, no
//! policies, datagram-exact framing, and failure modes of its own (delivery
//! loss, duplication storms, a seeded digest-length parser defect).
//!
//! This crate knows nothing about DiCE: it only implements
//! [`dice_netsim::Node`]. The adapter that exposes it to the runtime
//! (`ExplorableNode` + `CheckView` + the symbolic handler twin) lives in
//! `dice-core::gossip_sut`, exactly parallel to `dice-core::bgp_sut`.
//!
//! ## Example
//!
//! ```
//! use dice_gossip::{GossipConfig, GossipNode};
//! use dice_netsim::{LinkParams, NodeId, QuietOutcome, SimDuration, SimTime, Simulator, Topology};
//!
//! // Two nodes: 0 publishes topic 7, 1 subscribes to it.
//! let topo = Topology::line(2, LinkParams::fixed(SimDuration::from_millis(5)));
//! let mut sim = Simulator::new(topo, 1);
//! sim.set_node(
//!     NodeId(0),
//!     Box::new(GossipNode::new(GossipConfig::new(61000).publish(7).with_peer(NodeId(1)))),
//! );
//! sim.set_node(
//!     NodeId(1),
//!     Box::new(GossipNode::new(GossipConfig::new(61001).subscribe(7).with_peer(NodeId(0)))),
//! );
//! sim.start();
//! let out = sim.run_until_quiet(SimDuration::from_secs(5), SimTime::from_nanos(60_000_000_000));
//! assert_eq!(out, QuietOutcome::Quiescent);
//! let sub = sim.node(NodeId(1)).as_any().downcast_ref::<GossipNode>().unwrap();
//! assert_eq!(sub.delivered_total(), 2); // both of node 0's initial rumors arrived
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod wire;

pub use node::{GossipBugs, GossipConfig, GossipNode};
pub use wire::{
    decode, encode, DecodeError, GossipFrame, Rumor, TopicId, ACK_KIND_RUMOR, ACK_KIND_SUBSCRIBE,
    ACK_LEN, BUG_COUNT_THRESHOLD, DIGEST_ENTRY_LEN, MAX_DIGEST_ENTRIES, MAX_PAYLOAD, MAX_TTL,
    OP_ACK, OP_DIGEST, OP_RUMOR, OP_SUBSCRIBE, RUMOR_HEADER_LEN,
};
