//! [`GossipNode`]: an epidemic publish/subscribe node.
//!
//! Dissemination follows the classic rumor-mongering + anti-entropy split:
//!
//! * **Rumor mongering (push)** — a rumor first seen is immediately
//!   forwarded to up to [`GossipConfig::fanout`] peers not already known to
//!   be infected with it, with the hop TTL decremented. Per-peer infection
//!   state stops the epidemic once everyone has everything.
//! * **Anti-entropy (digests)** — a periodic timer sends each peer a
//!   digest of recently seen `(topic, id)` pairs as *quiet* background
//!   traffic; a peer receiving a digest pushes back any rumors the sender
//!   is missing. This repairs losses from sessions that were down during
//!   the push phase.
//! * **TTL garbage collection** — a second timer evicts rumors whose
//!   lifetime expired from the payload store (and prunes the per-peer
//!   infection bookkeeping); the compact `seen` set is retained as the
//!   duplicate-suppression memory.
//! * **Ack and retransmit** — rumor pushes and subscribes are acknowledged
//!   with a quiet [`GossipFrame::Ack`]; unacked sends are retransmitted
//!   with exponential backoff up to [`GossipConfig::retry_budget`] times.
//!   On budget exhaustion the peer is *un-marked* as infected so the
//!   anti-entropy digest exchange remains the repair backstop on lossy
//!   channels (see `dice_netsim::LinkFaults`).
//!
//! The node is a deterministic state machine (peer iteration in config
//! order, no randomness), so shadow-snapshot clones replay identically —
//! the property DiCE's validation phase relies on.

use core::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use dice_netsim::{Node, NodeApi, NodeId, SessionEvent, SimDuration, SimTime};

use crate::wire::{
    self, DecodeError, GossipFrame, Rumor, TopicId, BUG_COUNT_THRESHOLD, MAX_DIGEST_ENTRIES,
    OP_DIGEST,
};

/// Timer token: periodic anti-entropy digests.
const TOKEN_ANTI_ENTROPY: u64 = 1;
/// Timer token: periodic TTL garbage collection.
const TOKEN_GC: u64 = 2;
/// Timer token: periodic retransmit sweep over unacked sends.
const TOKEN_RETRANSMIT: u64 = 3;

/// How many missing rumors a digest response pushes back at most.
const DIGEST_PUSH_CAP: usize = 16;

/// Seeded defect switches, mirroring `dice_bgp::BugSwitches`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipBugs {
    /// BIRD-style missing bounds check: a digest whose count byte is at
    /// least [`BUG_COUNT_THRESHOLD`] is used to walk the seen-set *before*
    /// the frame length is validated, corrupting the walk and crashing the
    /// daemon. Concolically reachable from any rumor seed (flip the opcode
    /// branch, then the count branch).
    pub digest_count_overflow: bool,
}

/// Static configuration of one gossip node.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Publisher identity (ASN-like; attested out of band).
    pub origin: u16,
    /// Gossip peers, in deterministic forwarding order.
    pub peers: Vec<NodeId>,
    /// Topics this node delivers to the application.
    pub subscriptions: Vec<TopicId>,
    /// Topics this node owns and publishes on.
    pub publishes: Vec<TopicId>,
    /// Rumors published per owned topic at start.
    pub rumors_per_topic: u32,
    /// Payload bytes per published rumor.
    pub payload_len: usize,
    /// Peers a fresh rumor is pushed to immediately.
    pub fanout: usize,
    /// Hop TTL on rumors this node originates.
    pub rumor_ttl: u8,
    /// Period of the anti-entropy digest timer.
    pub anti_entropy_period: SimDuration,
    /// Period of the garbage-collection timer.
    pub gc_period: SimDuration,
    /// How long a rumor's payload is retained after first sight.
    pub rumor_lifetime: SimDuration,
    /// Base timeout before an unacked send is retransmitted (doubled per
    /// attempt); also the retransmit sweep period.
    pub retransmit_timeout: SimDuration,
    /// Retransmissions attempted per unacked send before giving up and
    /// leaving repair to anti-entropy.
    pub retry_budget: u32,
    /// Seeded defects.
    pub bugs: GossipBugs,
}

impl GossipConfig {
    /// Sensible defaults for a node with identity `origin`.
    pub fn new(origin: u16) -> Self {
        GossipConfig {
            origin,
            peers: Vec::new(),
            subscriptions: Vec::new(),
            publishes: Vec::new(),
            rumors_per_topic: 2,
            payload_len: 8,
            fanout: 3,
            rumor_ttl: 6,
            anti_entropy_period: SimDuration::from_secs(2),
            gc_period: SimDuration::from_secs(10),
            rumor_lifetime: SimDuration::from_secs(120),
            retransmit_timeout: SimDuration::from_millis(800),
            retry_budget: 3,
            bugs: GossipBugs::default(),
        }
    }

    /// Add a gossip peer.
    pub fn with_peer(mut self, peer: NodeId) -> Self {
        self.peers.push(peer);
        self
    }

    /// Subscribe to a topic.
    pub fn subscribe(mut self, topic: TopicId) -> Self {
        self.subscriptions.push(topic);
        self
    }

    /// Own (and publish on) a topic.
    pub fn publish(mut self, topic: TopicId) -> Self {
        self.publishes.push(topic);
        self
    }

    /// All topics this node is interested in (subscriptions ∪ publishes).
    pub fn interests(&self) -> BTreeSet<TopicId> {
        self.subscriptions
            .iter()
            .chain(self.publishes.iter())
            .copied()
            .collect()
    }
}

/// A retained rumor: payload plus eviction bookkeeping.
#[derive(Debug, Clone)]
struct StoredRumor {
    origin: u16,
    ttl: u8,
    payload: Vec<u8>,
    expires: SimTime,
}

/// Retransmit state of one unacked send. Keyed in [`GossipNode::pending`]
/// by `(peer, ack kind, topic, id)` — the same tuple an incoming
/// [`GossipFrame::Ack`] clears.
#[derive(Debug, Clone, Copy)]
struct PendingSend {
    /// When the next retransmit sweep may resend this entry.
    deadline: SimTime,
    /// Retransmissions already performed (0 = only the original send).
    attempts: u32,
}

/// The epidemic pub/sub node. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct GossipNode {
    config: GossipConfig,
    /// Rumor payload store, evicted by TTL GC.
    store: BTreeMap<(TopicId, u32), StoredRumor>,
    /// Duplicate-suppression memory (kept across GC).
    seen: BTreeSet<(TopicId, u32)>,
    /// Which rumors each peer is known to have.
    infected: BTreeMap<NodeId, BTreeSet<(TopicId, u32)>>,
    /// Peers with an established session.
    sessions_up: BTreeSet<NodeId>,
    /// Topics each peer announced interest in.
    peer_subs: BTreeMap<NodeId, BTreeSet<TopicId>>,
    /// Per-peer rotating anti-entropy digest cursor (see `send_digest`).
    digest_cursors: BTreeMap<NodeId, (TopicId, u32)>,
    /// Unacked sends awaiting ack or retransmit, keyed
    /// `(peer, ack kind, topic, id)`.
    pending: BTreeMap<(NodeId, u8, TopicId, u32), PendingSend>,
    /// Total retransmissions performed (observability).
    retransmits: u64,
    /// Highest rumor id seen per topic, with its claimed origin — the
    /// "best route" analogue exposed through the SUT seam.
    best: BTreeMap<TopicId, (u32, u16)>,
    /// Novel rumors delivered per subscribed topic.
    delivered: BTreeMap<TopicId, u64>,
    /// Redundant receipts per topic — the "route flip" analogue.
    duplicates: BTreeMap<TopicId, u64>,
    /// Next publish sequence number.
    next_seq: u32,
}

impl GossipNode {
    /// Create a node from its configuration.
    pub fn new(config: GossipConfig) -> Self {
        GossipNode {
            config,
            store: BTreeMap::new(),
            seen: BTreeSet::new(),
            infected: BTreeMap::new(),
            sessions_up: BTreeSet::new(),
            peer_subs: BTreeMap::new(),
            digest_cursors: BTreeMap::new(),
            pending: BTreeMap::new(),
            retransmits: 0,
            best: BTreeMap::new(),
            delivered: BTreeMap::new(),
            duplicates: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// This node's configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Novel rumors delivered per topic.
    pub fn delivered(&self) -> &BTreeMap<TopicId, u64> {
        &self.delivered
    }

    /// Redundant receipts per topic.
    pub fn duplicates(&self) -> &BTreeMap<TopicId, u64> {
        &self.duplicates
    }

    /// Total novel deliveries across topics.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Total redundant receipts across topics.
    pub fn duplicates_total(&self) -> u64 {
        self.duplicates.values().sum()
    }

    /// Highest rumor id seen per topic with its claimed origin.
    pub fn best_per_topic(&self) -> &BTreeMap<TopicId, (u32, u16)> {
        &self.best
    }

    /// Distinct rumors currently retained in the payload store.
    pub fn stored(&self) -> usize {
        self.store.len()
    }

    /// Distinct rumors ever seen (GC-surviving dedup memory).
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Peers with an established session.
    pub fn established_peers(&self) -> usize {
        self.sessions_up.len()
    }

    /// Sends currently awaiting an ack.
    pub fn pending_sends(&self) -> usize {
        self.pending.len()
    }

    /// Total retransmissions performed so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    fn is_subscribed(&self, topic: TopicId) -> bool {
        self.config.subscriptions.contains(&topic)
    }

    fn mark_infected(&mut self, peer: NodeId, key: (TopicId, u32)) {
        self.infected.entry(peer).or_default().insert(key);
    }

    fn peer_has(&self, peer: NodeId, key: &(TopicId, u32)) -> bool {
        self.infected
            .get(&peer)
            .map(|s| s.contains(key))
            .unwrap_or(false)
    }

    /// Record a rumor locally: store, dedup memory, best pointer and
    /// delivery counter. Returns `false` if it was already seen.
    fn admit(&mut self, rumor: &Rumor, now: SimTime) -> bool {
        let key = (rumor.topic, rumor.id);
        if !self.seen.insert(key) {
            *self.duplicates.entry(rumor.topic).or_default() += 1;
            return false;
        }
        self.store.insert(
            key,
            StoredRumor {
                origin: rumor.origin,
                ttl: rumor.ttl,
                payload: rumor.payload.clone(),
                expires: now + self.config.rumor_lifetime,
            },
        );
        let best = self
            .best
            .entry(rumor.topic)
            .or_insert((rumor.id, rumor.origin));
        if rumor.id >= best.0 {
            *best = (rumor.id, rumor.origin);
        }
        if self.is_subscribed(rumor.topic) {
            *self.delivered.entry(rumor.topic).or_default() += 1;
        }
        true
    }

    /// Push one stored rumor to `peer` (marks it infected there).
    fn push_to(&mut self, peer: NodeId, key: (TopicId, u32), ttl: u8, api: &mut NodeApi<'_>) {
        let Some(stored) = self.store.get(&key) else {
            return;
        };
        let frame = GossipFrame::Rumor(Rumor {
            topic: key.0,
            id: key.1,
            origin: stored.origin,
            ttl,
            payload: stored.payload.clone(),
        });
        let mut buf = api.buf();
        wire::encode_into(&frame, buf.as_mut_vec());
        api.send(peer, buf);
        self.mark_infected(peer, key);
        self.track_unacked(peer, wire::ACK_KIND_RUMOR, key.0, key.1, api.now());
    }

    /// Register (or refresh) retransmit state for a just-sent frame.
    /// Re-sends of an entry already in flight keep its attempt count so
    /// the retry budget bounds total network effort per (peer, frame).
    fn track_unacked(&mut self, peer: NodeId, kind: u8, topic: TopicId, id: u32, now: SimTime) {
        let key = (peer, kind, topic, id);
        let attempts = self.pending.get(&key).map(|p| p.attempts).unwrap_or(0);
        self.pending.insert(
            key,
            PendingSend {
                deadline: now + self.config.retransmit_timeout,
                attempts,
            },
        );
    }

    /// Acknowledge a received retransmittable frame as quiet traffic.
    fn send_ack(&mut self, peer: NodeId, kind: u8, topic: TopicId, id: u32, api: &mut NodeApi<'_>) {
        let mut buf = api.buf();
        wire::encode_into(&GossipFrame::Ack { kind, topic, id }, buf.as_mut_vec());
        api.send_quiet(peer, buf);
    }

    /// One retransmit sweep: resend every due unacked entry, or give up
    /// once its retry budget is spent. Exhausted rumor entries un-mark the
    /// peer's infection state so the periodic digest exchange repairs the
    /// gap (digest responses only push rumors the peer is *not* marked as
    /// having — a stale mark would suppress that repair forever).
    fn sweep_retransmits(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        let due: Vec<((NodeId, u8, TopicId, u32), u32)> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(k, p)| (*k, p.attempts))
            .collect();
        for ((peer, kind, topic, id), attempts) in due {
            let key = (peer, kind, topic, id);
            if attempts >= self.config.retry_budget {
                self.pending.remove(&key);
                if kind == wire::ACK_KIND_RUMOR {
                    if let Some(inf) = self.infected.get_mut(&peer) {
                        inf.remove(&(topic, id));
                    }
                    api.trace(
                        "gossip-retry-exhausted",
                        format!("topic {topic} id {id:#x} to {peer}"),
                    );
                }
                continue;
            }
            if !self.sessions_up.contains(&peer) {
                continue;
            }
            let frame = match kind {
                wire::ACK_KIND_RUMOR => {
                    let Some(stored) = self.store.get(&(topic, id)) else {
                        // GC'd while unacked: the payload is gone, so stop
                        // retrying; the seen-set still suppresses echoes.
                        self.pending.remove(&key);
                        continue;
                    };
                    GossipFrame::Rumor(Rumor {
                        topic,
                        id,
                        origin: stored.origin,
                        ttl: stored.ttl.saturating_sub(1),
                        payload: stored.payload.clone(),
                    })
                }
                _ => GossipFrame::Subscribe { topic },
            };
            let mut buf = api.buf();
            wire::encode_into(&frame, buf.as_mut_vec());
            if kind == wire::ACK_KIND_RUMOR {
                // Non-quiet: unrepaired data holds off quiescence so lossy
                // runs are not declared converged while rumors are missing.
                api.send(peer, buf);
            } else {
                api.send_quiet(peer, buf);
            }
            self.retransmits += 1;
            let backoff_shift = (attempts + 1).min(6);
            let p = self.pending.get_mut(&key).expect("due entry still pending");
            p.attempts = attempts + 1;
            p.deadline = now
                + SimDuration::from_nanos(
                    self.config.retransmit_timeout.as_nanos() << backoff_shift,
                );
        }
    }

    /// Rumor mongering: forward a fresh rumor to up to `fanout` peers not
    /// known to be infected, TTL decremented.
    fn monger(&mut self, rumor: &Rumor, exclude: Option<NodeId>, api: &mut NodeApi<'_>) {
        if rumor.ttl == 0 {
            return;
        }
        let key = (rumor.topic, rumor.id);
        let targets: Vec<NodeId> = self
            .config
            .peers
            .iter()
            .copied()
            .filter(|p| Some(*p) != exclude)
            .filter(|p| self.sessions_up.contains(p))
            .filter(|p| !self.peer_has(*p, &key))
            .take(self.config.fanout)
            .collect();
        for peer in targets {
            self.push_to(peer, key, rumor.ttl - 1, api);
        }
    }

    /// Publish the configured initial rumors for every owned topic.
    fn publish_initial(&mut self, now: SimTime) {
        for k in 0..self.config.rumors_per_topic {
            for t in self.config.publishes.clone() {
                let seq = self.next_seq;
                self.next_seq += 1;
                let rumor = Rumor {
                    topic: t,
                    id: ((self.config.origin as u32) << 16) | seq,
                    origin: self.config.origin,
                    ttl: self.config.rumor_ttl,
                    payload: vec![(t as u8) ^ (k as u8); self.config.payload_len],
                };
                self.admit(&rumor, now);
            }
        }
    }

    fn handle_rumor(&mut self, from: NodeId, rumor: Rumor, api: &mut NodeApi<'_>) {
        // Ack even duplicates: the previous ack may have been lost.
        self.send_ack(from, wire::ACK_KIND_RUMOR, rumor.topic, rumor.id, api);
        self.mark_infected(from, (rumor.topic, rumor.id));
        if self.admit(&rumor, api.now()) {
            api.trace(
                "gossip-deliver",
                format!("topic {} id {:#x} from {from}", rumor.topic, rumor.id),
            );
            self.monger(&rumor, Some(from), api);
        }
    }

    fn handle_digest(&mut self, from: NodeId, entries: Vec<(TopicId, u32)>, api: &mut NodeApi<'_>) {
        for key in &entries {
            self.mark_infected(from, *key);
        }
        if !self.sessions_up.contains(&from) {
            return;
        }
        // Anti-entropy repair: push back what the peer is missing.
        let missing: Vec<(TopicId, u32)> = self
            .store
            .keys()
            .filter(|k| !self.peer_has(from, k))
            .take(DIGEST_PUSH_CAP)
            .copied()
            .collect();
        for key in missing {
            let ttl = self.store.get(&key).map(|s| s.ttl).unwrap_or(0);
            self.push_to(from, key, ttl.saturating_sub(1), api);
        }
    }

    /// Send a digest window to `peer` as quiet background traffic. The
    /// window rotates through the store via a per-peer cursor, so when the
    /// store exceeds one digest's capacity every stored rumor is still
    /// advertised to every peer over successive anti-entropy periods —
    /// a fixed window would leave low-keyed rumors permanently
    /// unadvertised and provoke redundant repair pushes.
    fn send_digest(&mut self, peer: NodeId, api: &mut NodeApi<'_>) {
        let cursor = self.digest_cursors.get(&peer).copied().unwrap_or((0, 0));
        let (entries, next) = digest_window(&self.store, cursor, MAX_DIGEST_ENTRIES as usize);
        self.digest_cursors.insert(peer, next);
        let mut buf = api.buf();
        wire::encode_into(&GossipFrame::Digest(entries), buf.as_mut_vec());
        api.send_quiet(peer, buf);
    }
}

/// One rotating digest window over the store: up to `max` keys starting at
/// `cursor` (wrapping), plus the cursor for the next window.
fn digest_window(
    store: &BTreeMap<(TopicId, u32), StoredRumor>,
    cursor: (TopicId, u32),
    max: usize,
) -> (Vec<(TopicId, u32)>, (TopicId, u32)) {
    let rotation: Vec<(TopicId, u32)> = store
        .range(cursor..)
        .chain(store.range(..cursor))
        .map(|(k, _)| *k)
        .collect();
    let window: Vec<(TopicId, u32)> = rotation.iter().copied().take(max).collect();
    let next = if rotation.len() > window.len() {
        rotation[window.len()]
    } else {
        cursor
    };
    (window, next)
}

impl Node for GossipNode {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.publish_initial(api.now());
        api.set_timer(self.config.anti_entropy_period, TOKEN_ANTI_ENTROPY);
        api.set_timer(self.config.gc_period, TOKEN_GC);
        api.set_timer(self.config.retransmit_timeout, TOKEN_RETRANSMIT);
    }

    fn on_message(&mut self, from: NodeId, data: &[u8], api: &mut NodeApi<'_>) {
        // ---- Seeded programming error --------------------------------
        // The buggy build sizes its seen-set walk from the raw count byte
        // *before* the frame length is validated (the decode below would
        // reject the frame as truncated). Mirrored symbolically by the
        // handler twin in `dice-core`.
        if self.config.bugs.digest_count_overflow
            && data.len() >= 2
            && data[0] == OP_DIGEST
            && data[1] >= BUG_COUNT_THRESHOLD
        {
            api.crash("seeded bug: digest count overflow corrupts seen-set");
            return;
        }
        match wire::decode(data) {
            Ok(GossipFrame::Rumor(r)) => self.handle_rumor(from, r, api),
            Ok(GossipFrame::Digest(entries)) => self.handle_digest(from, entries, api),
            Ok(GossipFrame::Subscribe { topic }) => {
                self.peer_subs.entry(from).or_default().insert(topic);
                self.send_ack(from, wire::ACK_KIND_SUBSCRIBE, topic, 0, api);
            }
            Ok(GossipFrame::Ack { kind, topic, id }) => {
                self.pending.remove(&(from, kind, topic, id));
                if kind == wire::ACK_KIND_RUMOR {
                    // Positive knowledge: the peer now has the rumor.
                    self.mark_infected(from, (topic, id));
                }
            }
            Err(e) => {
                // Conforming nodes drop malformed frames (datagram
                // semantics) — unlike BGP, a bad frame does not reset the
                // session.
                if !matches!(e, DecodeError::Empty) {
                    api.trace("gossip-reject", format!("{e} from {from}"));
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut NodeApi<'_>) {
        match token {
            TOKEN_ANTI_ENTROPY => {
                let up: Vec<NodeId> = self
                    .config
                    .peers
                    .iter()
                    .copied()
                    .filter(|p| self.sessions_up.contains(p))
                    .collect();
                for peer in up {
                    self.send_digest(peer, api);
                }
                api.set_timer(self.config.anti_entropy_period, TOKEN_ANTI_ENTROPY);
            }
            TOKEN_GC => {
                let now = api.now();
                let expired: Vec<(TopicId, u32)> = self
                    .store
                    .iter()
                    .filter(|(_, s)| s.expires <= now)
                    .map(|(k, _)| *k)
                    .collect();
                for key in &expired {
                    self.store.remove(key);
                    for inf in self.infected.values_mut() {
                        inf.remove(key);
                    }
                }
                if !expired.is_empty() {
                    api.trace("gossip-gc", format!("evicted {} rumors", expired.len()));
                }
                api.set_timer(self.config.gc_period, TOKEN_GC);
            }
            TOKEN_RETRANSMIT => {
                self.sweep_retransmits(api);
                api.set_timer(self.config.retransmit_timeout, TOKEN_RETRANSMIT);
            }
            _ => {}
        }
    }

    fn on_session(&mut self, peer: NodeId, ev: SessionEvent, api: &mut NodeApi<'_>) {
        match ev {
            SessionEvent::Up => {
                if !self.config.peers.contains(&peer) {
                    return;
                }
                self.sessions_up.insert(peer);
                for topic in self.config.subscriptions.clone() {
                    let mut buf = api.buf();
                    wire::encode_into(&GossipFrame::Subscribe { topic }, buf.as_mut_vec());
                    api.send_quiet(peer, buf);
                    self.track_unacked(peer, wire::ACK_KIND_SUBSCRIBE, topic, 0, api.now());
                }
                // Initial spread: push everything the peer is not known
                // to have yet.
                let keys: Vec<(TopicId, u32)> = self
                    .store
                    .keys()
                    .filter(|k| !self.peer_has(peer, k))
                    .copied()
                    .collect();
                for key in keys {
                    let ttl = self.store.get(&key).map(|s| s.ttl).unwrap_or(0);
                    self.push_to(peer, key, ttl.saturating_sub(1), api);
                }
            }
            SessionEvent::Down(_) => {
                self.sessions_up.remove(&peer);
                // In-flight data died with the session: forget unacked
                // sends, and un-mark rumors so the re-up initial spread
                // (and anti-entropy) pushes them again.
                let dead: Vec<(NodeId, u8, TopicId, u32)> = self
                    .pending
                    .keys()
                    .filter(|(p, _, _, _)| *p == peer)
                    .copied()
                    .collect();
                for key in dead {
                    self.pending.remove(&key);
                    if key.1 == wire::ACK_KIND_RUMOR {
                        if let Some(inf) = self.infected.get_mut(&peer) {
                            inf.remove(&(key.2, key.3));
                        }
                    }
                }
            }
        }
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }

    fn state_size(&self) -> usize {
        let store: usize = self
            .store
            .values()
            .map(|s| s.payload.len() + 16)
            .sum::<usize>();
        let seen = self.seen.len() * 6;
        let infected: usize = self.infected.values().map(|s| s.len() * 6 + 4).sum();
        store + seen + infected + self.best.len() * 8
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_netsim::{LinkFaults, LinkParams, QuietOutcome, SimTime, Simulator, Topology};

    /// A full mesh of `n` gossip nodes; node `i` publishes topic `i` and
    /// subscribes to every topic.
    fn mesh(n: usize, seed: u64, buggy: Option<usize>) -> Simulator {
        mesh_with_faults(n, seed, buggy, None)
    }

    /// Like [`mesh`], optionally with unreliable links.
    fn mesh_with_faults(
        n: usize,
        seed: u64,
        buggy: Option<usize>,
        faults: Option<LinkFaults>,
    ) -> Simulator {
        let topo = Topology::full_mesh(n, LinkParams::fixed(SimDuration::from_millis(5)));
        let mut sim = Simulator::new(topo.clone(), seed);
        if let Some(f) = faults {
            sim.set_link_faults(f);
            sim.set_unreliable_links(true);
        }
        for i in topo.node_ids() {
            let mut cfg = GossipConfig::new(61000 + i.0 as u16).publish(i.0 as u16);
            for j in topo.node_ids() {
                if j != i {
                    cfg = cfg.with_peer(j);
                }
            }
            for t in 0..n as u16 {
                cfg = cfg.subscribe(t);
            }
            if buggy == Some(i.index()) {
                cfg.bugs.digest_count_overflow = true;
            }
            sim.set_node(i, Box::new(GossipNode::new(cfg)));
        }
        sim.start();
        sim
    }

    fn gossip(sim: &Simulator, i: u32) -> &GossipNode {
        sim.node(NodeId(i))
            .as_any()
            .downcast_ref::<GossipNode>()
            .unwrap()
    }

    #[test]
    fn mesh_disseminates_every_rumor_everywhere() {
        let mut sim = mesh(4, 3, None);
        let out = sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(60_000_000_000),
        );
        assert_eq!(out, QuietOutcome::Quiescent, "gossip must converge");
        // 4 topics x 2 rumors; each node sees all 8, delivering the 6 it
        // did not publish itself plus its own 2.
        for i in 0..4 {
            let g = gossip(&sim, i);
            assert_eq!(g.seen_count(), 8, "node {i} missed rumors");
            assert_eq!(g.delivered_total(), 8, "node {i} delivery count");
            assert_eq!(g.established_peers(), 3);
        }
    }

    #[test]
    fn duplicates_are_counted_not_redelivered() {
        let mut sim = mesh(3, 9, None);
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(60_000_000_000),
        );
        let before: Vec<u64> = (0..3).map(|i| gossip(&sim, i).delivered_total()).collect();
        // Re-deliver an already-seen rumor directly.
        let key_bytes = {
            let g = gossip(&sim, 1);
            let (&(topic, id), stored) = g.store.iter().next().expect("has rumors");
            wire::encode(&GossipFrame::Rumor(Rumor {
                topic,
                id,
                origin: stored.origin,
                ttl: 3,
                payload: stored.payload.clone(),
            }))
        };
        let dup_before = gossip(&sim, 1).duplicates_total();
        sim.deliver_direct(NodeId(0), NodeId(1), &key_bytes);
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(120_000_000_000),
        );
        assert_eq!(gossip(&sim, 1).duplicates_total(), dup_before + 1);
        let after: Vec<u64> = (0..3).map(|i| gossip(&sim, i).delivered_total()).collect();
        assert_eq!(before, after, "duplicate must not be redelivered");
    }

    #[test]
    fn anti_entropy_repairs_partitioned_peer() {
        // Down the 0-2 and 1-2 links before start... simpler: bring the
        // session down after convergence, publish nothing new, restore and
        // check digests flow. Here we instead verify digests carry state:
        let mut sim = mesh(3, 5, None);
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(60_000_000_000),
        );
        // A digest from a peer that lacks everything triggers a push of
        // the missing rumors (capped).
        let empty_digest = wire::encode(&GossipFrame::Digest(vec![]));
        let seen_before = gossip(&sim, 0).seen_count();
        sim.deliver_direct(NodeId(2), NodeId(0), &empty_digest);
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(120_000_000_000),
        );
        // Node 0 pushed its store to node 2; node 2 already had all of it,
        // counting duplicates there, but nothing breaks and no redelivery
        // happens at node 0.
        assert_eq!(gossip(&sim, 0).seen_count(), seen_before);
    }

    #[test]
    fn ttl_gc_evicts_but_remembers() {
        let mut cfg = GossipConfig::new(77).publish(1).subscribe(1);
        cfg.rumor_lifetime = SimDuration::from_secs(1);
        cfg.gc_period = SimDuration::from_secs(2);
        let topo = Topology::line(2, LinkParams::fixed(SimDuration::from_millis(5)));
        let mut sim = Simulator::new(topo, 1);
        sim.set_node(NodeId(0), Box::new(GossipNode::new(cfg)));
        sim.set_node(
            NodeId(1),
            Box::new(GossipNode::new(GossipConfig::new(78).subscribe(1))),
        );
        sim.start();
        sim.run_until(SimTime::from_nanos(30_000_000_000));
        let g = gossip(&sim, 0);
        assert_eq!(g.stored(), 0, "expired rumors must be evicted");
        assert_eq!(g.seen_count(), 2, "dedup memory survives GC");
    }

    #[test]
    fn seeded_bug_crashes_only_buggy_build() {
        let attack = vec![OP_DIGEST, BUG_COUNT_THRESHOLD];
        // Healthy build: rejected as truncated, no crash.
        let mut sim = mesh(3, 7, None);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        sim.deliver_direct(NodeId(0), NodeId(1), &attack);
        sim.run_until(SimTime::from_nanos(6_000_000_000));
        assert!(sim.crashed(NodeId(1)).is_none());
        // Buggy build: crashes with the seeded reason.
        let mut sim = mesh(3, 7, Some(1));
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        sim.deliver_direct(NodeId(0), NodeId(1), &attack);
        sim.run_until(SimTime::from_nanos(6_000_000_000));
        let reason = sim.crashed(NodeId(1)).expect("buggy node crashes");
        assert!(reason.contains("digest count overflow"), "{reason}");
    }

    #[test]
    fn malformed_frames_are_dropped_without_reset() {
        let mut sim = mesh(2, 4, None);
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        let delivered = gossip(&sim, 1).delivered_total();
        sim.deliver_direct(NodeId(0), NodeId(1), &[0x55, 1, 2, 3]);
        sim.deliver_direct(NodeId(0), NodeId(1), &[wire::OP_RUMOR, 0, 0]);
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        assert!(sim.crashed(NodeId(1)).is_none());
        assert_eq!(gossip(&sim, 1).delivered_total(), delivered);
        assert!(sim.session_up(NodeId(0), NodeId(1)));
    }

    #[test]
    fn digest_windows_rotate_over_the_whole_store() {
        // A store larger than one digest: successive windows must cover
        // every key, not a fixed (highest-keyed) slice.
        let mut store: BTreeMap<(TopicId, u32), StoredRumor> = BTreeMap::new();
        for t in 0..5u16 {
            for id in 0..16u32 {
                store.insert(
                    (t, id),
                    StoredRumor {
                        origin: 1,
                        ttl: 2,
                        payload: vec![],
                        expires: SimTime::ZERO,
                    },
                );
            }
        }
        assert!(store.len() > wire::MAX_DIGEST_ENTRIES as usize);
        let mut cursor = (0, 0);
        let mut seen: BTreeSet<(TopicId, u32)> = BTreeSet::new();
        for _ in 0..4 {
            let (window, next) = digest_window(&store, cursor, wire::MAX_DIGEST_ENTRIES as usize);
            assert!(window.len() <= wire::MAX_DIGEST_ENTRIES as usize);
            seen.extend(window);
            cursor = next;
        }
        assert_eq!(seen.len(), store.len(), "rotation covers the full store");
        // A store that fits in one window is fully advertised at once.
        let small: BTreeMap<(TopicId, u32), StoredRumor> = store.into_iter().take(4).collect();
        let (window, next) = digest_window(&small, (9, 9), wire::MAX_DIGEST_ENTRIES as usize);
        assert_eq!(window.len(), 4);
        assert_eq!(next, (9, 9), "cursor stable when everything fits");
    }

    #[test]
    fn gossip_converges_on_lossy_links() {
        // 40% independent drop: the ack/retransmit path plus anti-entropy
        // must still disseminate every rumor to every node.
        let faults = LinkFaults {
            drop: 0.4,
            duplicate: 0.1,
            reorder: 0.2,
            reorder_window: SimDuration::from_millis(10),
            burst: None,
        };
        let mut sim = mesh_with_faults(4, 11, None, Some(faults));
        let out = sim.run_until_quiet(
            SimDuration::from_secs(8),
            SimTime::from_nanos(180_000_000_000),
        );
        assert_eq!(out, QuietOutcome::Quiescent, "lossy gossip must converge");
        let mut total_retransmits = 0;
        for i in 0..4 {
            let g = gossip(&sim, i);
            assert_eq!(g.seen_count(), 8, "node {i} missed rumors under loss");
            assert_eq!(g.delivered_total(), 8, "node {i} delivery count");
            total_retransmits += g.retransmits();
        }
        assert!(
            total_retransmits > 0,
            "40% loss must force at least one retransmission"
        );
    }

    #[test]
    fn lossy_gossip_replays_byte_identically() {
        let faults = LinkFaults::lossy(0.25);
        let run = |seed| {
            let mut sim = mesh_with_faults(3, seed, None, Some(faults));
            sim.run_until(SimTime::from_nanos(20_000_000_000));
            (0..3)
                .map(|i| {
                    let g = gossip(&sim, i);
                    (g.seen_count(), g.delivered_total(), g.retransmits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(21), run(21), "same seed must replay identically");
    }

    #[test]
    fn acks_clear_pending_on_reliable_links() {
        let mut sim = mesh(3, 13, None);
        let out = sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(60_000_000_000),
        );
        assert_eq!(out, QuietOutcome::Quiescent);
        for i in 0..3 {
            let g = gossip(&sim, i);
            assert_eq!(g.pending_sends(), 0, "node {i} has stale pending sends");
            assert_eq!(g.retransmits(), 0, "no loss, no retransmits");
        }
    }

    #[test]
    fn retry_exhaustion_unmarks_infection_for_anti_entropy() {
        // Sever the channel entirely (drop = 1.0): every push and every
        // retransmit is lost, so after the budget is spent the sender must
        // have *no* stale infection marks for its peer — that bookkeeping
        // is what lets anti-entropy repair once the channel heals.
        let faults = LinkFaults {
            drop: 1.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: SimDuration::ZERO,
            burst: None,
        };
        let mut sim = mesh_with_faults(2, 17, None, Some(faults));
        sim.run_until(SimTime::from_nanos(60_000_000_000));
        for i in 0..2 {
            let g = gossip(&sim, i);
            assert_eq!(g.pending_sends(), 0, "budget spent, pending drained");
            assert!(g.retransmits() >= 1, "retransmits were attempted");
            let marked: usize = g.infected.values().map(|s| s.len()).sum();
            assert_eq!(marked, 0, "exhausted sends must un-mark infection");
        }
        // Heal the channel: anti-entropy digests now advertise the stored
        // rumors and the repair push delivers them.
        sim.set_unreliable_links(false);
        sim.run_until(SimTime::from_nanos(120_000_000_000));
        for i in 0..2 {
            let g = gossip(&sim, i);
            assert_eq!(g.seen_count(), 4, "node {i} repaired after heal");
        }
    }

    #[test]
    fn clone_node_preserves_counters() {
        let mut sim = mesh(3, 6, None);
        sim.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::from_nanos(60_000_000_000),
        );
        let g = gossip(&sim, 2);
        let boxed = g.clone_node();
        let c = boxed.as_any().downcast_ref::<GossipNode>().unwrap();
        assert_eq!(c.delivered_total(), g.delivered_total());
        assert_eq!(c.seen_count(), g.seen_count());
        assert!(c.state_size() > 0);
    }
}
