//! The gossip wire format: four fixed-layout frames.
//!
//! Deliberately *not* BGP-shaped — the point of this protocol is to prove
//! the DiCE runtime generalizes, so the message grammar, the framing and
//! the failure modes are all different:
//!
//! ```text
//! RUMOR      [op=0x01][topic:u16][id:u32][origin:u16][ttl:u8][plen:u8][payload...]
//! DIGEST     [op=0x02][count:u8][count x (topic:u16, id:u32)]
//! SUBSCRIBE  [op=0x03][topic:u16]
//! ACK        [op=0x04][kind:u8][topic:u16][id:u32]
//! ```
//!
//! All multi-byte integers are big-endian. Every frame is length-exact:
//! trailing bytes are a decode error (gossip frames are datagram-shaped,
//! unlike BGP's self-delimiting TCP stream messages).

/// Opcode of a [`Rumor`](GossipFrame::Rumor) frame.
pub const OP_RUMOR: u8 = 0x01;
/// Opcode of a [`Digest`](GossipFrame::Digest) frame.
pub const OP_DIGEST: u8 = 0x02;
/// Opcode of a [`Subscribe`](GossipFrame::Subscribe) frame.
pub const OP_SUBSCRIBE: u8 = 0x03;
/// Opcode of an [`Ack`](GossipFrame::Ack) frame.
pub const OP_ACK: u8 = 0x04;

/// Exact length of an ACK frame.
pub const ACK_LEN: usize = 8;
/// [`GossipFrame::Ack`] kind acknowledging a RUMOR.
pub const ACK_KIND_RUMOR: u8 = 0;
/// [`GossipFrame::Ack`] kind acknowledging a SUBSCRIBE (`id` is zero).
pub const ACK_KIND_SUBSCRIBE: u8 = 1;

/// Fixed header length of a RUMOR frame (payload follows).
pub const RUMOR_HEADER_LEN: usize = 11;
/// Bytes per digest entry: topic (2) + rumor id (4).
pub const DIGEST_ENTRY_LEN: usize = 6;
/// Maximum rumor payload a conforming node accepts.
pub const MAX_PAYLOAD: usize = 64;
/// Maximum hop TTL a conforming node accepts.
pub const MAX_TTL: u8 = 15;
/// Maximum entries in a digest a conforming node accepts.
pub const MAX_DIGEST_ENTRIES: u8 = 32;

/// A digest `count` at or above this value trips the seeded bug when
/// [`GossipBugs::digest_count_overflow`](crate::node::GossipBugs) is
/// enabled: the buggy code path uses the attacker-controlled count to size
/// a seen-set scan *before* validating it against the frame length —
/// the gossip analogue of the BGP adapter's unknown-attribute overflow.
pub const BUG_COUNT_THRESHOLD: u8 = 0xC0;

/// Topics are dense small integers, like interior routing tags.
pub type TopicId = u16;

/// One piece of application data being epidemically disseminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rumor {
    /// The pub/sub topic this rumor belongs to.
    pub topic: TopicId,
    /// Unique id within the topic (publisher-allocated, monotone).
    pub id: u32,
    /// Identity of the publisher (ASN-like; attested out of band).
    pub origin: u16,
    /// Remaining forwarding hops.
    pub ttl: u8,
    /// Opaque application payload.
    pub payload: Vec<u8>,
}

/// Any frame of the gossip protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipFrame {
    /// Push one rumor to a peer.
    Rumor(Rumor),
    /// Anti-entropy summary: `(topic, id)` pairs the sender has seen.
    Digest(Vec<(TopicId, u32)>),
    /// Announce interest in a topic.
    Subscribe {
        /// The topic being subscribed to.
        topic: TopicId,
    },
    /// Acknowledge receipt of a retransmittable frame (RUMOR or
    /// SUBSCRIBE), so the sender can clear its retransmit state. ACKs are
    /// never themselves acknowledged.
    Ack {
        /// [`ACK_KIND_RUMOR`] or [`ACK_KIND_SUBSCRIBE`].
        kind: u8,
        /// Topic of the acknowledged frame.
        topic: TopicId,
        /// Rumor id being acknowledged; zero for subscribe acks.
        id: u32,
    },
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Zero-length input.
    Empty,
    /// Frame shorter than its fixed layout requires.
    Truncated,
    /// Frame longer than its declared contents.
    TrailingBytes,
    /// First byte is not a known opcode.
    UnknownOpcode(u8),
    /// Rumor TTL above [`MAX_TTL`].
    TtlTooLarge(u8),
    /// Rumor payload length above [`MAX_PAYLOAD`].
    PayloadTooLong(u8),
    /// Digest entry count above [`MAX_DIGEST_ENTRIES`].
    DigestTooLong(u8),
    /// Ack kind byte is neither rumor nor subscribe.
    BadAckKind(u8),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty frame"),
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after frame"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::TtlTooLarge(t) => write!(f, "ttl {t} above {MAX_TTL}"),
            DecodeError::PayloadTooLong(n) => write!(f, "payload length {n} above {MAX_PAYLOAD}"),
            DecodeError::DigestTooLong(n) => {
                write!(f, "digest count {n} above {MAX_DIGEST_ENTRIES}")
            }
            DecodeError::BadAckKind(k) => write!(f, "unknown ack kind {k}"),
        }
    }
}

/// Encode a frame into `out`, clearing it first.
///
/// This is the zero-copy entry point: a dirty reused (pooled) buffer is
/// fine, and the whole frame is written with no intermediate allocations.
pub fn encode_into(frame: &GossipFrame, out: &mut Vec<u8>) {
    out.clear();
    match frame {
        GossipFrame::Rumor(r) => {
            debug_assert!(r.payload.len() <= MAX_PAYLOAD);
            out.push(OP_RUMOR);
            out.extend_from_slice(&r.topic.to_be_bytes());
            out.extend_from_slice(&r.id.to_be_bytes());
            out.extend_from_slice(&r.origin.to_be_bytes());
            out.push(r.ttl);
            out.push(r.payload.len() as u8);
            out.extend_from_slice(&r.payload);
        }
        GossipFrame::Digest(entries) => {
            debug_assert!(entries.len() <= MAX_DIGEST_ENTRIES as usize);
            out.push(OP_DIGEST);
            out.push(entries.len() as u8);
            for (topic, id) in entries {
                out.extend_from_slice(&topic.to_be_bytes());
                out.extend_from_slice(&id.to_be_bytes());
            }
        }
        GossipFrame::Subscribe { topic } => {
            out.push(OP_SUBSCRIBE);
            out.extend_from_slice(&topic.to_be_bytes());
        }
        GossipFrame::Ack { kind, topic, id } => {
            debug_assert!(matches!(*kind, ACK_KIND_RUMOR | ACK_KIND_SUBSCRIBE));
            out.push(OP_ACK);
            out.push(*kind);
            out.extend_from_slice(&topic.to_be_bytes());
            out.extend_from_slice(&id.to_be_bytes());
        }
    }
}

/// Encode a frame to bytes.
pub fn encode(frame: &GossipFrame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(frame, &mut out);
    out
}

fn u16_at(bytes: &[u8], i: usize) -> u16 {
    u16::from_be_bytes([bytes[i], bytes[i + 1]])
}

fn u32_at(bytes: &[u8], i: usize) -> u32 {
    u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]])
}

/// Decode one frame; the entire input must be consumed.
pub fn decode(bytes: &[u8]) -> Result<GossipFrame, DecodeError> {
    let Some(&op) = bytes.first() else {
        return Err(DecodeError::Empty);
    };
    match op {
        OP_RUMOR => {
            if bytes.len() < RUMOR_HEADER_LEN {
                return Err(DecodeError::Truncated);
            }
            let ttl = bytes[9];
            if ttl > MAX_TTL {
                return Err(DecodeError::TtlTooLarge(ttl));
            }
            let plen = bytes[10];
            if plen as usize > MAX_PAYLOAD {
                return Err(DecodeError::PayloadTooLong(plen));
            }
            let want = RUMOR_HEADER_LEN + plen as usize;
            match bytes.len().cmp(&want) {
                core::cmp::Ordering::Less => return Err(DecodeError::Truncated),
                core::cmp::Ordering::Greater => return Err(DecodeError::TrailingBytes),
                core::cmp::Ordering::Equal => {}
            }
            Ok(GossipFrame::Rumor(Rumor {
                topic: u16_at(bytes, 1),
                id: u32_at(bytes, 3),
                origin: u16_at(bytes, 7),
                ttl,
                payload: bytes[RUMOR_HEADER_LEN..].to_vec(),
            }))
        }
        OP_DIGEST => {
            if bytes.len() < 2 {
                return Err(DecodeError::Truncated);
            }
            let count = bytes[1];
            if count > MAX_DIGEST_ENTRIES {
                return Err(DecodeError::DigestTooLong(count));
            }
            let want = 2 + count as usize * DIGEST_ENTRY_LEN;
            match bytes.len().cmp(&want) {
                core::cmp::Ordering::Less => return Err(DecodeError::Truncated),
                core::cmp::Ordering::Greater => return Err(DecodeError::TrailingBytes),
                core::cmp::Ordering::Equal => {}
            }
            let entries = (0..count as usize)
                .map(|k| {
                    let at = 2 + k * DIGEST_ENTRY_LEN;
                    (u16_at(bytes, at), u32_at(bytes, at + 2))
                })
                .collect();
            Ok(GossipFrame::Digest(entries))
        }
        OP_SUBSCRIBE => {
            match bytes.len().cmp(&3) {
                core::cmp::Ordering::Less => return Err(DecodeError::Truncated),
                core::cmp::Ordering::Greater => return Err(DecodeError::TrailingBytes),
                core::cmp::Ordering::Equal => {}
            }
            Ok(GossipFrame::Subscribe {
                topic: u16_at(bytes, 1),
            })
        }
        OP_ACK => {
            match bytes.len().cmp(&ACK_LEN) {
                core::cmp::Ordering::Less => return Err(DecodeError::Truncated),
                core::cmp::Ordering::Greater => return Err(DecodeError::TrailingBytes),
                core::cmp::Ordering::Equal => {}
            }
            let kind = bytes[1];
            if !matches!(kind, ACK_KIND_RUMOR | ACK_KIND_SUBSCRIBE) {
                return Err(DecodeError::BadAckKind(kind));
            }
            Ok(GossipFrame::Ack {
                kind,
                topic: u16_at(bytes, 2),
                id: u32_at(bytes, 4),
            })
        }
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rumor() -> Rumor {
        Rumor {
            topic: 7,
            id: 0x00070003,
            origin: 61007,
            ttl: 4,
            payload: vec![0xDE, 0xAD, 0xBE],
        }
    }

    #[test]
    fn rumor_roundtrip() {
        let f = GossipFrame::Rumor(sample_rumor());
        let bytes = encode(&f);
        assert_eq!(bytes.len(), RUMOR_HEADER_LEN + 3);
        assert_eq!(decode(&bytes).unwrap(), f);
    }

    #[test]
    fn digest_roundtrip() {
        let f = GossipFrame::Digest(vec![(1, 10), (2, 0xFFFF_FFFF), (900, 3)]);
        let bytes = encode(&f);
        assert_eq!(bytes.len(), 2 + 3 * DIGEST_ENTRY_LEN);
        assert_eq!(decode(&bytes).unwrap(), f);
    }

    #[test]
    fn subscribe_roundtrip() {
        let f = GossipFrame::Subscribe { topic: 0xBEEF };
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn ack_roundtrip() {
        let f = GossipFrame::Ack {
            kind: ACK_KIND_RUMOR,
            topic: 7,
            id: 0x00070003,
        };
        let bytes = encode(&f);
        assert_eq!(bytes.len(), ACK_LEN);
        assert_eq!(decode(&bytes).unwrap(), f);
        let f = GossipFrame::Ack {
            kind: ACK_KIND_SUBSCRIBE,
            topic: 0xBEEF,
            id: 0,
        };
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn ack_rejects_bad_kind_and_wrong_length() {
        let mut bytes = encode(&GossipFrame::Ack {
            kind: ACK_KIND_RUMOR,
            topic: 1,
            id: 2,
        });
        bytes[1] = 9;
        assert_eq!(decode(&bytes), Err(DecodeError::BadAckKind(9)));
        bytes[1] = ACK_KIND_RUMOR;
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes));
        bytes.truncate(ACK_LEN - 1);
        assert_eq!(decode(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn length_exactness_enforced() {
        let mut bytes = encode(&GossipFrame::Rumor(sample_rumor()));
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes));
        bytes.truncate(RUMOR_HEADER_LEN - 1);
        assert_eq!(decode(&bytes), Err(DecodeError::Truncated));
        assert_eq!(decode(&[]), Err(DecodeError::Empty));
        assert_eq!(decode(&[0x77, 0, 0]), Err(DecodeError::UnknownOpcode(0x77)));
    }

    #[test]
    fn limits_enforced() {
        let mut r = sample_rumor();
        r.ttl = MAX_TTL + 1;
        let bytes = encode(&GossipFrame::Rumor(r));
        assert_eq!(decode(&bytes), Err(DecodeError::TtlTooLarge(MAX_TTL + 1)));

        // An over-long digest count is rejected by a *conforming* decoder;
        // the seeded bug in the node bypasses exactly this check.
        let bytes = vec![OP_DIGEST, MAX_DIGEST_ENTRIES + 1];
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::DigestTooLong(MAX_DIGEST_ENTRIES + 1))
        );
    }

    #[test]
    fn decode_never_panics_on_noise() {
        // Deterministic byte soup across lengths 0..64.
        let mut state = 0x9E37u32;
        for len in 0..64usize {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                bytes.push((state >> 24) as u8);
            }
            let _ = decode(&bytes);
        }
    }
}
