//! `--baseline`: the debt ratchet. A baseline file records currently
//! tolerated violations as `(rule, path, message)` entries — line
//! numbers are deliberately excluded so unrelated edits above a site
//! don't churn the file. Ratcheting compares the live scan against the
//! baseline as multisets:
//!
//! * a violation **not** in the baseline is *new* debt → CI fails;
//! * a baseline entry with no live violation is *stale* (the debt was
//!   paid, or the code moved) → CI fails until the entry is removed.
//!
//! Debt can therefore only shrink. The committed baseline is empty at
//! merge; a non-empty one exists only on in-flight branches that landed
//! a justified exception via review.

use std::collections::BTreeMap;

use crate::{json_escape, Finding, LintReport};

/// One tolerated violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Exact finding message.
    pub message: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Tolerated violations, in file order.
    pub entries: Vec<BaselineEntry>,
}

/// Outcome of ratcheting a report against a baseline.
#[derive(Debug, Default)]
pub struct RatchetOutcome {
    /// Live violations absent from the baseline — new debt.
    pub new: Vec<Finding>,
    /// Baseline entries with no live counterpart — paid-off debt that
    /// must be removed from the file.
    pub stale: Vec<BaselineEntry>,
}

impl RatchetOutcome {
    /// Whether the ratchet passes (no new and no stale debt).
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Snapshot the report's current violations as a baseline.
    pub fn from_report(report: &LintReport) -> Baseline {
        Baseline {
            entries: report
                .violations
                .iter()
                .map(|v| BaselineEntry {
                    rule: v.rule.clone(),
                    path: v.path.clone(),
                    message: v.message.clone(),
                })
                .collect(),
        }
    }

    /// Serialize to the on-disk JSON shape.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"message\": \"{}\"}}{comma}",
                json_escape(&e.rule),
                json_escape(&e.path),
                json_escape(&e.message)
            ));
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse a baseline file. Accepts any JSON object with an `entries`
    /// array of `{rule, path, message}` objects (std-only mini parser —
    /// this crate takes no dependencies by design).
    pub fn parse(s: &str) -> Result<Baseline, String> {
        let value = Json::parse(s)?;
        let Json::Obj(pairs) = value else {
            return Err("baseline root must be a JSON object".into());
        };
        let Some(entries) = pairs.iter().find(|(k, _)| k == "entries").map(|(_, v)| v) else {
            return Err("baseline object has no `entries` array".into());
        };
        let Json::Arr(items) = entries else {
            return Err("`entries` must be an array".into());
        };
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let Json::Obj(fields) = item else {
                return Err(format!("entries[{i}] is not an object"));
            };
            let get = |key: &str| -> Result<String, String> {
                match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    Some(Json::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("entries[{i}] is missing string field `{key}`")),
                }
            };
            out.push(BaselineEntry {
                rule: get("rule")?,
                path: get("path")?,
                message: get("message")?,
            });
        }
        Ok(Baseline { entries: out })
    }
}

/// Compare the report's violations against the baseline as multisets
/// keyed by `(rule, path, message)`.
pub fn ratchet(report: &LintReport, baseline: &Baseline) -> RatchetOutcome {
    let key_of = |rule: &str, path: &str, message: &str| format!("{rule}\u{0}{path}\u{0}{message}");
    let mut budget: BTreeMap<String, usize> = BTreeMap::new();
    for e in &baseline.entries {
        *budget
            .entry(key_of(&e.rule, &e.path, &e.message))
            .or_insert(0) += 1;
    }
    let mut out = RatchetOutcome::default();
    for v in &report.violations {
        let key = key_of(&v.rule, &v.path, &v.message);
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.new.push(v.clone()),
        }
    }
    // Whatever budget remains was never consumed: stale entries, in
    // baseline order, respecting multiplicity.
    for e in &baseline.entries {
        let key = key_of(&e.rule, &e.path, &e.message);
        if let Some(n) = budget.get_mut(&key) {
            if *n > 0 {
                *n -= 1;
                out.stale.push(e.clone());
            }
        }
    }
    out
}

/// Minimal JSON value for the baseline subset.
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    /// Numbers, booleans and null are accepted but unused.
    Other,
}

impl Json {
    fn parse(s: &str) -> Result<Json, String> {
        let chars: Vec<char> = s.chars().collect();
        let mut i = 0usize;
        let v = parse_value(&chars, &mut i)?;
        skip_ws(&chars, &mut i);
        if i != chars.len() {
            return Err(format!("trailing characters at offset {i}"));
        }
        Ok(v)
    }
}

fn skip_ws(chars: &[char], i: &mut usize) {
    while chars.get(*i).is_some_and(|c| c.is_whitespace()) {
        *i += 1;
    }
}

fn parse_value(chars: &[char], i: &mut usize) -> Result<Json, String> {
    skip_ws(chars, i);
    match chars.get(*i) {
        Some('{') => {
            *i += 1;
            let mut pairs = Vec::new();
            skip_ws(chars, i);
            if chars.get(*i) == Some(&'}') {
                *i += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(chars, i);
                let Json::Str(key) = parse_value(chars, i)? else {
                    return Err(format!("object key at offset {i} is not a string"));
                };
                skip_ws(chars, i);
                if chars.get(*i) != Some(&':') {
                    return Err(format!("expected `:` at offset {i}"));
                }
                *i += 1;
                let value = parse_value(chars, i)?;
                pairs.push((key, value));
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => *i += 1,
                    Some('}') => {
                        *i += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {i}")),
                }
            }
        }
        Some('[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(chars, i);
            if chars.get(*i) == Some(&']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, i)?);
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => *i += 1,
                    Some(']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {i}")),
                }
            }
        }
        Some('"') => {
            *i += 1;
            let mut out = String::new();
            loop {
                match chars.get(*i) {
                    None => return Err("unterminated string".into()),
                    Some('"') => {
                        *i += 1;
                        return Ok(Json::Str(out));
                    }
                    Some('\\') => {
                        *i += 1;
                        match chars.get(*i) {
                            Some('"') => out.push('"'),
                            Some('\\') => out.push('\\'),
                            Some('/') => out.push('/'),
                            Some('n') => out.push('\n'),
                            Some('t') => out.push('\t'),
                            Some('r') => out.push('\r'),
                            Some('b') => out.push('\u{8}'),
                            Some('f') => out.push('\u{c}'),
                            Some('u') => {
                                let hex: String = chars
                                    .get(*i + 1..*i + 5)
                                    .unwrap_or_default()
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| format!("bad \\u escape at offset {i}"))?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *i += 4;
                            }
                            _ => return Err(format!("bad escape at offset {i}")),
                        }
                        *i += 1;
                    }
                    Some(c) => {
                        out.push(*c);
                        *i += 1;
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == '-' || *c == 't' || *c == 'f' || *c == 'n' => {
            // Number / true / false / null: consume the token, discard.
            while chars
                .get(*i)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '-' || *c == '+')
            {
                *i += 1;
            }
            Ok(Json::Other)
        }
        _ => Err(format!("unexpected character at offset {i}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan_files, SourceFile};

    fn sample_report() -> LintReport {
        scan_files(&[SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: "fn f() { let t = std::time::Instant::now(); }\n".into(),
        }])
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let report = sample_report();
        let b = Baseline::from_report(&report);
        assert_eq!(b.entries.len(), 1);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed.entries, b.entries);
    }

    #[test]
    fn empty_baseline_parses_and_flags_everything_as_new() {
        let baseline = Baseline::parse("{\n  \"entries\": []\n}\n").unwrap();
        let outcome = ratchet(&sample_report(), &baseline);
        assert_eq!(outcome.new.len(), 1);
        assert!(outcome.stale.is_empty());
        assert!(!outcome.is_clean());
    }

    #[test]
    fn baselined_debt_passes_and_paid_debt_goes_stale() {
        let report = sample_report();
        let baseline = Baseline::from_report(&report);
        assert!(ratchet(&report, &baseline).is_clean());

        let clean_report = scan_files(&[SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: "fn f() {}\n".into(),
        }]);
        let outcome = ratchet(&clean_report, &baseline);
        assert!(outcome.new.is_empty());
        assert_eq!(outcome.stale.len(), 1, "paid-off debt must be pruned");
    }

    #[test]
    fn multiset_semantics_respect_duplicate_messages() {
        let content = "fn f() { let a = std::time::Instant::now(); }\n\
                       fn g() { let b = std::time::Instant::now(); }\n";
        let report = scan_files(&[SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: content.into(),
        }]);
        assert_eq!(report.violations.len(), 2);
        // Baseline holds only ONE of the two identical-message findings:
        // the second live one is new debt.
        let mut baseline = Baseline::from_report(&report);
        baseline.entries.truncate(1);
        let outcome = ratchet(&report, &baseline);
        assert_eq!(outcome.new.len(), 1);
        assert!(outcome.stale.is_empty());
    }
}
