//! `--fix`: mechanical autofixes for the rules whose remediation is a
//! pure rewrite. Only unallowed violations are touched (a justified
//! allow is a decision, not debt), and only single-line sites — anything
//! structural is left for a human. Fixes are idempotent by construction:
//! a fixed site no longer matches its rule, so a second pass finds
//! nothing (the fixture suite locks this in).
//!
//! | rule | rewrite |
//! |---|---|
//! | `lock-hygiene` | `recv.lock().unwrap()` → `crate::sync::lock_unpoisoned(&recv, "<name>")` |
//! | `stale-allow` | delete the annotation (own-line) or truncate it off the code line |

use crate::{marker, scan_files, SourceFile};

/// One file rewritten by [`apply_fixes`].
pub struct FixedFile {
    /// Workspace-relative path (same as the input [`SourceFile`]).
    pub path: String,
    /// Full new contents.
    pub content: String,
    /// Number of individual fix edits applied.
    pub edits: usize,
}

enum Action {
    /// Replace the line with the given text.
    Replace(String),
    /// Delete the line entirely.
    Delete,
}

/// Compute mechanical fixes for the current violations of `files`.
/// Returns only the files that changed; callers decide whether to write
/// them back to disk. Running the result through `apply_fixes` again
/// yields an empty list.
pub fn apply_fixes(files: &[SourceFile]) -> Vec<FixedFile> {
    let report = scan_files(files);
    let mut out = Vec::new();
    for file in files {
        let lines: Vec<&str> = file.content.lines().collect();
        // (line index, action), computed per finding then applied
        // bottom-up so earlier indices stay valid.
        let mut actions: Vec<(usize, Action)> = Vec::new();
        for v in report.violations.iter().filter(|v| v.path == file.path) {
            let Some(raw) = lines.get(v.line - 1) else {
                continue;
            };
            let action = match v.rule.as_str() {
                "lock-hygiene" => fix_lock_line(raw),
                "stale-allow" => fix_stale_line(raw),
                _ => None,
            };
            if let Some(action) = action {
                actions.push((v.line - 1, action));
            }
        }
        if actions.is_empty() {
            continue;
        }
        actions.sort_by_key(|(i, _)| *i);
        actions.dedup_by_key(|(i, _)| *i);
        let edits = actions.len();
        let mut new_lines: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        for (idx, action) in actions.into_iter().rev() {
            match action {
                Action::Replace(text) => new_lines[idx] = text,
                Action::Delete => {
                    new_lines.remove(idx);
                }
            }
        }
        let mut content = new_lines.join("\n");
        if file.content.ends_with('\n') {
            content.push('\n');
        }
        out.push(FixedFile {
            path: file.path.clone(),
            content,
            edits,
        });
    }
    out
}

/// Rewrite the first `recv.lock().unwrap()` on the line where `recv` is
/// a plain identifier dot-chain (`self.open`, `batch.results`, …). Any
/// other receiver shape (call results, parenthesized expressions,
/// multi-line formatting) is left alone — those need human judgment.
fn fix_lock_line(raw: &str) -> Option<Action> {
    const PAT: &str = ".lock().unwrap()";
    let at = raw.find(PAT)?;
    let before = &raw[..at];
    // Walk the receiver backwards: identifier chars and `.` only.
    let recv_start = before
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == '.')
        .last()
        .map(|(i, _)| i)?;
    let recv = &before[recv_start..];
    if recv.is_empty()
        || recv.starts_with('.')
        || recv.ends_with('.')
        || recv.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return None;
    }
    let name = recv.rsplit('.').next().unwrap_or(recv);
    let fixed = format!(
        "{}crate::sync::lock_unpoisoned(&{recv}, \"{name}\"){}",
        &raw[..recv_start],
        &raw[at + PAT.len()..]
    );
    Some(Action::Replace(fixed))
}

/// Remove a stale allow annotation: delete the whole line when it is a
/// comment-only line, otherwise truncate from the comment that carries
/// the marker.
fn fix_stale_line(raw: &str) -> Option<Action> {
    let marker = marker();
    let comment_at = raw.find("//")?;
    raw[comment_at..].find(&marker)?;
    if raw.trim_start().starts_with("//") {
        Some(Action::Delete)
    } else {
        Some(Action::Replace(raw[..comment_at].trim_end().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fix_rewrites_the_receiver_chain() {
        let fixed = fix_lock_line("        let g = self.open.lock().unwrap();");
        let Some(Action::Replace(text)) = fixed else {
            panic!("expected a replacement");
        };
        assert_eq!(
            text,
            "        let g = crate::sync::lock_unpoisoned(&self.open, \"open\");"
        );
    }

    #[test]
    fn lock_fix_declines_non_trivial_receivers() {
        assert!(fix_lock_line("let g = (a + b).lock().unwrap();").is_none());
        assert!(fix_lock_line(".lock().unwrap()").is_none());
    }

    #[test]
    fn stale_fix_deletes_own_line_and_truncates_trailing() {
        let m = marker();
        let own = format!("    // {m}lock-hygiene): obsolete");
        assert!(matches!(fix_stale_line(&own), Some(Action::Delete)));
        let trailing = format!("let x = 1; // {m}lock-hygiene): obsolete");
        let Some(Action::Replace(text)) = fix_stale_line(&trailing) else {
            panic!("expected a replacement");
        };
        assert_eq!(text, "let x = 1;");
    }
}
