//! The workspace item graph: functions, impls, structs, attributes and
//! name-resolved intra-workspace call edges, built from the token stream
//! of every scanned file.
//!
//! Resolution is heuristic by design (no rustc, no syn): a qualified call
//! `T::f(...)` resolves to `fn f` inside `impl T` (or inside the file
//! whose stem is `T`, for module-qualified calls), a method call `.f(...)`
//! resolves to every impl/trait fn named `f`, and a bare call `f(...)`
//! resolves to every free fn named `f` plus same-impl siblings. That
//! over-approximates the true call graph, which is the right direction
//! for a reachability-based panic-freedom rule: false edges can only make
//! the rule *stricter*.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{tokenize, Tok, TokKind};
use crate::Prepared;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CallKind {
    /// `f(...)`
    Bare,
    /// `.f(...)`
    Method,
    /// `Q::f(...)` — qualifier is the last path segment before the name.
    Qualified(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct Call {
    pub(crate) kind: CallKind,
    pub(crate) name: String,
}

/// A `fn` item.
#[derive(Debug)]
pub(crate) struct FnItem {
    /// Index into [`ItemGraph::files`].
    pub(crate) file: usize,
    pub(crate) name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub(crate) impl_of: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub(crate) line: usize,
    /// Token-index span of the body braces (inclusive), if the fn has one.
    pub(crate) body: Option<(usize, usize)>,
    /// Attributes directly on this fn: (line, raw text including `#[..]`).
    pub(crate) attrs: Vec<(usize, String)>,
    /// Raw texts of attributes on enclosing `mod`/`impl` containers.
    pub(crate) container_attrs: Vec<String>,
    /// Inside a `#[cfg(test)]` module or a `tests/` tree.
    pub(crate) in_test: bool,
    pub(crate) calls: Vec<Call>,
    /// Resolved callee indices into [`ItemGraph::fns`].
    pub(crate) callees: Vec<usize>,
}

/// One named field of a struct.
#[derive(Debug)]
pub(crate) struct Field {
    pub(crate) name: String,
    /// 1-based declaration line.
    pub(crate) line: usize,
    /// Capitalized identifiers appearing in the field's type — the
    /// struct-reference edges `schema-drift` walks (sees through `Vec<_>`,
    /// `Option<_>`, `BTreeMap<_, _>` and friends).
    pub(crate) ty_idents: Vec<String>,
}

/// A `struct` item with named fields.
#[derive(Debug)]
pub(crate) struct StructItem {
    pub(crate) file: usize,
    pub(crate) name: String,
    /// Idents inside a `#[derive(...)]` attribute on the struct.
    pub(crate) derives: Vec<String>,
    pub(crate) fields: Vec<Field>,
}

/// What an attribute is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Attached {
    Fn,
    Struct,
    Enum,
    Mod,
    Impl,
    /// A struct/enum field.
    Field,
    /// A statement (or expression) inside a fn body.
    Stmt,
    Other,
}

/// One `#[...]` attribute group.
#[derive(Debug)]
pub(crate) struct AttrRec {
    pub(crate) file: usize,
    /// 1-based line of the `#`.
    pub(crate) line: usize,
    /// Raw source text of the group, including delimiters — recovered
    /// from the unblanked lines so `feature = "race-audit"` is readable.
    pub(crate) text: String,
    pub(crate) attached: Attached,
    /// Enclosing fn (index into [`ItemGraph::fns`]) for `Stmt` attrs.
    pub(crate) enclosing_fn: Option<usize>,
}

/// Tokenized file, retained so rules can re-walk bodies.
pub(crate) struct FileToks {
    pub(crate) path: String,
    pub(crate) toks: Vec<Tok>,
}

/// The whole workspace graph.
pub(crate) struct ItemGraph {
    pub(crate) files: Vec<FileToks>,
    pub(crate) fns: Vec<FnItem>,
    pub(crate) structs: Vec<StructItem>,
    pub(crate) attrs: Vec<AttrRec>,
}

/// Words that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "mut", "let",
    "else", "fn", "impl", "use", "pub", "where", "unsafe", "async", "dyn", "crate", "super",
];

struct RawAttr {
    /// Token span of `#` .. matching `]`, inclusive.
    span: (usize, usize),
    line: usize,
    text: String,
}

/// An item head found in the linear scan.
struct Head {
    kind: HeadKind,
    name: String,
    /// Token index of the keyword.
    at: usize,
    line: usize,
    /// Attr groups directly above: (line, text).
    attrs: Vec<(usize, String)>,
    /// Body token span (inclusive braces), if any.
    body: Option<(usize, usize)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeadKind {
    Fn,
    Struct,
    Enum,
    Mod,
    Impl,
    Trait,
}

impl ItemGraph {
    /// Build the graph over every prepared file.
    pub(crate) fn build(prepared: &[Prepared]) -> ItemGraph {
        let mut graph = ItemGraph {
            files: Vec::with_capacity(prepared.len()),
            fns: Vec::new(),
            structs: Vec::new(),
            attrs: Vec::new(),
        };
        for p in prepared {
            build_file(p, &mut graph);
        }
        resolve_calls(&mut graph);
        graph
    }

    /// Indices of fns transitively reachable from the given roots
    /// (inclusive), following resolved call edges.
    pub(crate) fn reachable(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut work: Vec<usize> = roots.to_vec();
        while let Some(f) = work.pop() {
            for &c in &self.fns[f].callees {
                if seen.insert(c) {
                    work.push(c);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
impl ItemGraph {
    /// Find a fn by file-path suffix and name (first match) — test
    /// convenience; rules use their own `find_root` with an impl filter.
    fn find_fn(&self, path_suffix: &str, name: &str) -> Option<usize> {
        self.fns.iter().position(|f| {
            f.name == name && !f.in_test && self.files[f.file].path.ends_with(path_suffix)
        })
    }
}

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.starts_with("examples/")
}

/// Recover the raw text of a token span from the unblanked lines.
fn raw_span_text(raw: &[String], toks: &[Tok], span: (usize, usize)) -> String {
    let (a, b) = span;
    let (sl, sc) = (toks[a].line, toks[a].col);
    let (el, ec) = (toks[b].line, toks[b].col);
    if sl == el {
        let line = &raw[sl - 1];
        let chars: Vec<char> = line.chars().collect();
        return chars[sc.min(chars.len())..(ec + 1).min(chars.len())]
            .iter()
            .collect();
    }
    let mut out = String::new();
    for l in sl..=el {
        let chars: Vec<char> = raw[l - 1].chars().collect();
        let from = if l == sl { sc } else { 0 };
        let to = if l == el {
            (ec + 1).min(chars.len())
        } else {
            chars.len()
        };
        out.push_str(&chars[from.min(chars.len())..to].iter().collect::<String>());
        out.push(' ');
    }
    out.trim_end().to_string()
}

/// Scan forward over a balanced bracket pair starting at `open` (which
/// must index the opening token); returns the index of the matching
/// closer.
fn match_bracket(toks: &[Tok], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Parse the self-type of an `impl` (or the name of a `trait`) whose
/// keyword sits at `at`. For `impl<T> Trait for Type<T>` this is `Type`;
/// for `impl Type` it is `Type`.
fn impl_type_name(toks: &[Tok], at: usize) -> Option<String> {
    let mut i = at + 1;
    // Skip generics.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < toks.len() {
            if toks[i].is_punct('<') {
                depth += 1;
            } else if toks[i].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let read_path = |i: &mut usize| -> Option<String> {
        let mut last: Option<String> = None;
        loop {
            // Skip reference/pointer/dyn noise.
            while toks.get(*i).is_some_and(|t| {
                t.is_punct('&')
                    || t.kind == TokKind::Lifetime
                    || t.is_ident("mut")
                    || t.is_ident("dyn")
            }) {
                *i += 1;
            }
            let t = toks.get(*i)?;
            if t.kind != TokKind::Ident {
                return last;
            }
            last = Some(t.text.clone());
            *i += 1;
            // Generic args on this segment.
            if toks.get(*i).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0i32;
                while *i < toks.len() {
                    if toks[*i].is_punct('<') {
                        depth += 1;
                    } else if toks[*i].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            *i += 1;
                            break;
                        }
                    }
                    *i += 1;
                }
            }
            // Continue through `::`.
            if toks.get(*i).is_some_and(|t| t.is_punct(':'))
                && toks.get(*i + 1).is_some_and(|t| t.is_punct(':'))
            {
                *i += 2;
                continue;
            }
            return last;
        }
    };
    let first = read_path(&mut i)?;
    if toks.get(i).is_some_and(|t| t.is_ident("for")) {
        i += 1;
        return read_path(&mut i).or(Some(first));
    }
    Some(first)
}

fn build_file(p: &Prepared, graph: &mut ItemGraph) {
    let file_idx = graph.files.len();
    let toks = tokenize(&p.code);

    // Pass 1: attribute groups.
    let mut attrs: Vec<RawAttr> = Vec::new();
    {
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_punct('#') {
                let mut j = i + 1;
                // `#![...]` inner attributes too.
                if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    if let Some(close) = match_bracket(&toks, j, '[', ']') {
                        attrs.push(RawAttr {
                            span: (i, close),
                            line: toks[i].line,
                            text: raw_span_text(&p.raw, &toks, (i, close)),
                        });
                        i = close + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    let in_attr = |idx: usize| attrs.iter().any(|a| a.span.0 <= idx && idx <= a.span.1);

    // Pass 2: item heads with body spans.
    let mut heads: Vec<Head> = Vec::new();
    {
        let mut i = 0usize;
        while i < toks.len() {
            if in_attr(i) {
                i += 1;
                continue;
            }
            let t = &toks[i];
            let kind = if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "fn" => Some(HeadKind::Fn),
                    "struct" => Some(HeadKind::Struct),
                    "enum" => Some(HeadKind::Enum),
                    "mod" => Some(HeadKind::Mod),
                    "impl" => Some(HeadKind::Impl),
                    "trait" => Some(HeadKind::Trait),
                    _ => None,
                }
            } else {
                None
            };
            let Some(kind) = kind else {
                i += 1;
                continue;
            };
            // `fn`-pointer types (`fn(u8) -> u8`) have no name ident.
            let name = match kind {
                HeadKind::Impl | HeadKind::Trait => impl_type_name(&toks, i),
                _ => toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.clone()),
            };
            let Some(name) = name else {
                i += 1;
                continue;
            };
            // Directly-preceding attribute groups (contiguous above).
            let mut head_attrs: Vec<(usize, String)> = Vec::new();
            {
                let mut edge = i;
                // Walk attr groups backwards while they end right before
                // `edge` (allowing `pub`, `unsafe`, `const`, `async`,
                // `extern`, visibility parens between).
                loop {
                    let mut k = edge;
                    while k > 0 {
                        let prev = &toks[k - 1];
                        let skippable = prev.kind == TokKind::Ident
                            && matches!(
                                prev.text.as_str(),
                                "pub" | "unsafe" | "const" | "async" | "extern" | "default"
                            )
                            || prev.is_punct('(')
                            || prev.is_punct(')')
                            || prev.is_ident("crate")
                            || prev.is_ident("super")
                            || prev.kind == TokKind::Str;
                        if skippable {
                            k -= 1;
                        } else {
                            break;
                        }
                    }
                    let Some(a) = attrs.iter().find(|a| a.span.1 + 1 == k) else {
                        break;
                    };
                    head_attrs.push((a.line, a.text.clone()));
                    edge = a.span.0;
                }
                head_attrs.reverse();
            }
            // Find the body: first `{` before any `;` at bracket depth 0.
            let mut body = None;
            {
                let mut j = i + 1;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                while j < toks.len() {
                    let tj = &toks[j];
                    if tj.is_punct('(') {
                        paren += 1;
                    } else if tj.is_punct(')') {
                        paren -= 1;
                    } else if tj.is_punct('[') {
                        bracket += 1;
                    } else if tj.is_punct(']') {
                        bracket -= 1;
                    } else if paren == 0 && bracket == 0 {
                        if tj.is_punct(';') {
                            break;
                        }
                        if tj.is_punct('{') {
                            body = match_bracket(&toks, j, '{', '}').map(|c| (j, c));
                            break;
                        }
                    }
                    j += 1;
                }
            }
            heads.push(Head {
                kind,
                name,
                at: i,
                line: t.line,
                attrs: head_attrs,
                body,
            });
            i += 1;
        }
    }

    // Containment helpers over head body spans.
    let containers_of = |at: usize, kinds: &[HeadKind]| -> Vec<&Head> {
        heads
            .iter()
            .filter(|h| kinds.contains(&h.kind) && h.body.is_some_and(|(a, b)| a < at && at <= b))
            .collect()
    };

    let file_is_test = is_test_path(&p.path);

    // Materialize fns and structs.
    let fn_base = graph.fns.len();
    for h in &heads {
        match h.kind {
            HeadKind::Fn => {
                let impls = containers_of(h.at, &[HeadKind::Impl, HeadKind::Trait]);
                let impl_of = impls.last().map(|c| c.name.clone());
                let mods = containers_of(h.at, &[HeadKind::Mod, HeadKind::Impl]);
                let container_attrs: Vec<String> = mods
                    .iter()
                    .flat_map(|m| m.attrs.iter().map(|(_, t)| t.clone()))
                    .collect();
                let in_test = file_is_test
                    || containers_of(h.at, &[HeadKind::Mod])
                        .iter()
                        .any(|m| m.attrs.iter().any(|(_, t)| t.contains("cfg(test")));
                graph.fns.push(FnItem {
                    file: file_idx,
                    name: h.name.clone(),
                    impl_of,
                    line: h.line,
                    body: h.body,
                    attrs: h.attrs.clone(),
                    container_attrs,
                    in_test,
                    calls: Vec::new(),
                    callees: Vec::new(),
                });
            }
            HeadKind::Struct => {
                let derives = h
                    .attrs
                    .iter()
                    .filter(|(_, t)| t.contains("derive("))
                    .flat_map(|(_, t)| {
                        t.split(|c: char| !(c.is_alphanumeric() || c == '_'))
                            .filter(|w| !w.is_empty())
                            .map(str::to_string)
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let mut fields = Vec::new();
                if let Some((open, close)) = h.body {
                    // Named fields at depth 1 of the struct body:
                    // `ident : <type tokens> ,`.
                    let mut depth = 0i32;
                    let mut j = open;
                    while j <= close {
                        let tj = &toks[j];
                        if tj.is_punct('{') {
                            depth += 1;
                        } else if tj.is_punct('}') {
                            depth -= 1;
                        } else if depth == 1
                            && tj.kind == TokKind::Ident
                            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                            && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                            && !in_attr(j)
                        {
                            // Type tokens run to the `,` or `}` at depth 1
                            // (angle depth tracked so `BTreeMap<K, V>`
                            // commas do not end the field).
                            let mut ty_idents = Vec::new();
                            let mut k = j + 2;
                            let mut angle = 0i32;
                            while k <= close {
                                let tk = &toks[k];
                                if tk.is_punct('<') {
                                    angle += 1;
                                } else if tk.is_punct('>') {
                                    angle -= 1;
                                } else if angle == 0 && (tk.is_punct(',') || tk.is_punct('}')) {
                                    break;
                                } else if tk.kind == TokKind::Ident
                                    && tk.text.chars().next().is_some_and(char::is_uppercase)
                                {
                                    ty_idents.push(tk.text.clone());
                                }
                                k += 1;
                            }
                            fields.push(Field {
                                name: tj.text.clone(),
                                line: tj.line,
                                ty_idents,
                            });
                            j = k;
                            continue;
                        }
                        j += 1;
                    }
                }
                graph.structs.push(StructItem {
                    file: file_idx,
                    name: h.name.clone(),
                    derives,
                    fields,
                });
            }
            _ => {}
        }
    }

    // Attribute records with attachment kinds.
    for a in &attrs {
        let after = a.span.1 + 1;
        // Skip over stacked attrs / visibility to the item keyword.
        let mut j = after;
        while j < toks.len() {
            if in_attr(j) {
                j += 1;
                continue;
            }
            let t = &toks[j];
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "pub" | "unsafe" | "const" | "async" | "extern" | "default" | "crate" | "super"
                )
            {
                j += 1;
                continue;
            }
            if t.is_punct('(') || t.is_punct(')') {
                j += 1;
                continue;
            }
            break;
        }
        let attached = match toks.get(j) {
            Some(t) if t.is_ident("fn") => Attached::Fn,
            Some(t) if t.is_ident("struct") => Attached::Struct,
            Some(t) if t.is_ident("enum") => Attached::Enum,
            Some(t) if t.is_ident("mod") => Attached::Mod,
            Some(t) if t.is_ident("impl") => Attached::Impl,
            Some(t) if t.is_ident("use") || t.is_ident("type") || t.is_ident("static") => {
                Attached::Other
            }
            Some(t)
                if t.kind == TokKind::Ident
                    && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && heads.iter().any(|h| {
                        matches!(h.kind, HeadKind::Struct | HeadKind::Enum)
                            && h.body.is_some_and(|(x, y)| x < j && j <= y)
                    }) =>
            {
                Attached::Field
            }
            Some(_) => {
                let inside_fn = heads.iter().any(|h| {
                    h.kind == HeadKind::Fn && h.body.is_some_and(|(x, y)| x < j && j <= y)
                });
                if inside_fn {
                    Attached::Stmt
                } else {
                    Attached::Other
                }
            }
            None => Attached::Other,
        };
        // Resolve the enclosing fn index for statement attrs.
        let enclosing_fn = if attached == Attached::Stmt {
            let mut best: Option<usize> = None;
            for (fi, h) in heads.iter().filter(|h| h.kind == HeadKind::Fn).enumerate() {
                if h.body.is_some_and(|(x, y)| x < a.span.0 && a.span.0 <= y) {
                    best = Some(fn_base + fi);
                }
            }
            best
        } else {
            None
        };
        graph.attrs.push(AttrRec {
            file: file_idx,
            line: a.line,
            text: a.text.clone(),
            attached,
            enclosing_fn,
        });
    }

    // Call extraction per fn, skipping nested fn bodies and attr spans.
    let fn_spans: Vec<Option<(usize, usize)>> = heads
        .iter()
        .filter(|h| h.kind == HeadKind::Fn)
        .map(|h| h.body)
        .collect();
    for (local, h) in heads.iter().filter(|h| h.kind == HeadKind::Fn).enumerate() {
        let Some((open, close)) = h.body else {
            continue;
        };
        let nested: Vec<(usize, usize)> = fn_spans
            .iter()
            .enumerate()
            .filter(|&(o, _)| o != local)
            .filter_map(|(_, s)| *s)
            .filter(|&(a, b)| a > open && b < close)
            .collect();
        let mut calls: Vec<Call> = Vec::new();
        let mut j = open;
        while j <= close {
            if let Some(&(_, nb)) = nested.iter().find(|&&(na, nb)| na <= j && j <= nb) {
                // Inside a nested fn: jump past it.
                j = nb + 1;
                continue;
            }
            if in_attr(j) {
                j += 1;
                continue;
            }
            let t = &toks[j];
            if t.kind == TokKind::Ident
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                let prev = if j > 0 { Some(&toks[j - 1]) } else { None };
                let kind = if prev.is_some_and(|p| p.is_punct('.')) {
                    Some(CallKind::Method)
                } else if j >= 3
                    && toks[j - 1].is_punct(':')
                    && toks[j - 2].is_punct(':')
                    && toks[j - 3].kind == TokKind::Ident
                {
                    Some(CallKind::Qualified(toks[j - 3].text.clone()))
                } else if prev.is_some_and(|p| p.is_ident("fn")) {
                    None
                } else {
                    Some(CallKind::Bare)
                };
                if let Some(kind) = kind {
                    calls.push(Call {
                        kind,
                        name: t.text.clone(),
                    });
                }
            }
            j += 1;
        }
        // Dedup.
        calls.sort_by(|a, b| (&a.name, fmt_kind(&a.kind)).cmp(&(&b.name, fmt_kind(&b.kind))));
        calls.dedup_by(|a, b| a.name == b.name && a.kind == b.kind);
        graph.fns[fn_base + local].calls = calls;
    }

    graph.files.push(FileToks {
        path: p.path.clone(),
        toks,
    });
}

fn fmt_kind(k: &CallKind) -> String {
    match k {
        CallKind::Bare => "b".into(),
        CallKind::Method => "m".into(),
        CallKind::Qualified(q) => format!("q{q}"),
    }
}

/// File stem (`strip` for `crates/lint/src/strip.rs`).
fn stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

fn resolve_calls(graph: &mut ItemGraph) {
    // Name tables over non-test fns only: test helpers share names with
    // engine fns but are never on a hot path.
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_impl: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_stem: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        match &f.impl_of {
            Some(t) => {
                methods.entry(&f.name).or_default().push(i);
                by_impl.entry((t.as_str(), &f.name)).or_default().push(i);
            }
            None => {
                free.entry(&f.name).or_default().push(i);
            }
        }
        by_stem
            .entry((stem(&graph.files[f.file].path), &f.name))
            .or_default()
            .push(i);
    }

    let mut callees: Vec<Vec<usize>> = Vec::with_capacity(graph.fns.len());
    for f in &graph.fns {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for c in &f.calls {
            match &c.kind {
                CallKind::Bare => {
                    if let Some(v) = free.get(c.name.as_str()) {
                        out.extend(v.iter().copied());
                    }
                    if let Some(t) = &f.impl_of {
                        if let Some(v) = by_impl.get(&(t.as_str(), c.name.as_str())) {
                            out.extend(v.iter().copied());
                        }
                    }
                }
                CallKind::Method => {
                    if let Some(v) = methods.get(c.name.as_str()) {
                        out.extend(v.iter().copied());
                    }
                }
                CallKind::Qualified(q) => {
                    let q = if q == "Self" {
                        f.impl_of.clone().unwrap_or_else(|| q.clone())
                    } else {
                        q.clone()
                    };
                    if let Some(v) = by_impl.get(&(q.as_str(), c.name.as_str())) {
                        out.extend(v.iter().copied());
                    } else if let Some(v) = by_stem.get(&(q.as_str(), c.name.as_str())) {
                        out.extend(v.iter().copied());
                    }
                }
            }
        }
        callees.push(out.into_iter().collect());
    }
    for (f, c) in graph.fns.iter_mut().zip(callees) {
        f.callees = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::blank_noncode;

    fn graph_of(files: &[(&str, &str)]) -> ItemGraph {
        let prepared: Vec<Prepared> = files
            .iter()
            .map(|(path, content)| Prepared {
                path: path.to_string(),
                raw: content.lines().map(str::to_string).collect(),
                code: blank_noncode(content),
            })
            .collect();
        ItemGraph::build(&prepared)
    }

    #[test]
    fn fns_and_impls_are_indexed() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub struct S { pub x: u64 }\n\
             impl S {\n    pub fn get(&self) -> u64 { self.x }\n}\n\
             fn free() -> u64 { 7 }\n",
        )]);
        assert_eq!(g.fns.len(), 2);
        let get = &g.fns[0];
        assert_eq!(get.name, "get");
        assert_eq!(get.impl_of.as_deref(), Some("S"));
        assert_eq!(g.fns[1].impl_of, None);
        assert_eq!(g.structs.len(), 1);
        assert_eq!(g.structs[0].fields[0].name, "x");
    }

    #[test]
    fn trait_impl_self_type_is_the_for_type() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "impl<T: Clone> From<T> for Wrapper<T> {\n    fn from(t: T) -> Self { Wrapper(t) }\n}\n",
        )]);
        assert_eq!(g.fns[0].impl_of.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn calls_resolve_transitively() {
        let g = graph_of(&[
            (
                "crates/core/src/a.rs",
                "pub fn root() { step(); }\n\
             fn step() { helper::deep(); }\n",
            ),
            (
                "crates/core/src/helper.rs",
                "pub fn deep() { finish(); }\nfn finish() {}\n",
            ),
        ]);
        let root = g.find_fn("a.rs", "root").unwrap();
        let reach = g.reachable(&[root]);
        let names: Vec<&str> = reach.iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["root", "step", "deep", "finish"]);
    }

    #[test]
    fn method_calls_resolve_to_impl_fns() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "struct S;\nimpl S { fn hit(&self) {} }\n\
             fn caller(s: &S) { s.hit(); }\n",
        )]);
        let caller = g.find_fn("a.rs", "caller").unwrap();
        let reach = g.reachable(&[caller]);
        assert!(reach.iter().any(|&i| g.fns[i].name == "hit"));
    }

    #[test]
    fn test_mod_fns_are_marked_and_unresolvable() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "fn caller() { probe(); }\n\
             #[cfg(test)]\nmod tests {\n    pub fn probe() {}\n}\n",
        )]);
        let probe = g.fns.iter().find(|f| f.name == "probe").unwrap();
        assert!(probe.in_test);
        let caller = g.find_fn("a.rs", "caller").unwrap();
        assert_eq!(g.reachable(&[caller]).len(), 1, "test fn must not resolve");
    }

    #[test]
    fn attr_text_preserves_string_literals() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "#[cfg(feature = \"race-audit\")]\nfn gated() {}\n",
        )]);
        let a = g.attrs.iter().find(|a| a.attached == Attached::Fn).unwrap();
        assert!(a.text.contains("feature = \"race-audit\""), "{}", a.text);
        assert_eq!(g.fns[0].attrs.len(), 1);
        assert!(g.fns[0].attrs[0].1.contains("race-audit"));
    }

    #[test]
    fn statement_attrs_know_their_fn() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "fn f(name: &str) {\n    #[cfg(feature = \"race-audit\")]\n    on_acquire(name);\n    #[cfg(not(feature = \"race-audit\"))]\n    let _ = name;\n}\n",
        )]);
        let stmts: Vec<&AttrRec> = g
            .attrs
            .iter()
            .filter(|a| a.attached == Attached::Stmt)
            .collect();
        assert_eq!(stmts.len(), 2, "{:?}", g.attrs);
        assert_eq!(stmts[0].enclosing_fn, Some(0));
        assert_eq!(stmts[1].enclosing_fn, Some(0));
    }

    #[test]
    fn derive_idents_are_collected() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "#[derive(Debug, Clone, Serialize)]\npub struct R { pub wall_us: u64, pub inner: Vec<Sub> }\n",
        )]);
        let s = &g.structs[0];
        assert!(s.derives.iter().any(|d| d == "Serialize"));
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].ty_idents, vec!["Vec", "Sub"]);
    }
}
