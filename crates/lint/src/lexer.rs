//! A spanned token stream over the blanked code view.
//!
//! The [`crate::strip`] pass already removed comment text and
//! string/char-literal contents while preserving columns, so tokenizing
//! its output is simple: identifiers, numbers, lifetimes, string shells
//! (the surviving `"…"` delimiters) and single-character punctuation.
//! Rules that need multi-character operators (`::`, `->`, `=>`) derive
//! them from adjacent punct tokens, which works because the stripper
//! never inserts spaces between surviving code characters.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident,
    /// Numeric literal (decimal/hex/octal/binary, including `_` and
    /// suffix letters — the lexer does not validate, only groups).
    Number,
    /// Lifetime: `'` followed by an identifier.
    Lifetime,
    /// The shell of a blanked string literal (`"   "` from the stripper).
    Str,
    /// One punctuation character.
    Punct(char),
}

/// One token with its position in the original file.
#[derive(Debug, Clone)]
pub(crate) struct Tok {
    pub(crate) kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is the empty string (the
    /// contents were blanked anyway); for punctuation it is the single
    /// character.
    pub(crate) text: String,
    /// 1-based line number.
    pub(crate) line: usize,
    /// 0-based character column of the token's first character. The
    /// stripper preserves columns, so this indexes into the *raw* line
    /// too — that is how attribute text (with its unblanked string
    /// literals) is recovered.
    pub(crate) col: usize,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub(crate) fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub(crate) fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenize the blanked code view (one entry per source line).
pub(crate) fn tokenize(code: &[String]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c == '/' && chars.get(i + 1) == Some(&'/') {
                // The stripper leaves the `//` of a line comment in place;
                // nothing after it on this line is code.
                break;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A blanked string shell may follow an ident prefix
                // (`b"…"`, `r#"…"#`); the `"` below handles the shell.
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    col: start,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // Stop a `1..x` range from being eaten as one number.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Number,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    col: start,
                });
                continue;
            }
            if c == '"' {
                // A blanked string: skip to the closing quote on this line
                // (the stripper guarantees interior chars are spaces; a
                // multi-line string leaves an unmatched quote — consume to
                // end of line).
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                out.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: lineno,
                    col: i,
                });
                i = if j < chars.len() { j + 1 } else { chars.len() };
                continue;
            }
            if c == '\'' {
                // Lifetime (`'a`) or blanked char shell (`' '`). The
                // stripper reduces char literals to `'x'`-shaped shells
                // with blank interiors.
                if chars
                    .get(i + 1)
                    .is_some_and(|n| n.is_ascii_alphabetic() || *n == '_')
                    && chars.get(i + 2) != Some(&'\'')
                {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line: lineno,
                        col: start,
                    });
                } else {
                    // Char shell: `'<blank>'` or `'<blank><blank>'`.
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    out.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: lineno,
                        col: i,
                    });
                    i = if j < chars.len() { j + 1 } else { chars.len() };
                }
                continue;
            }
            out.push(Tok {
                kind: TokKind::Punct(c),
                text: c.to_string(),
                line: lineno,
                col: i,
            });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::blank_noncode;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&blank_noncode(src))
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let t = toks("let x = foo(42);");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "foo", "(", "42", ")", ";"]);
        assert_eq!(t[0].kind, TokKind::Ident);
        assert_eq!(t[5].kind, TokKind::Number);
    }

    #[test]
    fn lines_are_one_based_and_tracked() {
        let t = toks("fn a() {\n    b();\n}\n");
        let b = t.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn comments_and_strings_yield_no_idents() {
        let t = toks("// unwrap here\nlet s = \"unwrap\"; a.unwrap();");
        let unwraps = t.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 1, "{t:?}");
        assert!(t.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn lifetimes_are_not_char_shells() {
        let t = toks("fn f<'a>(x: &'a str, c: char) { let y = 'z'; }");
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        // 'z' became a blanked shell, not a lifetime.
        assert_eq!(
            t.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2 // both occurrences of 'a
        );
    }

    #[test]
    fn range_is_not_swallowed_by_number() {
        let t = toks("for i in 0..n {}");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["for", "i", "in", "0", ".", ".", "n", "{", "}"]);
    }
}
