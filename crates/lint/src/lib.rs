//! # dice-lint — workspace invariant checker
//!
//! PRs 2–5 established three load-bearing conventions that deterministic
//! replay rests on: the SUT downcast seam (one adapter module per
//! protocol), byte-identical `CampaignReport::normalized()` at any
//! `pair_workers`, and poison-tolerant executor locks. This crate turns
//! those conventions into machine-checked rules: a std-only, line/token
//! level scanner over the workspace's Rust sources (no rustc plugin — the
//! build container is offline), runnable both as a binary
//! (`cargo run -p dice-lint`) and as a tier-1 test (`tests/dice_lint.rs`
//! at the workspace root).
//!
//! ## Rules
//!
//! Line/token rules match the blanked code view directly; the semantic
//! rules (`panic-freedom`, `alloc-hot-path`, `cfg-pairing`,
//! `schema-drift`) query the workspace item graph (the `graph` module)
//! built from a spanned token stream (`lexer`) over that same view.
//!
//! | id | invariant |
//! |---|---|
//! | `seam-containment` | `downcast_ref::<BgpRouter>` only in `core/src/bgp_sut.rs`; `GossipNode` downcasts only in `gossip_sut.rs` |
//! | `determinism-zone` | no `Instant::now` / `SystemTime` / ambient RNG in report-affecting code without an annotation |
//! | `unordered-iter` | no `HashMap`/`HashSet` iteration feeding serialized reports or coverage unions |
//! | `lock-hygiene` | no bare `.lock().unwrap()` in `dice-core` — route through the poison-tolerant helper |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/identifier slice-index in fns reachable from the round hot loop or the solve path |
//! | `alloc-hot-path` | no fresh allocations (`Vec::new`, `format!`, `.clone()`, …) inside the pooled validation paths |
//! | `cfg-pairing` | every `race-audit`-gated fn/statement has a feature-off counterpart |
//! | `schema-drift` | every wall-clock field of a `Serialize` struct reachable from `CampaignReport` is zeroed by `normalized()` |
//! | `allow-syntax` | escape-hatch annotations must name a known rule and give a reason |
//! | `stale-allow` | escape-hatch annotations must actually suppress a finding |
//!
//! ## Escape hatch
//!
//! A finding is suppressed by an allow annotation carrying the rule id and
//! a justification, either at the end of the offending line or as a
//! comment line directly above it. The syntax (shown here with `<>`
//! placeholders; the marker itself is assembled at runtime so these docs
//! don't trip the scanner): `<marker>(<rule-id>): <reason>` where
//! `<marker>` is the crate name followed by `: allow`. Suppressed findings
//! are still parsed and reported (JSON `allowed` array); a missing reason
//! or an annotation that suppresses nothing is itself a violation.
//!
//! The scanner skips `vendor/` (third-party stand-ins), `target/`, and its
//! own crate (`crates/lint` contains no report-affecting code, but its
//! sources and fixtures quote the patterns the rules search for).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

mod baseline;
mod fix;
mod graph;
mod lexer;
mod rules;
mod sarif;
mod strip;

pub use baseline::{ratchet, Baseline, BaselineEntry, RatchetOutcome};
pub use fix::{apply_fixes, FixedFile};
pub use sarif::to_sarif;

/// The rule identifiers enforced by this crate, in severity-neutral
/// reporting order. `allow-syntax` and `stale-allow` police the escape
/// hatch itself.
pub const RULES: &[&str] = &[
    "seam-containment",
    "determinism-zone",
    "unordered-iter",
    "lock-hygiene",
    "panic-freedom",
    "alloc-hot-path",
    "cfg-pairing",
    "schema-drift",
    "allow-syntax",
    "stale-allow",
];

/// One workspace-relative Rust source file presented to the scanner.
/// Paths use `/` separators; rules scope themselves by path prefix, so
/// fixture tests can claim any path (e.g. `crates/core/src/bad.rs`).
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Full file contents.
    pub content: String,
}

/// A prepared file: raw lines plus a "code view" with comments and
/// string/char-literal contents blanked, so rules never match doc text or
/// quoted patterns.
pub(crate) struct Prepared {
    pub(crate) path: String,
    pub(crate) raw: Vec<String>,
    pub(crate) code: Vec<String>,
}

/// One rule hit before allow-annotation resolution.
pub(crate) struct RawFinding {
    pub(crate) rule: &'static str,
    pub(crate) path: String,
    /// 1-based line number.
    pub(crate) line: usize,
    pub(crate) message: String,
    /// For findings inside a function body (semantic rules only): the
    /// 1-based line of the enclosing `fn` keyword. An allow annotation on
    /// (or directly above) the fn declaration then suppresses every
    /// finding of that rule in the body — the fn-level escape hatch for
    /// index-heavy code where per-line annotations would drown the file.
    pub(crate) fn_line: Option<usize>,
}

/// A resolved finding: either an unallowed violation or a finding
/// suppressed by a justified annotation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (see [`RULES`]).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the hit.
    pub message: String,
    /// Justification parsed from the allow annotation, when suppressed.
    pub reason: Option<String>,
}

/// Outcome of one scan: unallowed violations (exit-code-relevant) plus
/// the suppressed findings with their justifications.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Wall-clock milliseconds the workspace scan took (file IO, lexing,
    /// item-graph build and rules). Zero for in-memory [`scan_files`]
    /// callers; set by [`scan_workspace`]. The tier-1 suite asserts a
    /// ceiling on this so the analyzer stays honest as the graph grows.
    pub scan_wall_ms: u64,
    /// Findings not covered by an allow annotation. Empty = exit 0.
    pub violations: Vec<Finding>,
    /// Findings suppressed by a justified annotation.
    pub allowed: Vec<Finding>,
}

/// A parsed allow annotation.
struct Annotation {
    /// 1-based line the annotation sits on.
    line: usize,
    /// Rule id inside the parentheses (not yet validated).
    rule: String,
    /// Justification after the closing `):`, trimmed; `None` if absent
    /// or empty.
    reason: Option<String>,
    /// Whether the annotation is a comment-only line (then it covers the
    /// next line) or trails code (then it covers its own line).
    own_line: bool,
    /// Set when the annotation suppressed at least one finding.
    used: bool,
}

/// The allow-annotation marker, assembled at runtime so the scanner's own
/// sources never contain the contiguous token sequence it searches for.
fn marker() -> String {
    format!("dice-{}{}", "lint: ", "allow(")
}

/// Parse every allow annotation in `raw` lines. Only text after a `//`
/// counts — a quoted marker in code is not an annotation.
fn parse_annotations(raw: &[String]) -> Vec<Annotation> {
    let marker = marker();
    let mut out = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        let Some(comment_at) = line.find("//") else {
            continue;
        };
        let comment = &line[comment_at..];
        let Some(m) = comment.find(&marker) else {
            continue;
        };
        let after = &comment[m + marker.len()..];
        let Some(close) = after.find(')') else {
            // Unterminated marker: treated as a malformed annotation with
            // an empty rule id, caught by allow-syntax.
            out.push(Annotation {
                line: idx + 1,
                rule: String::new(),
                reason: None,
                own_line: line.trim_start().starts_with("//"),
                used: false,
            });
            continue;
        };
        let rule = after[..close].trim().to_string();
        let rest = after[close + 1..].trim_start();
        let reason = rest
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty());
        out.push(Annotation {
            line: idx + 1,
            rule,
            reason,
            own_line: line.trim_start().starts_with("//"),
            used: false,
        });
    }
    out
}

/// Scan an in-memory file set. This is the whole pipeline: prepare code
/// views, run the rules, resolve allow annotations, police the
/// annotations themselves, and sort deterministically.
pub fn scan_files(files: &[SourceFile]) -> LintReport {
    let prepared: Vec<Prepared> = files
        .iter()
        .map(|f| {
            let raw: Vec<String> = f.content.lines().map(str::to_string).collect();
            let code = strip::blank_noncode(&f.content);
            Prepared {
                path: f.path.clone(),
                raw,
                code,
            }
        })
        .collect();

    let graph = graph::ItemGraph::build(&prepared);
    let raw_findings = rules::run_all(&prepared, &graph);

    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };

    // Per-file annotation tables, resolved against the findings.
    let mut annotations: Vec<(String, Vec<Annotation>)> = prepared
        .iter()
        .map(|p| (p.path.clone(), parse_annotations(&p.raw)))
        .collect();

    for f in raw_findings {
        let anns = annotations
            .iter_mut()
            .find(|(path, _)| *path == f.path)
            .map(|(_, a)| a);
        let hit = anns.and_then(|anns| {
            anns.iter_mut().find(|a| {
                let covers_line = (a.line == f.line) || (a.own_line && a.line + 1 == f.line);
                // Fn-level coverage: an annotation on (or above) the fn
                // declaration suppresses every body finding of that rule.
                // Only the semantic rules set `fn_line`.
                let covers_fn = f
                    .fn_line
                    .is_some_and(|fl| (a.line == fl) || (a.own_line && a.line + 1 == fl));
                a.rule == f.rule && a.reason.is_some() && (covers_line || covers_fn)
            })
        });
        match hit {
            Some(a) => {
                a.used = true;
                report.allowed.push(Finding {
                    rule: f.rule.to_string(),
                    path: f.path,
                    line: f.line,
                    message: f.message,
                    reason: a.reason.clone(),
                });
            }
            None => report.violations.push(Finding {
                rule: f.rule.to_string(),
                path: f.path,
                line: f.line,
                message: f.message,
                reason: None,
            }),
        }
    }

    // Police the escape hatch: unknown rule ids and missing reasons are
    // malformed; well-formed annotations that suppressed nothing are
    // stale. Both are ordinary violations.
    for (path, anns) in &annotations {
        for a in anns {
            if a.rule.is_empty() || !RULES.contains(&a.rule.as_str()) {
                report.violations.push(Finding {
                    rule: "allow-syntax".into(),
                    path: path.clone(),
                    line: a.line,
                    message: format!(
                        "allow annotation names unknown rule `{}` (known: {})",
                        a.rule,
                        RULES.join(", ")
                    ),
                    reason: None,
                });
            } else if a.reason.is_none() {
                report.violations.push(Finding {
                    rule: "allow-syntax".into(),
                    path: path.clone(),
                    line: a.line,
                    message: format!(
                        "allow annotation for `{}` has no justification — append `: <reason>`",
                        a.rule
                    ),
                    reason: None,
                });
            } else if !a.used {
                report.violations.push(Finding {
                    rule: "stale-allow".into(),
                    path: path.clone(),
                    line: a.line,
                    message: format!(
                        "allow annotation for `{}` suppresses nothing — remove it",
                        a.rule
                    ),
                    reason: None,
                });
            }
        }
    }

    let key = |f: &Finding| (f.path.clone(), f.line, f.rule.clone());
    report.violations.sort_by_key(key);
    report.allowed.sort_by_key(key);
    report
}

/// Walk the workspace at `root` (the `src/`, `crates/`, `examples/` and
/// `tests/` trees), skipping `vendor/`, `target/`, `.git/`, this crate's
/// own fixture directory and this crate itself, and scan every `.rs`
/// file found. Directory entries are visited in sorted order so the
/// report is stable.
pub fn scan_workspace(root: &Path) -> std::io::Result<LintReport> {
    // dice-lint: timing the scanner itself — this crate is excluded from
    // its own scan, so the wall-clock read below never trips a rule.
    let scan_start = std::time::Instant::now();
    let files = workspace_files(root)?;
    let mut report = scan_files(&files);
    report.scan_wall_ms = scan_start.elapsed().as_millis() as u64;
    Ok(report)
}

/// Collect the workspace's scannable sources (same walk and exclusions
/// as [`scan_workspace`]) without scanning them — the `--fix` path needs
/// the file list to write rewrites back to disk.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["src", "crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.starts_with("crates/lint/") {
            continue; // self-exclusion: see crate docs
        }
        files.push(SourceFile {
            path: rel,
            content: std::fs::read_to_string(&p)?,
        });
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // Only this crate's own fixture corpus is skipped — another
            // crate's real `fixtures/` module is ordinary code and must
            // be scanned like anything else.
            let own_fixtures = name == "fixtures" && path.ends_with("crates/lint/tests/fixtures");
            if matches!(name, "vendor" | "target" | ".git") || own_fixtures {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, indent: &str) -> String {
    let mut s = format!(
        "{indent}{{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"",
        json_escape(&f.rule),
        json_escape(&f.path),
        f.line,
        json_escape(&f.message),
    );
    if let Some(reason) = &f.reason {
        let _ = write!(s, ", \"reason\": \"{}\"", json_escape(reason));
    }
    s.push('}');
    s
}

impl LintReport {
    /// Whether the scan found no unallowed violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable JSON report (hand-rolled: this crate is std-only
    /// by design).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"scan_wall_ms\": {},", self.scan_wall_ms);
        let _ = writeln!(
            s,
            "  \"rules\": [{}],",
            RULES
                .iter()
                .map(|r| format!("\"{r}\""))
                .collect::<Vec<_>>()
                .join(", ")
        );
        for (key, list) in [("violations", &self.violations), ("allowed", &self.allowed)] {
            let _ = writeln!(s, "  \"{key}\": [");
            for (i, f) in list.iter().enumerate() {
                let comma = if i + 1 < list.len() { "," } else { "" };
                let _ = writeln!(s, "{}{comma}", finding_json(f, "    "));
            }
            let comma = if key == "violations" { "," } else { "" };
            let _ = writeln!(s, "  ]{comma}");
        }
        s.push_str("}\n");
        s
    }

    /// Human-readable table: one aligned row per finding, violations
    /// first, then the allowed (suppressed) findings with reasons.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let loc = |f: &Finding| format!("{}:{}", f.path, f.line);
        let width = self
            .violations
            .iter()
            .chain(&self.allowed)
            .map(|f| loc(f).len())
            .max()
            .unwrap_or(0);
        let rule_width = self
            .violations
            .iter()
            .chain(&self.allowed)
            .map(|f| f.rule.len())
            .max()
            .unwrap_or(0);
        for f in &self.violations {
            let _ = writeln!(
                s,
                "VIOLATION  {:width$}  {:rule_width$}  {}",
                loc(f),
                f.rule,
                f.message
            );
        }
        for f in &self.allowed {
            let _ = writeln!(
                s,
                "allowed    {:width$}  {:rule_width$}  {} [{}]",
                loc(f),
                f.rule,
                f.message,
                f.reason.as_deref().unwrap_or("")
            );
        }
        let _ = writeln!(
            s,
            "{} files scanned, {} violation(s), {} allowed",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_is_parsed_only_inside_comments() {
        let m = marker();
        let file = SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: format!("let s = \"{m}determinism-zone): quoted\";\n"),
        };
        let report = scan_files(&[file]);
        // The quoted marker is inside a string literal with no leading
        // `//`, so no annotation is parsed and nothing is stale.
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn annotation_without_reason_is_malformed() {
        let m = marker();
        let file = SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: format!("// {m}determinism-zone)\nlet t = std::time::Instant::now();\n"),
        };
        let report = scan_files(&[file]);
        let rules: Vec<&str> = report.violations.iter().map(|f| f.rule.as_str()).collect();
        // The reasonless annotation suppresses nothing, so the zone
        // violation stays AND the annotation is flagged.
        assert!(rules.contains(&"allow-syntax"), "{rules:?}");
        assert!(rules.contains(&"determinism-zone"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_in_annotation_is_flagged() {
        let m = marker();
        let file = SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: format!("// {m}no-such-rule): because\nfn f() {{}}\n"),
        };
        let report = scan_files(&[file]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "allow-syntax");
        assert!(report.violations[0].message.contains("no-such-rule"));
    }

    #[test]
    fn stale_annotation_is_flagged() {
        let m = marker();
        let file = SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: format!("// {m}lock-hygiene): nothing to suppress here\nfn f() {{}}\n"),
        };
        let report = scan_files(&[file]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "stale-allow");
    }

    #[test]
    fn fixtures_dirs_outside_lint_are_scanned() {
        // Regression: the walker used to skip *any* directory named
        // `fixtures`, silently unscanning real code. Only this crate's
        // own fixture corpus is exempt now.
        let root =
            std::env::temp_dir().join(format!("dice-lint-fixture-scan-{}", std::process::id()));
        let src = root.join("crates").join("foo").join("src").join("fixtures");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("gen.rs"),
            "fn f() { let t = std::time::Instant::now(); }\n",
        )
        .unwrap();
        let report = scan_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(
            report.files_scanned, 1,
            "the fixtures/ module must be walked"
        );
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "determinism-zone");
        assert!(
            report.violations[0].path.ends_with("fixtures/gen.rs"),
            "{}",
            report.violations[0].path
        );
    }

    #[test]
    fn json_report_shape() {
        let report = scan_files(&[SourceFile {
            path: "crates/core/src/x.rs".into(),
            content: "fn f() { let t = std::time::Instant::now(); }\n".into(),
        }]);
        assert!(!report.is_clean());
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"determinism-zone\""));
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"line\": 1"));
        let table = report.to_table();
        assert!(table.contains("VIOLATION"));
        assert!(table.contains("1 violation(s)"));
    }
}
