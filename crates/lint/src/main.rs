//! `dice-lint` binary: scan the workspace, print the findings, exit
//! nonzero on any unallowed violation.
//!
//! ```text
//! cargo run -p dice-lint [-- --root <dir>] [--json <path>] [--format table|json] [--quiet]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut format = "table".to_string();
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--format" => format = args.next().unwrap_or_default(),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "dice-lint: workspace invariant checker\n\
                     \n\
                     Options:\n\
                     --root <dir>          workspace root (default: walk up from cwd)\n\
                     --json <path>         also write the JSON report to <path>\n\
                     --format table|json   stdout format (default table)\n\
                     --quiet               suppress stdout, keep the exit code\n\
                     \n\
                     Exit code 0 iff no unallowed violations."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dice-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd readable");
            match dice_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("dice-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match dice_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dice-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("dice-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        match format.as_str() {
            "json" => print!("{}", report.to_json()),
            _ => print!("{}", report.to_table()),
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
