//! `dice-lint` binary: scan the workspace, print the findings, exit
//! nonzero on any unallowed violation (or, in ratchet mode, on any
//! new-vs-baseline or stale-baseline debt).
//!
//! ```text
//! cargo run -p dice-lint [-- --root <dir>] [--json <path>] [--sarif <path>]
//!     [--baseline <path>] [--write-baseline <path>] [--fix]
//!     [--format table|json] [--quiet]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut fix = false;
    let mut format = "table".to_string();
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--sarif" => sarif_path = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = args.next().map(PathBuf::from),
            "--fix" => fix = true,
            "--format" => format = args.next().unwrap_or_default(),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "dice-lint: workspace invariant checker\n\
                     \n\
                     Options:\n\
                     --root <dir>           workspace root (default: walk up from cwd)\n\
                     --json <path>          also write the JSON report to <path>\n\
                     --sarif <path>         also write a SARIF 2.1.0 log to <path>\n\
                     --baseline <path>      ratchet mode: fail on new debt AND stale entries\n\
                     --write-baseline <path> snapshot current violations as a baseline\n\
                     --fix                  apply mechanical autofixes, then rescan\n\
                     --format table|json    stdout format (default table)\n\
                     --quiet                suppress stdout, keep the exit code\n\
                     \n\
                     Exit code 0 iff no unallowed violations (ratchet: no new/stale debt)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dice-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("dice-lint: cwd unreadable: {e}");
                    return ExitCode::from(2);
                }
            };
            match dice_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("dice-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if fix {
        let files = match dice_lint::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dice-lint: cannot read workspace: {e}");
                return ExitCode::from(2);
            }
        };
        let fixed = dice_lint::apply_fixes(&files);
        for f in &fixed {
            let abs = root.join(&f.path);
            if let Err(e) = std::fs::write(&abs, &f.content) {
                eprintln!("dice-lint: cannot write {}: {e}", abs.display());
                return ExitCode::from(2);
            }
            if !quiet {
                println!("fixed {} ({} edit(s))", f.path, f.edits);
            }
        }
        if !quiet {
            println!("{} file(s) rewritten", fixed.len());
        }
    }

    let report = match dice_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dice-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("dice-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, dice_lint::to_sarif(&report)) {
            eprintln!("dice-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &write_baseline {
        let snapshot = dice_lint::Baseline::from_report(&report);
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("dice-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        match format.as_str() {
            "json" => print!("{}", report.to_json()),
            _ => print!("{}", report.to_table()),
        }
    }

    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dice-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match dice_lint::Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dice-lint: bad baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let outcome = dice_lint::ratchet(&report, &baseline);
        if !quiet {
            for f in &outcome.new {
                println!(
                    "NEW DEBT   {}:{}  {}  {}",
                    f.path, f.line, f.rule, f.message
                );
            }
            for e in &outcome.stale {
                println!(
                    "STALE      {}  {}  {} — remove from baseline",
                    e.path, e.rule, e.message
                );
            }
            println!(
                "ratchet: {} new, {} stale (baseline {} entr{})",
                outcome.new.len(),
                outcome.stale.len(),
                baseline.entries.len(),
                if baseline.entries.len() == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
        }
        return if outcome.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
