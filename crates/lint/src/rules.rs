//! The five invariant rules, each grounded in a contract established by
//! an earlier PR (see DESIGN.md §"Enforced invariants"). All rules match
//! against the blanked code view, so doc prose and quoted strings never
//! fire them, and scope themselves by workspace-relative path prefix.

use crate::{Prepared, RawFinding};

/// Run every rule over the prepared file set.
pub(crate) fn run_all(files: &[Prepared]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for f in files {
        seam_containment(f, &mut out);
        determinism_zone(f, &mut out);
        unordered_iter(f, &mut out);
        lock_hygiene(f, &mut out);
    }
    wall_clock_coverage(files, &mut out);
    out
}

/// Is `path` inside the dice-core source tree (the crate all per-crate
/// rules anchor on)?
fn in_core(path: &str) -> bool {
    path.starts_with("crates/core/src/")
}

/// R1 — seam containment (contract from PR 2/PR 4): within `dice-core`,
/// the concrete protocol types may only be downcast in their single
/// adapter module. Everything else must go through the `SutCatalog`
/// probe chain.
fn seam_containment(f: &Prepared, out: &mut Vec<RawFinding>) {
    if !in_core(&f.path) {
        return;
    }
    const SEAMS: &[(&str, &str)] = &[
        ("BgpRouter", "crates/core/src/bgp_sut.rs"),
        ("GossipNode", "crates/core/src/gossip_sut.rs"),
    ];
    for (idx, line) in f.code.iter().enumerate() {
        if !line.contains("downcast") {
            continue;
        }
        for (ty, home) in SEAMS {
            if line.contains(&format!("<{ty}>")) && f.path != *home {
                out.push(RawFinding {
                    rule: "seam-containment",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{ty}` downcast outside its adapter module {home} — resolve through the SutCatalog probe chain instead"
                    ),
                });
            }
        }
    }
}

/// R2 — determinism zone (contract from PR 3): report-affecting code must
/// not read wall clocks or ambient randomness. The explicitly annotated
/// wall-clock accounting sites (fields that `normalized()` zeroes) carry
/// allow annotations with justifications.
fn determinism_zone(f: &Prepared, out: &mut Vec<RawFinding>) {
    let scoped = ["crates/", "src/", "examples/", "tests/"]
        .iter()
        .any(|p| f.path.starts_with(p));
    if !scoped {
        return;
    }
    const PATTERNS: &[&str] = &["Instant::now", "SystemTime", "thread_rng", "rand::random"];
    for (idx, line) in f.code.iter().enumerate() {
        for pat in PATTERNS {
            if line.contains(pat) {
                out.push(RawFinding {
                    rule: "determinism-zone",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{pat}` in the determinism zone — wall-clock/ambient-RNG reads may only feed fields zeroed by normalized(); annotate legitimate accounting sites"
                    ),
                });
            }
        }
    }
}

/// R3 — unordered iteration (contract from PR 3): `HashMap`/`HashSet`
/// iteration order is nondeterministic across runs, so anything feeding
/// serialized reports or coverage unions must iterate sorted containers.
/// Membership operations (`get`/`insert`/`contains`) are fine; this rule
/// fires on iteration of bindings or fields declared with a hashed type
/// in the same file.
fn unordered_iter(f: &Prepared, out: &mut Vec<RawFinding>) {
    let scoped = [
        "crates/core/",
        "crates/concolic/",
        "crates/netsim/",
        "crates/bgp/",
        "crates/gossip/",
    ]
    .iter()
    .any(|p| f.path.starts_with(p))
        || (f.path.starts_with("src/"));
    if !scoped {
        return;
    }

    // Pass 1: names bound to HashMap/HashSet in this file (let bindings
    // and struct fields).
    let mut names: Vec<String> = Vec::new();
    for line in &f.code {
        if !(line.contains("HashMap<")
            || line.contains("HashSet<")
            || line.contains("HashMap::")
            || line.contains("HashSet::"))
        {
            continue;
        }
        let trimmed = line.trim_start();
        let binding = if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            rest.split([':', '=', ' ']).next()
        } else {
            // Struct field or typed parameter: `name: HashMap<...>`.
            line.split(':').next().and_then(|lhs| {
                let lhs = lhs.trim();
                let name = lhs.rsplit([' ', '(', ',']).next()?;
                Some(name)
            })
        };
        if let Some(name) = binding {
            let name = name.trim();
            if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                names.push(name.to_string());
            }
        }
    }
    if names.is_empty() {
        return;
    }
    names.sort();
    names.dedup();

    // Pass 2: iteration of any collected name.
    const ITER_SUFFIXES: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
    ];
    for (idx, line) in f.code.iter().enumerate() {
        for name in &names {
            let mut flagged = false;
            for (pos, _) in line.match_indices(name.as_str()) {
                // Whole-word check on the left.
                if pos > 0 {
                    let prev = line.as_bytes()[pos - 1] as char;
                    if prev.is_alphanumeric() || prev == '_' {
                        continue;
                    }
                }
                let after = &line[pos + name.len()..];
                if after
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                let after = after.trim_start();
                if ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
                    flagged = true;
                }
            }
            // `for x in name` / `for x in &name` / `for x in &mut name`.
            if !flagged && line.contains("for ") && line.contains(" in ") {
                if let Some(rest) = line.split(" in ").nth(1) {
                    let expr = rest.trim().trim_end_matches('{').trim_end();
                    let expr = expr.strip_prefix('&').unwrap_or(expr);
                    let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
                    if expr == name {
                        flagged = true;
                    }
                }
            }
            if flagged {
                out.push(RawFinding {
                    rule: "unordered-iter",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "iteration over unordered container `{name}` — use BTreeMap/BTreeSet (or collect + sort) before feeding reports or coverage unions"
                    ),
                });
            }
        }
    }
}

/// R4 — lock hygiene (contract from PR 4): `dice-core` locks must be
/// poison-tolerant. A panicking worker must surface *its own* message, not
/// a secondary "poisoned mutex" panic from a survivor — so every
/// acquisition routes through `crate::sync::lock_unpoisoned`.
fn lock_hygiene(f: &Prepared, out: &mut Vec<RawFinding>) {
    if !in_core(&f.path) {
        return;
    }
    let stripped: Vec<String> = f
        .code
        .iter()
        .map(|l| l.chars().filter(|c| !c.is_whitespace()).collect())
        .collect();
    const PATTERNS: &[&str] = &[".lock().unwrap()", ".try_lock().unwrap()"];
    for idx in 0..stripped.len() {
        for pat in PATTERNS {
            let on_this = stripped[idx].contains(pat);
            // Also catch the rustfmt-split form spanning two lines.
            let spans_next = !on_this
                && idx + 1 < stripped.len()
                && format!("{}{}", stripped[idx], stripped[idx + 1]).contains(pat)
                && stripped[idx].contains(".lock(")
                && !stripped[idx + 1].contains(pat);
            if on_this || spans_next {
                out.push(RawFinding {
                    rule: "lock-hygiene",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "bare `{pat}` in dice-core — use crate::sync::lock_unpoisoned (poison-tolerant, race-audit instrumented)"
                    ),
                });
            }
        }
    }
}

/// A wall-clock-named report field: these are host-time measurements that
/// the determinism contract requires `normalized()` to zero.
fn is_wall_clock_field(name: &str) -> bool {
    name.starts_with("wall_")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.ends_with("_us_cum")
        || name.ends_with("_ms_cum")
        || name.ends_with("_micros")
}

/// R5 — wall-clock field coverage (contract from PR 3/PR 5): every
/// `*_us`/`*_ms`-style field of a `Serialize`-deriving struct in
/// `dice-core` must be zeroed by `normalized()` (directly, or by
/// resetting its whole struct to `Default`). Otherwise two runs of the
/// same campaign would serialize differently and the byte-identity
/// regression tests go flaky.
fn wall_clock_coverage(files: &[Prepared], out: &mut Vec<RawFinding>) {
    struct WallField {
        strukt: String,
        field: String,
        path: String,
        line: usize,
    }
    let mut fields: Vec<WallField> = Vec::new();
    let mut normalized_bodies = String::new();

    for f in files {
        if !in_core(&f.path) {
            continue;
        }
        // Struct-field collection: watch for a Serialize derive, then the
        // struct header, then fields until the closing brace at column 0.
        let mut derive_serialize = false;
        let mut current: Option<String> = None;
        for (idx, line) in f.code.iter().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("#[derive(") {
                derive_serialize = line.contains("Serialize");
                continue;
            }
            if current.is_none() {
                if let Some(rest) = trimmed
                    .strip_prefix("pub struct ")
                    .or_else(|| trimmed.strip_prefix("struct "))
                {
                    if derive_serialize && rest.contains('{') {
                        let name: String = rest
                            .chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect();
                        current = Some(name);
                    }
                    derive_serialize = false;
                    continue;
                }
                if !trimmed.is_empty() && !trimmed.starts_with("#[") && !trimmed.starts_with("//") {
                    derive_serialize = false;
                }
            } else if line.starts_with('}') {
                current = None;
            } else if let Some((lhs, _)) = trimmed.split_once(':') {
                let field = lhs.trim().trim_start_matches("pub ").trim();
                if !field.is_empty()
                    && field.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && is_wall_clock_field(field)
                {
                    fields.push(WallField {
                        strukt: current.clone().unwrap_or_default(),
                        field: field.to_string(),
                        path: f.path.clone(),
                        line: idx + 1,
                    });
                }
            }
        }

        // Normalized-body collection: balanced-brace extraction from every
        // `fn normalized` in core.
        let joined = f.code.join("\n");
        let mut search = 0usize;
        while let Some(pos) = joined[search..].find("fn normalized") {
            let start = search + pos;
            if let Some(open_rel) = joined[start..].find('{') {
                let open = start + open_rel;
                let mut depth = 0i32;
                let mut end = open;
                for (i, c) in joined[open..].char_indices() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                end = open + i;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                normalized_bodies.push_str(&joined[open..=end]);
                normalized_bodies.push('\n');
                search = end;
            } else {
                break;
            }
        }
    }

    for wf in fields {
        let zeroed_directly = normalized_bodies.contains(&format!(".{} = 0", wf.field))
            || normalized_bodies.contains(&format!("{}: 0", wf.field));
        let struct_reset = !wf.strukt.is_empty()
            && normalized_bodies.contains(&format!("{}::default()", wf.strukt));
        if !(zeroed_directly || struct_reset) {
            let hint = if normalized_bodies.is_empty() {
                "no normalized() implementation found in dice-core"
            } else {
                "normalized() never zeroes it"
            };
            out.push(RawFinding {
                rule: "wall-clock-coverage",
                path: wf.path,
                line: wf.line,
                message: format!(
                    "wall-clock field `{}.{}` serializes into reports but {hint} — the byte-identity contract breaks",
                    wf.strukt, wf.field
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{scan_files, SourceFile};

    fn rules_of(path: &str, content: &str) -> Vec<String> {
        let report = scan_files(&[SourceFile {
            path: path.into(),
            content: content.into(),
        }]);
        report.violations.iter().map(|f| f.rule.clone()).collect()
    }

    #[test]
    fn membership_ops_on_hashed_containers_are_fine() {
        let src = "use std::collections::HashSet;\n\
                   fn f() {\n\
                   let mut attempted: HashSet<u64> = HashSet::new();\n\
                   attempted.insert(3);\n\
                   assert!(attempted.contains(&3));\n\
                   }\n";
        assert!(rules_of("crates/concolic/src/x.rs", src).is_empty());
    }

    #[test]
    fn adapter_modules_may_downcast_their_own_type() {
        let src = "fn g(n: &dyn Node) { n.as_any().downcast_ref::<BgpRouter>(); }\n";
        assert!(rules_of("crates/core/src/bgp_sut.rs", src).is_empty());
        assert_eq!(
            rules_of("crates/core/src/explorer.rs", src),
            vec!["seam-containment"]
        );
    }

    #[test]
    fn vendor_and_lint_paths_are_out_of_scope() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(rules_of("vendor/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_rule_needs_cross_file_view() {
        let strukt = "#[derive(Debug, Clone, Serialize)]\n\
                      pub struct MiniReport {\n\
                      pub wall_us: u64,\n\
                      pub items: usize,\n\
                      }\n";
        let normalized_good = "impl MiniReport {\n\
                               pub fn normalized(&self) -> MiniReport {\n\
                               let mut r = self.clone();\n\
                               r.wall_us = 0;\n\
                               r\n\
                               }\n\
                               }\n";
        let clean = crate::scan_files(&[
            SourceFile {
                path: "crates/core/src/a.rs".into(),
                content: strukt.into(),
            },
            SourceFile {
                path: "crates/core/src/b.rs".into(),
                content: normalized_good.into(),
            },
        ]);
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);

        let dirty = crate::scan_files(&[SourceFile {
            path: "crates/core/src/a.rs".into(),
            content: strukt.into(),
        }]);
        assert_eq!(dirty.violations.len(), 1);
        assert_eq!(dirty.violations[0].rule, "wall-clock-coverage");
        assert_eq!(dirty.violations[0].line, 3);
    }

    #[test]
    fn struct_wide_default_reset_counts_as_zeroing() {
        let src = "#[derive(Debug, Default, Serialize)]\n\
                   pub struct Perf {\n\
                   pub solve_us: u64,\n\
                   }\n\
                   impl R {\n\
                   pub fn normalized(&self) -> R {\n\
                   let mut r = self.clone();\n\
                   r.perf = Perf::default();\n\
                   r\n\
                   }\n\
                   }\n";
        assert!(rules_of("crates/core/src/a.rs", src).is_empty());
    }
}
