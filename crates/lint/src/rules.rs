//! The invariant rules, each grounded in a contract established by an
//! earlier PR (see DESIGN.md §"Enforced invariants"). The line/token
//! rules match against the blanked code view, so doc prose and quoted
//! strings never fire them, and scope themselves by workspace-relative
//! path prefix. The semantic rules (`panic-freedom`, `alloc-hot-path`,
//! `cfg-pairing`, `schema-drift`) query the [`ItemGraph`] instead:
//! reachability over name-resolved call edges, attribute attachment,
//! and struct-reference walks.

use crate::graph::{Attached, ItemGraph};
use crate::lexer::TokKind;
use crate::{Prepared, RawFinding};

/// Run every rule over the prepared file set and its item graph.
pub(crate) fn run_all(files: &[Prepared], graph: &ItemGraph) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for f in files {
        seam_containment(f, &mut out);
        determinism_zone(f, &mut out);
        unordered_iter(f, &mut out);
        lock_hygiene(f, &mut out);
    }
    panic_freedom(graph, &mut out);
    alloc_hot_path(graph, &mut out);
    cfg_pairing(graph, &mut out);
    schema_drift(files, graph, &mut out);
    out
}

/// Is `path` inside the dice-core source tree (the crate all per-crate
/// rules anchor on)?
fn in_core(path: &str) -> bool {
    path.starts_with("crates/core/src/")
}

/// R1 — seam containment (contract from PR 2/PR 4): within `dice-core`,
/// the concrete protocol types may only be downcast in their single
/// adapter module. Everything else must go through the `SutCatalog`
/// probe chain.
fn seam_containment(f: &Prepared, out: &mut Vec<RawFinding>) {
    if !in_core(&f.path) {
        return;
    }
    const SEAMS: &[(&str, &str)] = &[
        ("BgpRouter", "crates/core/src/bgp_sut.rs"),
        ("GossipNode", "crates/core/src/gossip_sut.rs"),
    ];
    for (idx, line) in f.code.iter().enumerate() {
        if !line.contains("downcast") {
            continue;
        }
        for (ty, home) in SEAMS {
            if line.contains(&format!("<{ty}>")) && f.path != *home {
                out.push(RawFinding {
                    rule: "seam-containment",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{ty}` downcast outside its adapter module {home} — resolve through the SutCatalog probe chain instead"
                    ),
                    fn_line: None,
                });
            }
        }
    }
}

/// R2 — determinism zone (contract from PR 3): report-affecting code must
/// not read wall clocks or ambient randomness. The explicitly annotated
/// wall-clock accounting sites (fields that `normalized()` zeroes) carry
/// allow annotations with justifications.
fn determinism_zone(f: &Prepared, out: &mut Vec<RawFinding>) {
    let scoped = ["crates/", "src/", "examples/", "tests/"]
        .iter()
        .any(|p| f.path.starts_with(p));
    if !scoped {
        return;
    }
    const PATTERNS: &[&str] = &["Instant::now", "SystemTime", "thread_rng", "rand::random"];
    for (idx, line) in f.code.iter().enumerate() {
        for pat in PATTERNS {
            if line.contains(pat) {
                out.push(RawFinding {
                    rule: "determinism-zone",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{pat}` in the determinism zone — wall-clock/ambient-RNG reads may only feed fields zeroed by normalized(); annotate legitimate accounting sites"
                    ),
                    fn_line: None,
                });
            }
        }
    }
}

/// R3 — unordered iteration (contract from PR 3): `HashMap`/`HashSet`
/// iteration order is nondeterministic across runs, so anything feeding
/// serialized reports or coverage unions must iterate sorted containers.
/// Membership operations (`get`/`insert`/`contains`) are fine; this rule
/// fires on iteration of bindings or fields declared with a hashed type
/// in the same file.
fn unordered_iter(f: &Prepared, out: &mut Vec<RawFinding>) {
    let scoped = [
        "crates/core/",
        "crates/concolic/",
        "crates/netsim/",
        "crates/bgp/",
        "crates/gossip/",
    ]
    .iter()
    .any(|p| f.path.starts_with(p))
        || (f.path.starts_with("src/"));
    if !scoped {
        return;
    }

    // Pass 1: names bound to HashMap/HashSet in this file (let bindings
    // and struct fields).
    let mut names: Vec<String> = Vec::new();
    for line in &f.code {
        if !(line.contains("HashMap<")
            || line.contains("HashSet<")
            || line.contains("HashMap::")
            || line.contains("HashSet::"))
        {
            continue;
        }
        let trimmed = line.trim_start();
        let binding = if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            rest.split([':', '=', ' ']).next()
        } else {
            // Struct field or typed parameter: `name: HashMap<...>`.
            line.split(':').next().and_then(|lhs| {
                let lhs = lhs.trim();
                let name = lhs.rsplit([' ', '(', ',']).next()?;
                Some(name)
            })
        };
        if let Some(name) = binding {
            let name = name.trim();
            if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                names.push(name.to_string());
            }
        }
    }
    if names.is_empty() {
        return;
    }
    names.sort();
    names.dedup();

    // Pass 2: iteration of any collected name.
    const ITER_SUFFIXES: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
    ];
    for (idx, line) in f.code.iter().enumerate() {
        for name in &names {
            let mut flagged = false;
            for (pos, _) in line.match_indices(name.as_str()) {
                // Whole-word check on the left.
                if pos > 0 {
                    let prev = line.as_bytes()[pos - 1] as char;
                    if prev.is_alphanumeric() || prev == '_' {
                        continue;
                    }
                }
                let after = &line[pos + name.len()..];
                if after
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                let after = after.trim_start();
                if ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
                    flagged = true;
                }
            }
            // `for x in name` / `for x in &name` / `for x in &mut name`.
            if !flagged && line.contains("for ") && line.contains(" in ") {
                if let Some(rest) = line.split(" in ").nth(1) {
                    let expr = rest.trim().trim_end_matches('{').trim_end();
                    let expr = expr.strip_prefix('&').unwrap_or(expr);
                    let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
                    if expr == name {
                        flagged = true;
                    }
                }
            }
            if flagged {
                out.push(RawFinding {
                    rule: "unordered-iter",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "iteration over unordered container `{name}` — use BTreeMap/BTreeSet (or collect + sort) before feeding reports or coverage unions"
                    ),
                    fn_line: None,
                });
            }
        }
    }
}

/// R4 — lock hygiene (contract from PR 4): `dice-core` locks must be
/// poison-tolerant. A panicking worker must surface *its own* message, not
/// a secondary "poisoned mutex" panic from a survivor — so every
/// acquisition routes through `crate::sync::lock_unpoisoned`.
fn lock_hygiene(f: &Prepared, out: &mut Vec<RawFinding>) {
    if !in_core(&f.path) {
        return;
    }
    let stripped: Vec<String> = f
        .code
        .iter()
        .map(|l| l.chars().filter(|c| !c.is_whitespace()).collect())
        .collect();
    const PATTERNS: &[&str] = &[".lock().unwrap()", ".try_lock().unwrap()"];
    for idx in 0..stripped.len() {
        for pat in PATTERNS {
            let on_this = stripped[idx].contains(pat);
            // Also catch the rustfmt-split form spanning two lines.
            let spans_next = !on_this
                && idx + 1 < stripped.len()
                && format!("{}{}", stripped[idx], stripped[idx + 1]).contains(pat)
                && stripped[idx].contains(".lock(")
                && !stripped[idx + 1].contains(pat);
            if on_this || spans_next {
                out.push(RawFinding {
                    rule: "lock-hygiene",
                    path: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "bare `{pat}` in dice-core — use crate::sync::lock_unpoisoned (poison-tolerant, race-audit instrumented)"
                    ),
                    fn_line: None,
                });
            }
        }
    }
}

/// Is `path` inside the engine (the crates whose hot loops the semantic
/// rules guard)?
fn in_engine(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/concolic/src/")
}

/// The entry points of the round hot loop and the concolic solve path.
/// Reachability for `panic-freedom` starts here. A root that does not
/// exist in the scanned file set is simply absent (single-file fixture
/// scans define their own); if a refactor renames one in the real tree,
/// every `panic-freedom` allow annotation in its old reachable set goes
/// stale and `stale-allow` fires — the rule polices its own anchors.
const PANIC_ROOTS: &[(&str, &str, Option<&str>)] = &[
    ("core/src/executor.rs", "run_rounds", None),
    ("core/src/campaign.rs", "run", Some("Campaign")),
    ("concolic/src/explore.rs", "explore", None),
    ("concolic/src/solve.rs", "solve", Some("Solver")),
    ("concolic/src/solve.rs", "solve_memo", Some("Solver")),
];

/// Find a fn by file-path suffix, name and (optionally) impl type.
fn find_root(graph: &ItemGraph, suffix: &str, name: &str, impl_of: Option<&str>) -> Option<usize> {
    graph.fns.iter().position(|f| {
        f.name == name
            && !f.in_test
            && graph.files[f.file].path.ends_with(suffix)
            && impl_of.is_none_or(|t| f.impl_of.as_deref() == Some(t))
    })
}

/// Scan one fn body for panicking constructs, pushing a finding per site.
fn panic_sites_in(graph: &ItemGraph, fi: usize, out: &mut Vec<RawFinding>) {
    let f = &graph.fns[fi];
    let Some((open, close)) = f.body else {
        return;
    };
    let toks = &graph.files[f.file].toks;
    let path = &graph.files[f.file].path;
    let mut push = |line: usize, what: String| {
        out.push(RawFinding {
            rule: "panic-freedom",
            path: path.clone(),
            line,
            message: format!(
                "{what} in `{}` — reachable from the round hot loop; plumb a Result or justify with an allow",
                f.name
            ),
            fn_line: Some(f.line),
        });
    };
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut j = open;
    while j <= close {
        let t = &toks[j];
        if t.kind == TokKind::Ident {
            let next_is = |c: char| toks.get(j + 1).is_some_and(|n| n.is_punct(c));
            let prev_dot = j > 0 && toks[j - 1].is_punct('.');
            if prev_dot && next_is('(') && (t.text == "unwrap" || t.text == "expect") {
                push(t.line, format!("`.{}()`", t.text));
            } else if next_is('!') && PANIC_MACROS.contains(&t.text.as_str()) {
                push(t.line, format!("`{}!`", t.text));
            }
        } else if t.is_punct('[') {
            // Identifier-indexed `expr[idx]` can panic out of bounds.
            // Only fires when the receiver is an expression (ident, `)`
            // or `]` on the left — never types, attrs, or `vec![`) and
            // the index contains at least one identifier (literal
            // indices into fixed-size arrays are exempt).
            let recv_is_expr = j > 0
                && (toks[j - 1].kind == TokKind::Ident && !is_keyword(&toks[j - 1].text)
                    || toks[j - 1].is_punct(')')
                    || toks[j - 1].is_punct(']'));
            if recv_is_expr {
                let mut depth = 0i32;
                let mut k = j;
                let mut has_ident = false;
                while k <= close {
                    if toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if toks[k].kind == TokKind::Ident && k > j {
                        has_ident = true;
                    }
                    k += 1;
                }
                if has_ident {
                    push(t.line, "identifier-indexed `[...]`".to_string());
                }
            }
        }
        j += 1;
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "match" | "return" | "in" | "as" | "mut" | "ref" | "move" | "let"
    )
}

/// R5 — panic freedom (contract for the campaign-as-a-service direction):
/// a long-running service cannot `unwrap()` its way down. Every fn
/// transitively reachable from [`PANIC_ROOTS`] (the executor's round
/// stages and the solve path) and living in the engine crates must be
/// free of `unwrap`/`expect`/panicking macros/identifier slice-indexing,
/// or carry a justified allow (line- or fn-level).
fn panic_freedom(graph: &ItemGraph, out: &mut Vec<RawFinding>) {
    let roots: Vec<usize> = PANIC_ROOTS
        .iter()
        .filter_map(|(suffix, name, impl_of)| find_root(graph, suffix, name, *impl_of))
        .collect();
    if roots.is_empty() {
        return;
    }
    for fi in graph.reachable(&roots) {
        let f = &graph.fns[fi];
        if f.in_test || !in_engine(&graph.files[f.file].path) {
            continue;
        }
        panic_sites_in(graph, fi, out);
    }
}

/// The pooled validation paths whose PR-5 allocation-free steady state
/// `alloc-hot-path` guards. Direct bodies only: these are the per-unit
/// inner loops; their callees allocate behind the clone pool by design.
const POOLED_FNS: &[(&str, &str)] = &[
    ("core/src/executor.rs", "run_val_unit"),
    ("core/src/executor.rs", "steal_val_unit"),
    ("core/src/explorer.rs", "validate_one"),
    ("core/src/pool.rs", "acquire"),
    ("core/src/pool.rs", "release"),
    // Zero-copy wire path: the in-place encoders, the delivery batch
    // loop, and the payload-buffer fast path must stay allocation-free
    // per datagram (the buffer-miss slow path lives in callees).
    ("bgp/src/wire.rs", "encode_into"),
    ("gossip/src/wire.rs", "encode_into"),
    ("netsim/src/sim.rs", "process_deliver"),
    ("netsim/src/buf.rs", "acquire"),
    // Delta-capture path: `checkpoint_node` runs once per node per cut;
    // clean nodes must be served by an `Arc::clone` of the cached
    // checkpoint (path syntax — a `.clone()` method call here would be a
    // deep node copy and fires this rule).
    ("netsim/src/sim.rs", "checkpoint_node"),
];

/// R6 — hot-path allocations (contract from PR 5): the pooled validation
/// paths reuse clones instead of allocating per unit. Fresh allocations
/// (`Vec::new`, `vec!`, `format!`, `Box::new`, `.to_vec()`,
/// `.to_string()`, `.to_owned()`, `.clone()`) in their direct bodies
/// regress the steady state the zero-copy roadmap item extends.
fn alloc_hot_path(graph: &ItemGraph, out: &mut Vec<RawFinding>) {
    const ALLOC_QUALIFIERS: &[&str] = &["Vec", "String", "Box", "BTreeMap", "BTreeSet", "HashMap"];
    const ALLOC_MACROS: &[&str] = &["vec", "format"];
    const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "clone"];
    for (suffix, name) in POOLED_FNS {
        let Some(fi) = find_root(graph, suffix, name, None) else {
            continue;
        };
        let f = &graph.fns[fi];
        let Some((open, close)) = f.body else {
            continue;
        };
        let toks = &graph.files[f.file].toks;
        let path = &graph.files[f.file].path;
        for j in open..=close {
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |c: char| toks.get(j + 1).is_some_and(|n| n.is_punct(c));
            let hit = if next_is('(')
                && j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && t.text == "new"
                && ALLOC_QUALIFIERS.contains(&toks[j - 3].text.as_str())
            {
                Some(format!("`{}::new()`", toks[j - 3].text))
            } else if next_is('!') && ALLOC_MACROS.contains(&t.text.as_str()) {
                Some(format!("`{}!`", t.text))
            } else if next_is('(')
                && j > 0
                && toks[j - 1].is_punct('.')
                && ALLOC_METHODS.contains(&t.text.as_str())
            {
                Some(format!("`.{}()`", t.text))
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(RawFinding {
                    rule: "alloc-hot-path",
                    path: path.clone(),
                    line: t.line,
                    message: format!(
                        "{what} in pooled path `{}` — the validation loop must reuse pooled clones, not allocate per unit",
                        f.name
                    ),
                    fn_line: Some(f.line),
                });
            }
        }
    }
}

/// R7 — cfg pairing (contract from PR 6's race-audit layer): a
/// `#[cfg(feature = "race-audit")]`-gated fn or statement must have a
/// feature-off counterpart in the same scope, otherwise the default
/// build silently loses behavior (feature rot that no offline build
/// catches). Structural carriers — gated fields, impls, mods, uses —
/// are exempt: they simply vanish feature-off, and any code referencing
/// them is itself gated and checked here.
fn cfg_pairing(graph: &ItemGraph, out: &mut Vec<RawFinding>) {
    let is_positive_audit = |text: &str| {
        text.contains("feature = \"race-audit\"")
            && !text.contains("not(")
            && !text.contains("not (")
    };
    let is_negative_audit = |text: &str| {
        text.contains("race-audit") && (text.contains("not(") || text.contains("not ("))
    };
    for a in &graph.attrs {
        if !is_positive_audit(&a.text) {
            continue;
        }
        let path = &graph.files[a.file].path;
        if path.starts_with("tests/") || path.contains("/tests/") || path.starts_with("examples/") {
            continue; // test-tree code is additive coverage, not behavior
        }
        match a.attached {
            Attached::Fn => {
                let Some(f) = graph
                    .fns
                    .iter()
                    .find(|f| f.file == a.file && f.attrs.iter().any(|(l, _)| *l == a.line))
                else {
                    continue;
                };
                if f.in_test || f.container_attrs.iter().any(|t| t.contains("race-audit")) {
                    continue;
                }
                let paired = graph.fns.iter().any(|g| {
                    g.file == a.file
                        && g.name == f.name
                        && g.attrs.iter().any(|(_, t)| is_negative_audit(t))
                });
                if !paired {
                    out.push(RawFinding {
                        rule: "cfg-pairing",
                        path: path.clone(),
                        line: a.line,
                        message: format!(
                            "race-audit-gated fn `{}` has no `#[cfg(not(feature = ...))]` counterpart — the default build loses it silently",
                            f.name
                        ),
                        fn_line: None,
                    });
                }
            }
            Attached::Stmt => {
                let paired = graph.attrs.iter().any(|b| {
                    b.file == a.file
                        && b.attached == Attached::Stmt
                        && b.enclosing_fn == a.enclosing_fn
                        && is_negative_audit(&b.text)
                });
                if !paired {
                    let fn_name = a
                        .enclosing_fn
                        .map(|fi| graph.fns[fi].name.clone())
                        .unwrap_or_else(|| "?".into());
                    out.push(RawFinding {
                        rule: "cfg-pairing",
                        path: path.clone(),
                        line: a.line,
                        message: format!(
                            "race-audit-gated statement in `{fn_name}` has no `#[cfg(not(feature = ...))]` sibling — unused-binding or behavior drift feature-off"
                        ),
                        fn_line: None,
                    });
                }
            }
            _ => {}
        }
    }
}

/// A wall-clock-named report field: these are host-time measurements that
/// the determinism contract requires `normalized()` to zero.
fn is_wall_clock_field(name: &str) -> bool {
    name.starts_with("wall_")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.ends_with("_us_cum")
        || name.ends_with("_ms_cum")
        || name.ends_with("_micros")
}

/// R8 — schema drift (contract from PR 3/PR 5, upgraded from the PR-6
/// name-pattern rule): walk the `#[derive(Serialize)]` structs reachable
/// from `CampaignReport` over field-type references and verify every
/// wall-clock field is zeroed by a `normalized()` body (directly, or by
/// resetting its whole struct to `Default`). The item graph sees through
/// `Vec<_>`/`Option<_>`/`BTreeMap<_, _>` wrappers, so nested report
/// shapes that no test constructs are still covered statically —
/// complementing the runtime reflection test.
fn schema_drift(files: &[Prepared], graph: &ItemGraph, out: &mut Vec<RawFinding>) {
    // Serialize-deriving structs in core, by name.
    let core_structs: Vec<usize> = graph
        .structs
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            in_core(&graph.files[s.file].path) && s.derives.iter().any(|d| d == "Serialize")
        })
        .map(|(i, _)| i)
        .collect();
    let by_name = |name: &str| -> Vec<usize> {
        core_structs
            .iter()
            .copied()
            .filter(|&i| graph.structs[i].name == name)
            .collect()
    };
    // BFS from CampaignReport over field-type references.
    let mut reach: Vec<usize> = by_name("CampaignReport");
    if reach.is_empty() {
        return;
    }
    let mut seen: std::collections::BTreeSet<usize> = reach.iter().copied().collect();
    while let Some(si) = reach.pop() {
        for field in &graph.structs[si].fields {
            for ty in &field.ty_idents {
                for ref_idx in by_name(ty) {
                    if seen.insert(ref_idx) {
                        reach.push(ref_idx);
                    }
                }
            }
        }
    }

    // Every `fn normalized` body in core, by balanced-brace extraction.
    let mut normalized_bodies = String::new();
    for f in files {
        if !in_core(&f.path) {
            continue;
        }
        let joined = f.code.join("\n");
        let mut search = 0usize;
        while let Some(pos) = joined[search..].find("fn normalized") {
            let start = search + pos;
            if let Some(open_rel) = joined[start..].find('{') {
                let open = start + open_rel;
                let mut depth = 0i32;
                let mut end = open;
                for (i, c) in joined[open..].char_indices() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                end = open + i;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                normalized_bodies.push_str(&joined[open..=end]);
                normalized_bodies.push('\n');
                search = end;
            } else {
                break;
            }
        }
    }

    for &si in &seen {
        let s = &graph.structs[si];
        let path = &graph.files[s.file].path;
        for field in &s.fields {
            if !is_wall_clock_field(&field.name) {
                continue;
            }
            let zeroed_directly = normalized_bodies.contains(&format!(".{} = 0", field.name))
                || normalized_bodies.contains(&format!("{}: 0", field.name));
            let struct_reset = normalized_bodies.contains(&format!("{}::default()", s.name));
            if !(zeroed_directly || struct_reset) {
                let hint = if normalized_bodies.is_empty() {
                    "no normalized() implementation found in dice-core"
                } else {
                    "normalized() never zeroes it"
                };
                out.push(RawFinding {
                    rule: "schema-drift",
                    path: path.clone(),
                    line: field.line,
                    message: format!(
                        "wall-clock field `{}.{}` is serialized via CampaignReport but {hint} — the byte-identity contract breaks",
                        s.name, field.name
                    ),
                    fn_line: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{scan_files, SourceFile};

    fn rules_of(path: &str, content: &str) -> Vec<String> {
        let report = scan_files(&[SourceFile {
            path: path.into(),
            content: content.into(),
        }]);
        report.violations.iter().map(|f| f.rule.clone()).collect()
    }

    #[test]
    fn membership_ops_on_hashed_containers_are_fine() {
        let src = "use std::collections::HashSet;\n\
                   fn f() {\n\
                   let mut attempted: HashSet<u64> = HashSet::new();\n\
                   attempted.insert(3);\n\
                   assert!(attempted.contains(&3));\n\
                   }\n";
        assert!(rules_of("crates/concolic/src/x.rs", src).is_empty());
    }

    #[test]
    fn adapter_modules_may_downcast_their_own_type() {
        let src = "fn g(n: &dyn Node) { n.as_any().downcast_ref::<BgpRouter>(); }\n";
        assert!(rules_of("crates/core/src/bgp_sut.rs", src).is_empty());
        assert_eq!(
            rules_of("crates/core/src/explorer.rs", src),
            vec!["seam-containment"]
        );
    }

    #[test]
    fn vendor_and_lint_paths_are_out_of_scope() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(rules_of("vendor/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn schema_drift_walks_reachable_structs_cross_file() {
        // Nested struct reached only through CampaignReport's field type;
        // its wall-clock field must be zeroed even though no name pattern
        // ties the two files together.
        let root = "#[derive(Debug, Clone, Serialize)]\n\
                    pub struct CampaignReport {\n\
                    pub rounds: Vec<Inner>,\n\
                    }\n";
        let inner = "#[derive(Debug, Clone, Serialize)]\n\
                     pub struct Inner {\n\
                     pub wall_us: u64,\n\
                     pub items: usize,\n\
                     }\n";
        let dirty = crate::scan_files(&[
            SourceFile {
                path: "crates/core/src/a.rs".into(),
                content: root.into(),
            },
            SourceFile {
                path: "crates/core/src/b.rs".into(),
                content: inner.into(),
            },
        ]);
        assert_eq!(dirty.violations.len(), 1, "{:?}", dirty.violations);
        assert_eq!(dirty.violations[0].rule, "schema-drift");
        assert_eq!(dirty.violations[0].path, "crates/core/src/b.rs");
        assert_eq!(dirty.violations[0].line, 3);

        let normalized_good = "impl Inner {\n\
                               pub fn normalized(&self) -> Inner {\n\
                               let mut r = self.clone();\n\
                               r.wall_us = 0;\n\
                               r\n\
                               }\n\
                               }\n";
        let clean = crate::scan_files(&[
            SourceFile {
                path: "crates/core/src/a.rs".into(),
                content: root.into(),
            },
            SourceFile {
                path: "crates/core/src/b.rs".into(),
                content: format!("{inner}{normalized_good}"),
            },
        ]);
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);
    }

    #[test]
    fn schema_drift_ignores_structs_not_reachable_from_the_report() {
        // A Serialize struct nobody references from CampaignReport does
        // not serialize into campaign output; its wall fields are its
        // own business.
        let src = "#[derive(Debug, Clone, Serialize)]\n\
                   pub struct CampaignReport {\n\
                   pub rounds: u64,\n\
                   }\n\
                   #[derive(Debug, Clone, Serialize)]\n\
                   pub struct Standalone {\n\
                   pub wall_us: u64,\n\
                   }\n";
        assert!(rules_of("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn struct_wide_default_reset_counts_as_zeroing() {
        let src = "#[derive(Debug, Default, Serialize)]\n\
                   pub struct Perf {\n\
                   pub solve_us: u64,\n\
                   }\n\
                   #[derive(Debug, Clone, Serialize)]\n\
                   pub struct CampaignReport {\n\
                   pub perf: Perf,\n\
                   }\n\
                   impl CampaignReport {\n\
                   pub fn normalized(&self) -> CampaignReport {\n\
                   let mut r = self.clone();\n\
                   r.perf = Perf::default();\n\
                   r\n\
                   }\n\
                   }\n";
        assert!(rules_of("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn panic_freedom_follows_call_edges_from_the_roots() {
        let src = "pub fn run_rounds() { stage(); }\n\
                   fn stage() { helper(); }\n\
                   fn helper(v: &[u8], i: usize) -> u8 {\n\
                   let x: Option<u8> = None;\n\
                   x.unwrap()\n\
                   }\n\
                   fn unreached() { let y: Option<u8> = None; y.expect(\"never flagged\"); }\n";
        let got = rules_of("crates/core/src/executor.rs", src);
        assert_eq!(
            got,
            vec!["panic-freedom"],
            "only the reachable unwrap fires"
        );
    }

    #[test]
    fn panic_freedom_flags_identifier_indexing_but_not_literals() {
        let src = "pub fn run_rounds(v: &[u8], i: usize) {\n\
                   let _a = v[i];\n\
                   let table = [1u8, 2, 3];\n\
                   let _b = table[0];\n\
                   }\n";
        let report = crate::scan_files(&[SourceFile {
            path: "crates/core/src/executor.rs".into(),
            content: src.into(),
        }]);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].line, 2);
        assert!(report.violations[0].message.contains("identifier-indexed"));
    }

    #[test]
    fn fn_level_allow_covers_every_site_in_the_body() {
        let m = "dice-lint: allow";
        let src = format!(
            "pub fn run_rounds(v: &[u8], i: usize) {{ helper(v, i); }}\n\
             // {m}(panic-freedom): fixture — indices bounded by caller\n\
             fn helper(v: &[u8], i: usize) -> u8 {{\n\
             let a = v[i];\n\
             let b = v[i + 1];\n\
             a + b\n\
             }}\n"
        );
        let report = crate::scan_files(&[SourceFile {
            path: "crates/core/src/executor.rs".into(),
            content: src,
        }]);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allowed.len(), 2, "both index sites suppressed");
    }

    #[test]
    fn alloc_hot_path_guards_the_pooled_fns_only() {
        let src = "impl Shared {\n\
                   fn run_val_unit(&self) { let v: Vec<u8> = Vec::new(); drop(v); }\n\
                   fn elsewhere(&self) { let v: Vec<u8> = Vec::new(); drop(v); }\n\
                   }\n";
        let report = crate::scan_files(&[SourceFile {
            path: "crates/core/src/executor.rs".into(),
            content: src.into(),
        }]);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "alloc-hot-path");
        assert_eq!(report.violations[0].line, 2);
    }

    #[test]
    fn alloc_hot_path_guards_the_wire_path_roots() {
        // The zero-copy roots: `encode_into` must stay allocation-free,
        // while the `encode` convenience wrapper (not in the root set)
        // may allocate its one output vector.
        let src = "pub fn encode_into(msg: &Message, out: &mut Vec<u8>) {\n\
                   let scratch = Vec::new();\n\
                   drop(scratch);\n\
                   }\n\
                   pub fn encode(msg: &Message) -> Vec<u8> {\n\
                   let mut out = Vec::new();\n\
                   encode_into(msg, &mut out);\n\
                   out\n\
                   }\n";
        let report = crate::scan_files(&[SourceFile {
            path: "crates/bgp/src/wire.rs".into(),
            content: src.into(),
        }]);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "alloc-hot-path");
        assert_eq!(report.violations[0].line, 2, "only encode_into is a root");

        // The buffer-pool fast path: `acquire` in netsim's buf.rs is a
        // root too (`Vec::with_capacity` on the miss path is allowed —
        // only the listed constructors are hot-path regressions).
        let pool_src = "impl BufPool {\n\
                        pub fn acquire(&self) -> PooledBuf {\n\
                        let fallback = Vec::with_capacity(64);\n\
                        let spill = fallback.to_vec();\n\
                        PooledBuf { vec: spill, home: None }\n\
                        }\n\
                        }\n";
        let report = crate::scan_files(&[SourceFile {
            path: "crates/netsim/src/buf.rs".into(),
            content: pool_src.into(),
        }]);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(
            report.violations[0].message.contains("to_vec"),
            "with_capacity passes, .to_vec() fires: {:?}",
            report.violations
        );
    }

    #[test]
    fn alloc_hot_path_guards_the_delta_capture_root() {
        // `checkpoint_node` serves clean nodes from the checkpoint cache
        // via `Arc::clone` (path syntax, refcount bump — not in the
        // alloc list); a `.clone()` method call there is a deep per-node
        // copy and must fire.
        let ok = "impl Simulator {\n\
                  fn checkpoint_node(&mut self, n: NodeId) -> Option<Arc<dyn Node>> {\n\
                  let cached = self.cache[n.index()].as_ref()?;\n\
                  Some(std::sync::Arc::clone(cached))\n\
                  }\n\
                  }\n";
        let report = crate::scan_files(&[SourceFile {
            path: "crates/netsim/src/sim.rs".into(),
            content: ok.into(),
        }]);
        assert!(report.violations.is_empty(), "{:?}", report.violations);

        let deep = "impl Simulator {\n\
                    fn checkpoint_node(&mut self, n: NodeId) -> Option<Arc<dyn Node>> {\n\
                    let cached = self.cache[n.index()].as_ref()?;\n\
                    Some(cached.clone())\n\
                    }\n\
                    }\n";
        let report = crate::scan_files(&[SourceFile {
            path: "crates/netsim/src/sim.rs".into(),
            content: deep.into(),
        }]);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "alloc-hot-path");
        assert_eq!(report.violations[0].line, 4);
    }

    #[test]
    fn cfg_pairing_requires_a_feature_off_sibling() {
        let gated_only = "#[cfg(feature = \"race-audit\")]\n\
                          pub fn audit_hook() {}\n";
        let got = rules_of("crates/core/src/sync.rs", gated_only);
        assert_eq!(got, vec!["cfg-pairing"]);

        let paired = "#[cfg(feature = \"race-audit\")]\n\
                      pub fn audit_hook() {}\n\
                      #[cfg(not(feature = \"race-audit\"))]\n\
                      pub fn audit_hook() {}\n";
        assert!(rules_of("crates/core/src/sync.rs", paired).is_empty());

        let stmt_pair = "pub fn f(name: &str) {\n\
                         #[cfg(feature = \"race-audit\")]\n\
                         on_acquire(name);\n\
                         #[cfg(not(feature = \"race-audit\"))]\n\
                         let _ = name;\n\
                         }\n";
        assert!(rules_of("crates/core/src/sync.rs", stmt_pair).is_empty());
    }
}
