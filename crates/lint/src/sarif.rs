//! SARIF 2.1.0 output for code-scanning UIs. Hand-rolled like the JSON
//! report (std-only crate). Violations become `error`-level results;
//! allowed findings are emitted as suppressed `note`s so scanners show
//! the justified escape hatches without failing on them.

use std::fmt::Write as _;

use crate::{json_escape, Finding, LintReport, RULES};

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn result_json(f: &Finding, level: &str, suppressed: bool) -> String {
    let mut s = String::from("        {\n");
    let _ = writeln!(s, "          \"ruleId\": \"{}\",", json_escape(&f.rule));
    let _ = writeln!(s, "          \"level\": \"{level}\",");
    let mut text = f.message.clone();
    if let Some(reason) = &f.reason {
        let _ = write!(text, " [allowed: {reason}]");
    }
    let _ = writeln!(
        s,
        "          \"message\": {{\"text\": \"{}\"}},",
        json_escape(&text)
    );
    if suppressed {
        s.push_str("          \"suppressions\": [{\"kind\": \"inSource\"}],\n");
    }
    let _ = writeln!(
        s,
        "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]",
        json_escape(&f.path),
        f.line
    );
    s.push_str("        }");
    s
}

/// Render the report as a SARIF 2.1.0 log.
pub fn to_sarif(report: &LintReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"$schema\": \"{SCHEMA}\",");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"dice-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/dice-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        let comma = if i + 1 < RULES.len() { "," } else { "" };
        let _ = writeln!(s, "            {{\"id\": \"{r}\"}}{comma}");
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    let total = report.violations.len() + report.allowed.len();
    let mut emitted = 0usize;
    for f in &report.violations {
        emitted += 1;
        let comma = if emitted < total { ",\n" } else { "\n" };
        s.push_str(&result_json(f, "error", false));
        s.push_str(comma);
    }
    for f in &report.allowed {
        emitted += 1;
        let comma = if emitted < total { ",\n" } else { "\n" };
        s.push_str(&result_json(f, "note", true));
        s.push_str(comma);
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan_files, SourceFile};

    #[test]
    fn sarif_log_carries_rule_location_and_suppression() {
        let m = crate::marker();
        let content = format!(
            "fn f() {{ let t = std::time::Instant::now(); }}\n\
             // {m}determinism-zone): fixture reason\n\
             fn g() {{ let u = std::time::Instant::now(); }}\n"
        );
        let report = scan_files(&[SourceFile {
            path: "crates/core/src/x.rs".into(),
            content,
        }]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.allowed.len(), 1);
        let sarif = to_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"ruleId\": \"determinism-zone\""));
        assert!(sarif.contains("\"startLine\": 1"));
        assert!(sarif.contains("\"suppressions\": [{\"kind\": \"inSource\"}]"));
        assert!(
            sarif.contains("\"id\": \"panic-freedom\""),
            "all rules listed"
        );
    }
}
