//! The "code view" pass: blank out comment text and string/char-literal
//! contents so rules match only real tokens — never doc prose or quoted
//! pattern strings. Delimiters and code structure keep their columns
//! (blanked chars become spaces), so line/column positions of the
//! surviving tokens are unchanged.

/// Lexer state carried across lines.
enum State {
    Code,
    /// Inside `/* ... */`, with nesting depth.
    Block(u32),
    /// Inside a `"`-delimited string (escapes honored).
    Str,
    /// Inside a raw string closed by `"` followed by `hashes` `#`s.
    RawStr(u32),
}

/// Return per-line copies of `content` with comments and string/char
/// literal contents replaced by spaces.
pub(crate) fn blank_noncode(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for line in content.lines() {
        out.push(blank_line(line, &mut state));
    }
    out
}

fn blank_line(line: &str, state: &mut State) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0usize;
    while i < chars.len() {
        match state {
            State::Block(depth) => {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if *depth == 0 {
                        *state = State::Code;
                    }
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if chars[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    *state = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let n = *hashes as usize;
                if chars[i] == '"'
                    && chars[i + 1..].iter().take(n).filter(|&&c| c == '#').count() == n
                {
                    out.push('"');
                    for _ in 0..n {
                        out.push('#');
                    }
                    i += 1 + n;
                    *state = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: blank the rest of the line. Keep the
                    // `//` so "comment starts here" stays visible.
                    out.push_str("//");
                    for _ in i + 2..chars.len() {
                        out.push(' ');
                    }
                    i = chars.len();
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = State::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    out.push('"');
                    i += 1;
                    *state = State::Str;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
                    // r"..."  r#"..."#  br"..."  b"..." — consume the
                    // prefix, count the hashes, enter the right state.
                    let mut j = i;
                    let mut raw = false;
                    if chars[j] == 'b' {
                        out.push('b');
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') {
                        raw = true;
                        out.push('r');
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        out.push('#');
                        hashes += 1;
                        j += 1;
                    }
                    out.push('"');
                    i = j + 1;
                    *state = if raw {
                        State::RawStr(hashes)
                    } else {
                        State::Str
                    };
                } else if c == '\'' && is_char_literal(&chars, i) {
                    // Blank the char literal contents.
                    out.push('\'');
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        out.push_str("  ");
                        j += 2;
                    } else {
                        out.push(' ');
                        j += 1;
                    }
                    if chars.get(j) == Some(&'\'') {
                        out.push('\'');
                        j += 1;
                    }
                    i = j;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
        }
    }
    out
}

/// `r` / `b` at `i` starts a raw/byte string iff the following chars are
/// an optional `r` (after `b`), zero or more `#`s, then `"` — and the
/// char before `i` is not identifier-ish (so `writer"x"` never counts,
/// not that it parses anyway).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    if chars[i] == 'b' && chars.get(j) == Some(&'r') {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Distinguish `'x'` / `'\n'` char literals from `'a` lifetimes.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> String {
        blank_noncode(line).remove(0)
    }

    #[test]
    fn line_comments_are_blanked() {
        assert_eq!(
            one("let x = 1; // Instant::now"),
            "let x = 1; //             "
        );
    }

    #[test]
    fn doc_comments_are_blanked() {
        let s = one("/// calls Instant::now for timing");
        assert!(!s.contains("Instant"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let s = one("let p = \"Instant::now\";");
        assert!(!s.contains("Instant"), "{s:?}");
        assert!(s.contains("let p = \""));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let s = one(r#"let p = "a\"b"; let q = Instant::now();"#);
        assert!(s.contains("Instant::now"), "{s:?}");
    }

    #[test]
    fn block_comments_span_lines() {
        let lines = blank_noncode("/* Instant::now\nstill comment */ let x = 1;");
        assert!(!lines[0].contains("Instant"));
        assert!(!lines[1].contains("comment"));
        assert!(lines[1].contains("let x = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = one(r##"let p = r#"Instant::now"#; let t = 2;"##);
        assert!(!s.contains("Instant"), "{s:?}");
        assert!(s.contains("let t = 2;"), "{s:?}");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = one("fn f<'a>(x: &'a str) { let c = '\"'; let d = Instant::now(); }");
        assert!(s.contains("fn f<'a>(x: &'a str)"), "{s:?}");
        assert!(s.contains("Instant::now"), "{s:?}");
    }

    #[test]
    fn code_survives_untouched() {
        let src = "let mut m: HashMap<u32, u8> = HashMap::new();";
        assert_eq!(one(src), src);
    }
}
