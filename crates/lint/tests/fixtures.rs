//! Fixture suite: one seeded violation per rule, asserting the exact
//! rule id, file and line — proof that every rule actually fires — plus
//! the allow-annotation round trip and the meta-rules policing the
//! escape hatch.
//!
//! Fixtures use the `.fixture` extension so cargo never compiles them
//! and `scan_workspace` never visits them (it skips `fixtures/` dirs and
//! `crates/lint/` entirely); each is presented to [`dice_lint::scan_files`]
//! under a *virtual* workspace path chosen to land in the right rule
//! scope.

use dice_lint::{apply_fixes, scan_files, Finding, LintReport, SourceFile};

fn scan_one(virtual_path: &str, content: &str) -> LintReport {
    scan_files(&[SourceFile {
        path: virtual_path.into(),
        content: content.into(),
    }])
}

fn triple(f: &Finding) -> (&str, &str, usize) {
    (f.rule.as_str(), f.path.as_str(), f.line)
}

#[test]
fn seam_containment_fires_on_foreign_downcast() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/seam.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("seam-containment", "crates/core/src/campaign.rs", 3)]
    );
}

#[test]
fn determinism_zone_fires_on_wall_clock_read() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/determinism.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("determinism-zone", "crates/core/src/explorer.rs", 3)]
    );
}

#[test]
fn determinism_zone_covers_the_schedule_module() {
    // The dynamics-schedule subsystem is in scope for R2: an ambient-RNG
    // draw fires at its exact line, while the `SimRng`-seeded expansion
    // path in the same file is clean.
    let report = scan_one(
        "crates/netsim/src/schedule.rs",
        include_str!("fixtures/schedule_determinism.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("determinism-zone", "crates/netsim/src/schedule.rs", 5)]
    );
}

#[test]
fn determinism_zone_covers_the_channel_fidelity_module() {
    // The link-fault layer is in scope for R2: an ambient-RNG draw in a
    // sampling helper fires at its exact line, while the per-link
    // `SimRng`-stream path in the same file is clean.
    let report = scan_one(
        "crates/netsim/src/faults.rs",
        include_str!("fixtures/faults_determinism.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("determinism-zone", "crates/netsim/src/faults.rs", 6)]
    );
}

#[test]
fn unordered_iter_fires_on_hashmap_iteration() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/unordered.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("unordered-iter", "crates/core/src/campaign.rs", 6)]
    );
}

#[test]
fn lock_hygiene_fires_on_bare_unwrap() {
    let report = scan_one(
        "crates/core/src/executor.rs",
        include_str!("fixtures/lock.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("lock-hygiene", "crates/core/src/executor.rs", 3)]
    );
}

#[test]
fn schema_drift_fires_on_unzeroed_reachable_field() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/schema_drift.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("schema-drift", "crates/core/src/campaign.rs", 9)]
    );
    assert!(
        report.violations[0]
            .message
            .contains("StageBreakdown.wall_us"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn panic_freedom_fires_on_expect_reachable_from_run_rounds() {
    let report = scan_one(
        "crates/core/src/executor.rs",
        include_str!("fixtures/panic_freedom.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("panic-freedom", "crates/core/src/executor.rs", 8)]
    );
    assert!(
        report.violations[0].message.contains("`.expect()`"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn alloc_hot_path_fires_on_to_vec_in_pooled_fn() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/alloc_hot_path.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("alloc-hot-path", "crates/core/src/explorer.rs", 2)]
    );
    assert!(
        report.violations[0].message.contains("`.to_vec()`"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn cfg_pairing_fires_on_unpaired_gated_fn() {
    let report = scan_one(
        "crates/core/src/sync.rs",
        include_str!("fixtures/cfg_pairing.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("cfg-pairing", "crates/core/src/sync.rs", 3)]
    );
    assert!(
        report.violations[0].message.contains("on_acquire"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn autofix_rewrites_bare_lock_unwrap_and_is_idempotent() {
    let files = [SourceFile {
        path: "crates/core/src/executor.rs".into(),
        content: include_str!("fixtures/fix_lock.fixture").into(),
    }];
    let fixed = apply_fixes(&files);
    assert_eq!(fixed.len(), 1);
    assert_eq!(fixed[0].edits, 1);
    assert!(
        fixed[0]
            .content
            .contains("crate::sync::lock_unpoisoned(&m, \"m\")"),
        "{}",
        fixed[0].content
    );
    // The rewrite clears the violation…
    let rescanned = scan_one("crates/core/src/executor.rs", &fixed[0].content);
    assert!(
        rescanned.violations.is_empty(),
        "{:?}",
        rescanned.violations
    );
    // …and a second pass has nothing to do.
    let again = apply_fixes(&[SourceFile {
        path: "crates/core/src/executor.rs".into(),
        content: fixed[0].content.clone(),
    }]);
    assert!(again.is_empty(), "autofix must be idempotent");
}

#[test]
fn autofix_prunes_stale_annotations_in_both_placements() {
    let files = [SourceFile {
        path: "crates/core/src/executor.rs".into(),
        content: include_str!("fixtures/fix_stale.fixture").into(),
    }];
    let fixed = apply_fixes(&files);
    assert_eq!(fixed.len(), 1);
    assert_eq!(fixed[0].edits, 2);
    assert!(
        !fixed[0].content.contains("allow("),
        "both annotations removed: {}",
        fixed[0].content
    );
    assert!(fixed[0].content.contains("pub fn calm()"));
    assert!(fixed[0].content.contains("    7\n"), "{}", fixed[0].content);
    let again = apply_fixes(&[SourceFile {
        path: "crates/core/src/executor.rs".into(),
        content: fixed[0].content.clone(),
    }]);
    assert!(again.is_empty(), "autofix must be idempotent");
}

#[test]
fn allow_annotations_suppress_and_carry_their_reason() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/allowed.fixture"),
    );
    assert!(
        report.violations.is_empty(),
        "both findings must be suppressed: {:?}",
        report.violations
    );
    assert_eq!(
        report.allowed.iter().map(triple).collect::<Vec<_>>(),
        vec![
            ("determinism-zone", "crates/core/src/explorer.rs", 4),
            ("determinism-zone", "crates/core/src/explorer.rs", 8),
        ]
    );
    // Round trip: the justification text survives into the report.
    assert_eq!(
        report.allowed[0].reason.as_deref(),
        Some("fixture exercises the own-line form")
    );
    assert_eq!(report.allowed[1].reason.as_deref(), Some("trailing form"));
}

#[test]
fn malformed_annotations_are_themselves_violations() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/allow_syntax.fixture"),
    );
    let got: Vec<_> = report.violations.iter().map(triple).collect();
    assert_eq!(
        got,
        vec![
            // Unknown rule id.
            ("allow-syntax", "crates/core/src/explorer.rs", 3),
            // Missing `: <reason>` — and therefore it suppresses nothing:
            // the wall-clock read below it still surfaces.
            ("allow-syntax", "crates/core/src/explorer.rs", 5),
            ("determinism-zone", "crates/core/src/explorer.rs", 6),
        ]
    );
}

#[test]
fn stale_annotations_are_flagged() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/stale.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("stale-allow", "crates/core/src/explorer.rs", 3)]
    );
}

#[test]
fn json_report_reflects_the_findings() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/seam.fixture"),
    );
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"seam-containment\""), "{json}");
    assert!(json.contains("\"line\": 3"), "{json}");
    assert!(!report.is_clean());
}
