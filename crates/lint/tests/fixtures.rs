//! Fixture suite: one seeded violation per rule, asserting the exact
//! rule id, file and line — proof that every rule actually fires — plus
//! the allow-annotation round trip and the meta-rules policing the
//! escape hatch.
//!
//! Fixtures use the `.fixture` extension so cargo never compiles them
//! and `scan_workspace` never visits them (it skips `fixtures/` dirs and
//! `crates/lint/` entirely); each is presented to [`dice_lint::scan_files`]
//! under a *virtual* workspace path chosen to land in the right rule
//! scope.

use dice_lint::{scan_files, Finding, LintReport, SourceFile};

fn scan_one(virtual_path: &str, content: &str) -> LintReport {
    scan_files(&[SourceFile {
        path: virtual_path.into(),
        content: content.into(),
    }])
}

fn triple(f: &Finding) -> (&str, &str, usize) {
    (f.rule.as_str(), f.path.as_str(), f.line)
}

#[test]
fn seam_containment_fires_on_foreign_downcast() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/seam.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("seam-containment", "crates/core/src/campaign.rs", 3)]
    );
}

#[test]
fn determinism_zone_fires_on_wall_clock_read() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/determinism.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("determinism-zone", "crates/core/src/explorer.rs", 3)]
    );
}

#[test]
fn unordered_iter_fires_on_hashmap_iteration() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/unordered.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("unordered-iter", "crates/core/src/campaign.rs", 6)]
    );
}

#[test]
fn lock_hygiene_fires_on_bare_unwrap() {
    let report = scan_one(
        "crates/core/src/executor.rs",
        include_str!("fixtures/lock.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("lock-hygiene", "crates/core/src/executor.rs", 3)]
    );
}

#[test]
fn wall_clock_coverage_fires_on_unzeroed_field() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/wall_clock.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("wall-clock-coverage", "crates/core/src/campaign.rs", 5)]
    );
    assert!(
        report.violations[0]
            .message
            .contains("FixtureReport.wall_us"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn allow_annotations_suppress_and_carry_their_reason() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/allowed.fixture"),
    );
    assert!(
        report.violations.is_empty(),
        "both findings must be suppressed: {:?}",
        report.violations
    );
    assert_eq!(
        report.allowed.iter().map(triple).collect::<Vec<_>>(),
        vec![
            ("determinism-zone", "crates/core/src/explorer.rs", 4),
            ("determinism-zone", "crates/core/src/explorer.rs", 8),
        ]
    );
    // Round trip: the justification text survives into the report.
    assert_eq!(
        report.allowed[0].reason.as_deref(),
        Some("fixture exercises the own-line form")
    );
    assert_eq!(report.allowed[1].reason.as_deref(), Some("trailing form"));
}

#[test]
fn malformed_annotations_are_themselves_violations() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/allow_syntax.fixture"),
    );
    let got: Vec<_> = report.violations.iter().map(triple).collect();
    assert_eq!(
        got,
        vec![
            // Unknown rule id.
            ("allow-syntax", "crates/core/src/explorer.rs", 3),
            // Missing `: <reason>` — and therefore it suppresses nothing:
            // the wall-clock read below it still surfaces.
            ("allow-syntax", "crates/core/src/explorer.rs", 5),
            ("determinism-zone", "crates/core/src/explorer.rs", 6),
        ]
    );
}

#[test]
fn stale_annotations_are_flagged() {
    let report = scan_one(
        "crates/core/src/explorer.rs",
        include_str!("fixtures/stale.fixture"),
    );
    assert_eq!(
        report.violations.iter().map(triple).collect::<Vec<_>>(),
        vec![("stale-allow", "crates/core/src/explorer.rs", 3)]
    );
}

#[test]
fn json_report_reflects_the_findings() {
    let report = scan_one(
        "crates/core/src/campaign.rs",
        include_str!("fixtures/seam.fixture"),
    );
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"seam-containment\""), "{json}");
    assert!(json.contains("\"line\": 3"), "{json}");
    assert!(!report.is_clean());
}
