//! Size-classed payload buffer pool for the zero-copy wire path.
//!
//! Wire payloads are the highest-frequency allocation in a campaign: every
//! `NodeApi::send` used to heap-allocate a fresh `Vec<u8>`, carry it through
//! the channel, and drop it after delivery. [`BufPool`] recycles those
//! buffers through the full lifecycle instead: a handler acquires a
//! [`PooledBuf`], encodes into it in place (see the codecs' `encode_into`),
//! the channel holds it in flight as a [`Payload`], and delivery hands the
//! node a borrowed `&[u8]` before returning the buffer to the pool — so
//! steady-state traffic does no payload allocation at all.
//!
//! Hand-rolled std-only (the build environment is offline), mirroring what
//! `dice-core`'s clone pool does for whole simulators. The shelf lives
//! behind an `Arc<Mutex<..>>` so the pool handle is `Clone + Send` and the
//! owning [`Simulator`](crate::sim::Simulator) stays movable across
//! validation worker threads; the lock is uncontended in practice because
//! each simulator owns a private pool.

use std::sync::{Arc, Mutex};

/// Size-class upper bounds, in bytes. A buffer is filed under the smallest
/// class whose bound covers its capacity; buffers that outgrow the largest
/// class are simply dropped (BGP caps messages at 4096 bytes, so in
/// practice nothing is).
const CLASSES: [usize; 4] = [64, 256, 1024, 4096];

/// Free buffers retained per class; beyond this, returns are dropped so an
/// exploration burst cannot pin unbounded memory.
const PER_CLASS_CAP: usize = 128;

/// Hot-path counters for the wire substrate, drained per simulator by
/// [`Simulator::take_wire_stats`](crate::sim::Simulator::take_wire_stats)
/// and folded up into campaign perf counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Total payload bytes sent over channels (data frames only).
    pub wire_bytes: u64,
    /// Buffer acquisitions served from the pool's free lists.
    pub buf_hits: u64,
    /// Buffer acquisitions that had to allocate fresh.
    pub buf_misses: u64,
    /// Delivery events that processed at least one frame.
    pub batches: u64,
    /// Most frames processed by a single delivery event.
    pub max_batch: u64,
    /// Data frames discarded by the channel-fidelity layer (independent or
    /// burst loss).
    pub frames_dropped: u64,
    /// Data frames enqueued twice by the channel-fidelity layer.
    pub frames_duplicated: u64,
    /// Data frames held back by an extra reordering lag.
    pub frames_reordered: u64,
    /// TCP-style link-layer retransmissions (delay-only; the frame still
    /// arrives exactly once).
    pub link_retransmits: u64,
}

impl WireStats {
    /// Fold `other` into `self` (sums, except `max_batch` which maxes).
    pub fn absorb(&mut self, other: WireStats) {
        self.wire_bytes += other.wire_bytes;
        self.buf_hits += other.buf_hits;
        self.buf_misses += other.buf_misses;
        self.batches += other.batches;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.frames_dropped += other.frames_dropped;
        self.frames_duplicated += other.frames_duplicated;
        self.frames_reordered += other.frames_reordered;
        self.link_retransmits += other.link_retransmits;
    }
}

/// The pool's interior: per-class free lists plus acquire counters.
#[derive(Debug, Default)]
struct Shelf {
    free: [Vec<Vec<u8>>; CLASSES.len()],
    hits: u64,
    misses: u64,
}

fn class_for(capacity: usize) -> Option<usize> {
    CLASSES.iter().position(|&bound| capacity <= bound)
}

fn lock(shelf: &Mutex<Shelf>) -> std::sync::MutexGuard<'_, Shelf> {
    shelf
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A shared, size-classed pool of wire payload buffers.
///
/// Cloning a `BufPool` clones a *handle* to the same shelf (an `Arc` bump),
/// which is how the simulator threads the pool into [`NodeApi`] borrows
/// without fighting the borrow checker.
///
/// [`NodeApi`]: crate::node::NodeApi
#[derive(Debug, Clone, Default)]
pub struct BufPool {
    shelf: Arc<Mutex<Shelf>>,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire a buffer: recycled if any class has one free (a *hit*),
    /// freshly allocated otherwise (a *miss*). The returned handle brings
    /// itself back to this pool on drop.
    pub fn acquire(&self) -> PooledBuf {
        let mut shelf = lock(&self.shelf);
        for class in 0..CLASSES.len() {
            if let Some(mut vec) = shelf.free[class].pop() {
                shelf.hits += 1;
                vec.clear();
                return PooledBuf {
                    vec,
                    home: Some(Arc::clone(&self.shelf)),
                };
            }
        }
        shelf.misses += 1;
        PooledBuf {
            vec: Vec::with_capacity(CLASSES[0]),
            home: Some(Arc::clone(&self.shelf)),
        }
    }

    /// Adopt a payload's storage back into the pool after delivery.
    /// Heap vectors are filed by capacity; pooled buffers return home via
    /// their own `Drop`. Nothing is allocated either way.
    pub fn recycle(&self, payload: Payload) {
        match payload {
            Payload::Pooled(buf) => drop(buf),
            Payload::Heap(vec) => return_to(&self.shelf, vec),
        }
    }

    /// Drain and reset the acquire counters, returning `(hits, misses)`.
    pub fn take_counts(&self) -> (u64, u64) {
        let mut shelf = lock(&self.shelf);
        let out = (shelf.hits, shelf.misses);
        shelf.hits = 0;
        shelf.misses = 0;
        out
    }

    /// Buffers currently sitting on the free lists (all classes).
    pub fn free_len(&self) -> usize {
        lock(&self.shelf).free.iter().map(Vec::len).sum()
    }
}

fn return_to(shelf: &Mutex<Shelf>, vec: Vec<u8>) {
    if let Some(class) = class_for(vec.capacity()) {
        let mut shelf = lock(shelf);
        if shelf.free[class].len() < PER_CLASS_CAP {
            shelf.free[class].push(vec);
        }
    }
}

/// An owned payload buffer leased from a [`BufPool`].
///
/// Dereferences to `[u8]`; fill it through [`PooledBuf::as_mut_vec`]
/// (which is what the codecs' `encode_into` take). On drop the storage
/// returns to its pool — a *detached* buffer (pooling disabled) just frees.
pub struct PooledBuf {
    vec: Vec<u8>,
    home: Option<Arc<Mutex<Shelf>>>,
}

impl PooledBuf {
    /// A buffer with no pool behind it: drop frees, nothing is recycled.
    /// Used when payload pooling is disabled so call sites are uniform.
    pub fn detached() -> Self {
        PooledBuf {
            vec: Vec::new(),
            home: None,
        }
    }

    /// The underlying vector, for in-place encoding.
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }

    /// The filled bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.vec
    }
}

impl core::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(home) = self.home.take() {
            return_to(&home, std::mem::take(&mut self.vec));
        }
    }
}

impl Clone for PooledBuf {
    /// Byte copy into a detached buffer (clones are rare — snapshot
    /// capture — and must not double-return storage to the pool).
    fn clone(&self) -> Self {
        PooledBuf {
            vec: self.vec.clone(),
            home: None,
        }
    }
}

impl core::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.vec.len())
            .field("pooled", &self.home.is_some())
            .finish()
    }
}

/// A wire payload: either a plain heap vector (the pre-pool API, still the
/// path for callers that pass `Vec<u8>`) or a pooled buffer. Channels hold
/// these in flight; delivery borrows the bytes and then recycles the
/// storage.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Plain heap storage; adopted into the pool after delivery.
    Heap(Vec<u8>),
    /// Pool-leased storage; returns home on drop.
    Pooled(PooledBuf),
}

impl Payload {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Heap(v) => v,
            Payload::Pooled(b) => b.as_slice(),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::Heap(v)
    }
}

impl From<PooledBuf> for Payload {
    fn from(b: PooledBuf) -> Self {
        Payload::Pooled(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_hit() {
        let pool = BufPool::new();
        let buf = pool.acquire();
        assert_eq!(buf.len(), 0);
        drop(buf); // returns to the pool
        assert_eq!(pool.free_len(), 1);
        let again = pool.acquire();
        assert_eq!(pool.take_counts(), (1, 1), "one miss, then one hit");
        drop(again);
    }

    #[test]
    fn recycle_adopts_heap_vectors() {
        let pool = BufPool::new();
        pool.recycle(Payload::Heap(Vec::with_capacity(100)));
        assert_eq!(pool.free_len(), 1);
        let buf = pool.acquire();
        assert!(buf.vec.capacity() >= 100, "adopted storage is reused");
    }

    #[test]
    fn oversized_buffers_are_dropped_not_pooled() {
        let pool = BufPool::new();
        pool.recycle(Payload::Heap(Vec::with_capacity(CLASSES[3] + 1)));
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn per_class_cap_bounds_memory() {
        let pool = BufPool::new();
        for _ in 0..(PER_CLASS_CAP + 10) {
            pool.recycle(Payload::Heap(Vec::with_capacity(8)));
        }
        assert_eq!(pool.free_len(), PER_CLASS_CAP);
    }

    #[test]
    fn detached_buffer_never_pools() {
        let pool = BufPool::new();
        let mut d = PooledBuf::detached();
        d.as_mut_vec().extend_from_slice(&[1, 2, 3]);
        assert_eq!(&*d, &[1, 2, 3]);
        drop(d);
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn clone_is_detached_byte_copy() {
        let pool = BufPool::new();
        let mut a = pool.acquire();
        a.as_mut_vec().extend_from_slice(&[7, 8]);
        let b = a.clone();
        assert_eq!(&*b, &[7, 8]);
        drop(a);
        drop(b);
        assert_eq!(pool.free_len(), 1, "only the original returns home");
    }

    #[test]
    fn payload_roundtrips_both_variants() {
        let pool = BufPool::new();
        let heap: Payload = vec![1u8, 2].into();
        assert_eq!(heap.as_slice(), &[1, 2]);
        assert_eq!(heap.len(), 2);
        assert!(!heap.is_empty());
        let mut pb = pool.acquire();
        pb.as_mut_vec().push(9);
        let pooled: Payload = pb.into();
        assert_eq!(pooled.as_slice(), &[9]);
        pool.recycle(heap);
        pool.recycle(pooled);
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn wire_stats_absorb_sums_and_maxes() {
        let mut a = WireStats {
            wire_bytes: 10,
            buf_hits: 1,
            buf_misses: 2,
            batches: 3,
            max_batch: 4,
            frames_dropped: 5,
            frames_duplicated: 6,
            frames_reordered: 7,
            link_retransmits: 8,
        };
        a.absorb(WireStats {
            wire_bytes: 5,
            buf_hits: 1,
            buf_misses: 1,
            batches: 1,
            max_batch: 2,
            frames_dropped: 1,
            frames_duplicated: 2,
            frames_reordered: 3,
            link_retransmits: 4,
        });
        assert_eq!(a.wire_bytes, 15);
        assert_eq!(a.buf_hits, 2);
        assert_eq!(a.buf_misses, 3);
        assert_eq!(a.batches, 4);
        assert_eq!(a.max_batch, 4, "max, not sum");
        assert_eq!(a.frames_dropped, 6);
        assert_eq!(a.frames_duplicated, 8);
        assert_eq!(a.frames_reordered, 10);
        assert_eq!(a.link_retransmits, 12);
    }
}
