//! Scheduled fault injection.
//!
//! A [`FaultPlan`] is a time-ordered script of faults applied to a running
//! simulator: session resets, link failures, node crashes/restarts. DiCE's
//! operator-mistake experiments drive configuration changes through the same
//! mechanism (via closures over node state).

use crate::node::NodeId;
use crate::sim::Simulator;
use crate::time::SimTime;

/// A fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultAction {
    /// Reset the session between two adjacent nodes (auto-reconnect applies).
    SessionReset(NodeId, NodeId),
    /// Administratively fail a link.
    LinkDown(NodeId, NodeId),
    /// Re-enable a previously failed link.
    LinkUp(NodeId, NodeId),
    /// Fail-stop a node.
    NodeCrash(NodeId),
    /// Restart a crashed node from pristine state.
    NodeRestart(NodeId),
}

/// A time-ordered fault script.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, FaultAction)>,
    applied: usize,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault at an absolute simulated time. Entries may be added in
    /// any order; they are sorted on first application.
    pub fn at(mut self, t: SimTime, action: FaultAction) -> Self {
        self.entries.push((t, action));
        self
    }

    /// Number of faults not yet applied.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.applied
    }

    /// Apply every fault scheduled at or before `sim.now()`.
    /// Call interleaved with `run_until` steps.
    pub fn apply_due(&mut self, sim: &mut Simulator) {
        if self.applied == 0 {
            self.entries.sort_by_key(|(t, _)| *t);
        }
        while self.applied < self.entries.len() {
            let (t, action) = &self.entries[self.applied];
            if *t > sim.now() {
                break;
            }
            match *action {
                FaultAction::SessionReset(a, b) => sim.inject_session_reset(a, b),
                FaultAction::LinkDown(a, b) => sim.inject_link_down(a, b),
                FaultAction::LinkUp(a, b) => sim.inject_link_up(a, b),
                FaultAction::NodeCrash(n) => sim.inject_node_crash(n),
                FaultAction::NodeRestart(n) => sim.inject_node_restart(n),
            }
            self.applied += 1;
        }
    }

    /// Drive `sim` to `end`, applying faults at their scheduled instants.
    pub fn run_with_faults(&mut self, sim: &mut Simulator, end: SimTime) {
        if self.applied == 0 {
            self.entries.sort_by_key(|(t, _)| *t);
        }
        while self.applied < self.entries.len() {
            let (t, _) = self.entries[self.applied];
            if t > end {
                break;
            }
            sim.run_until(t);
            self.apply_due(sim);
        }
        sim.run_until(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::node::{Node, NodeApi};
    use crate::time::SimDuration;
    use crate::topology::Topology;
    use core::any::Any;

    #[derive(Clone, Default)]
    struct Quiet;
    impl Node for Quiet {
        fn on_message(&mut self, _: NodeId, _: &[u8], _: &mut NodeApi<'_>) {}
        fn clone_node(&self) -> Box<dyn Node> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn sim3() -> Simulator {
        let topo = Topology::line(3, LinkParams::fixed(SimDuration::from_millis(1)));
        let mut sim = Simulator::new(topo, 0);
        for i in 0..3 {
            sim.set_node(NodeId(i), Box::new(Quiet));
        }
        sim.start();
        sim
    }

    #[test]
    fn plan_applies_in_time_order() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_nanos(2_000_000_000),
                FaultAction::LinkUp(NodeId(0), NodeId(1)),
            )
            .at(
                SimTime::from_nanos(1_000_000_000),
                FaultAction::LinkDown(NodeId(0), NodeId(1)),
            );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(1_500_000_000));
        assert!(
            !sim.session_up(NodeId(0), NodeId(1)),
            "link should be down at 1.5s"
        );
        assert_eq!(plan.pending(), 1);
        plan.run_with_faults(&mut sim, SimTime::from_nanos(3_000_000_000));
        assert!(
            sim.session_up(NodeId(0), NodeId(1)),
            "link should be back at 3s"
        );
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn crash_and_restart_via_plan() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_nanos(1_000_000_000),
                FaultAction::NodeCrash(NodeId(1)),
            )
            .at(
                SimTime::from_nanos(2_000_000_000),
                FaultAction::NodeRestart(NodeId(1)),
            );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(1_200_000_000));
        assert!(sim.crashed(NodeId(1)).is_some());
        plan.run_with_faults(&mut sim, SimTime::from_nanos(4_000_000_000));
        assert!(sim.crashed(NodeId(1)).is_none());
        assert!(sim.session_up(NodeId(0), NodeId(1)));
        assert!(sim.session_up(NodeId(1), NodeId(2)));
    }

    #[test]
    fn empty_plan_is_noop() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new();
        plan.run_with_faults(&mut sim, SimTime::from_nanos(1_000_000_000));
        assert_eq!(plan.pending(), 0);
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000_000));
    }
}
