//! Scheduled fault injection.
//!
//! A [`FaultPlan`] is a time-ordered script of faults applied to a running
//! simulator: session resets, link failures, node crashes/restarts. DiCE's
//! operator-mistake experiments drive configuration changes through the same
//! mechanism (via closures over node state).

use crate::node::NodeId;
use crate::sim::Simulator;
use crate::time::SimTime;

/// A fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultAction {
    /// Reset the session between two adjacent nodes (auto-reconnect applies).
    SessionReset(NodeId, NodeId),
    /// Administratively fail a link.
    LinkDown(NodeId, NodeId),
    /// Re-enable a previously failed link.
    LinkUp(NodeId, NodeId),
    /// Fail-stop a node.
    NodeCrash(NodeId),
    /// Restart a crashed node from pristine state.
    NodeRestart(NodeId),
}

/// A time-ordered fault script.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, FaultAction)>,
    applied: usize,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault at an absolute simulated time.
    ///
    /// Contract: entries may be added in any order, *including after some
    /// of the plan has already been applied*. The applied prefix is
    /// immutable; the pending tail is kept time-sorted on every add (the
    /// plan used to sort only once, on first application, so late adds
    /// silently fired out of order). Duplicate-time entries keep their
    /// insertion order (stable sort), and an entry scheduled before
    /// `sim.now()` fires on the next [`FaultPlan::apply_due`] /
    /// [`FaultPlan::run_with_faults`] call — clamped-to-now semantics, same
    /// as [`Simulator::schedule_fault`].
    pub fn at(mut self, t: SimTime, action: FaultAction) -> Self {
        self.entries.push((t, action));
        self.entries[self.applied..].sort_by_key(|(t, _)| *t);
        self
    }

    /// Number of faults not yet applied.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.applied
    }

    /// Apply every fault scheduled at or before `sim.now()`.
    /// Call interleaved with `run_until` steps.
    pub fn apply_due(&mut self, sim: &mut Simulator) {
        while self.applied < self.entries.len() {
            let (t, action) = &self.entries[self.applied];
            if *t > sim.now() {
                break;
            }
            match *action {
                FaultAction::SessionReset(a, b) => sim.inject_session_reset(a, b),
                FaultAction::LinkDown(a, b) => sim.inject_link_down(a, b),
                FaultAction::LinkUp(a, b) => sim.inject_link_up(a, b),
                FaultAction::NodeCrash(n) => sim.inject_node_crash(n),
                FaultAction::NodeRestart(n) => sim.inject_node_restart(n),
            }
            self.applied += 1;
        }
    }

    /// Drive `sim` to `end`, applying faults at their scheduled instants.
    /// Past-due entries (added late) are applied immediately.
    pub fn run_with_faults(&mut self, sim: &mut Simulator, end: SimTime) {
        self.apply_due(sim);
        while self.applied < self.entries.len() {
            let (t, _) = self.entries[self.applied];
            if t > end {
                break;
            }
            sim.run_until(t);
            self.apply_due(sim);
        }
        sim.run_until(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::node::{Node, NodeApi};
    use crate::time::SimDuration;
    use crate::topology::Topology;
    use core::any::Any;

    #[derive(Clone, Default)]
    struct Quiet;
    impl Node for Quiet {
        fn on_message(&mut self, _: NodeId, _: &[u8], _: &mut NodeApi<'_>) {}
        fn clone_node(&self) -> Box<dyn Node> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn sim3() -> Simulator {
        let topo = Topology::line(3, LinkParams::fixed(SimDuration::from_millis(1)));
        let mut sim = Simulator::new(topo, 0);
        for i in 0..3 {
            sim.set_node(NodeId(i), Box::new(Quiet));
        }
        sim.start();
        sim
    }

    #[test]
    fn plan_applies_in_time_order() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_nanos(2_000_000_000),
                FaultAction::LinkUp(NodeId(0), NodeId(1)),
            )
            .at(
                SimTime::from_nanos(1_000_000_000),
                FaultAction::LinkDown(NodeId(0), NodeId(1)),
            );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(1_500_000_000));
        assert!(
            !sim.session_up(NodeId(0), NodeId(1)),
            "link should be down at 1.5s"
        );
        assert_eq!(plan.pending(), 1);
        plan.run_with_faults(&mut sim, SimTime::from_nanos(3_000_000_000));
        assert!(
            sim.session_up(NodeId(0), NodeId(1)),
            "link should be back at 3s"
        );
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn crash_and_restart_via_plan() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_nanos(1_000_000_000),
                FaultAction::NodeCrash(NodeId(1)),
            )
            .at(
                SimTime::from_nanos(2_000_000_000),
                FaultAction::NodeRestart(NodeId(1)),
            );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(1_200_000_000));
        assert!(sim.crashed(NodeId(1)).is_some());
        plan.run_with_faults(&mut sim, SimTime::from_nanos(4_000_000_000));
        assert!(sim.crashed(NodeId(1)).is_none());
        assert!(sim.session_up(NodeId(0), NodeId(1)));
        assert!(sim.session_up(NodeId(1), NodeId(2)));
    }

    #[test]
    fn late_out_of_order_adds_are_resorted() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new().at(
            SimTime::from_nanos(1_000_000_000),
            FaultAction::LinkDown(NodeId(0), NodeId(1)),
        );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(1_500_000_000));
        assert!(!sim.session_up(NodeId(0), NodeId(1)));
        assert_eq!(plan.pending(), 0);
        // Late adds, out of time order, after the first application: the
        // heal at 2s must still fire before the second outage at 3s (the
        // old sorted-once plan would have applied them in push order and
        // left the link up at 4s).
        plan = plan
            .at(
                SimTime::from_nanos(3_000_000_000),
                FaultAction::LinkDown(NodeId(0), NodeId(1)),
            )
            .at(
                SimTime::from_nanos(2_000_000_000),
                FaultAction::LinkUp(NodeId(0), NodeId(1)),
            );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(2_500_000_000));
        assert!(
            sim.session_up(NodeId(0), NodeId(1)),
            "heal added late must fire at its own time, not after the outage"
        );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(4_000_000_000));
        assert!(!sim.session_up(NodeId(0), NodeId(1)), "second outage at 3s");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn late_past_due_add_applies_on_next_pump() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new().at(
            SimTime::from_nanos(1_000_000_000),
            FaultAction::NodeCrash(NodeId(2)),
        );
        plan.run_with_faults(&mut sim, SimTime::from_nanos(2_000_000_000));
        assert!(sim.crashed(NodeId(2)).is_some());
        // Scheduled in the past relative to `sim.now()`: clamped-to-now
        // semantics, fires on the next pump.
        plan = plan.at(
            SimTime::from_nanos(500_000_000),
            FaultAction::NodeRestart(NodeId(2)),
        );
        assert_eq!(plan.pending(), 1);
        plan.apply_due(&mut sim);
        assert!(sim.crashed(NodeId(2)).is_none(), "past-due entry applied");
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn duplicate_time_entries_apply_in_insertion_order() {
        let t = SimTime::from_nanos(1_000_000_000);
        // Crash then restart at the same instant: only insertion order
        // makes the node end up alive (restart before crash would be a
        // no-op restart followed by a crash).
        let mut sim = sim3();
        let mut plan = FaultPlan::new()
            .at(t, FaultAction::NodeCrash(NodeId(1)))
            .at(t, FaultAction::NodeRestart(NodeId(1)));
        plan.run_with_faults(&mut sim, SimTime::from_nanos(2_000_000_000));
        assert!(sim.crashed(NodeId(1)).is_none(), "crash, then restart");

        let mut sim = sim3();
        let mut plan = FaultPlan::new()
            .at(t, FaultAction::NodeRestart(NodeId(1)))
            .at(t, FaultAction::NodeCrash(NodeId(1)));
        plan.run_with_faults(&mut sim, SimTime::from_nanos(2_000_000_000));
        assert!(
            sim.crashed(NodeId(1)).is_some(),
            "restart (no-op), then crash"
        );
    }

    #[test]
    fn empty_plan_is_noop() {
        let mut sim = sim3();
        let mut plan = FaultPlan::new();
        plan.run_with_faults(&mut sim, SimTime::from_nanos(1_000_000_000));
        assert_eq!(plan.pending(), 0);
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000_000));
    }
}
