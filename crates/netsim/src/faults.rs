//! Per-link channel-fidelity faults: probabilistic drop, duplication,
//! bounded reordering, and two-state Gilbert–Elliott burst loss.
//!
//! The base simulator models TCP-backed sessions, so its channels are
//! reliable and in-order and link loss surfaces only as retransmission
//! *delay* ([`crate::link::LinkParams::delay_for`]). Real federations are
//! not so kind: datagrams vanish, arrive twice, or overtake each other, and
//! loss comes in bursts. [`LinkFaults`] describes that weather per link
//! direction; the simulator samples it once per data frame from a dedicated
//! per-link [`SimRng::split`](crate::rng::SimRng::split) stream (seeded
//! separately from the latency streams), so the same `(topology, seed)`
//! replays the same drops byte-for-byte and toggling the faults knob never
//! perturbs latency sampling.
//!
//! Sampling order is part of the determinism contract and never changes:
//! burst-state transition, burst drop, independent drop, duplication (plus
//! its lag), reordering lag. Chandy–Lamport markers are exempt — the marker
//! protocol is only sound over FIFO channels — and the simulator suspends
//! sampling entirely while a consistent cut is in progress (see
//! [`crate::sim::SimConfig::unreliable_links`]).

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Two-state Gilbert–Elliott burst-loss model.
///
/// The link direction is always in a *good* or *bad* state
/// ([`LinkFaultState`]). Before each frame the state flips with probability
/// `enter` (good → bad) or `exit` (bad → good); while bad, frames drop with
/// probability `drop`. This produces the correlated loss runs that
/// independent per-frame drops cannot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Probability per frame of entering the bad state from the good state.
    pub enter: f64,
    /// Probability per frame of returning to the good state.
    pub exit: f64,
    /// Drop probability per frame while in the bad state.
    pub drop: f64,
}

impl BurstLoss {
    /// A short, harsh burst profile: rare onset, quick recovery, heavy loss
    /// while it lasts.
    pub fn harsh() -> Self {
        BurstLoss {
            enter: 0.01,
            exit: 0.25,
            drop: 0.5,
        }
    }
}

/// Per-link fault model for one channel direction.
///
/// All probabilities are per data frame and clamped to `[0, 1]` by the
/// underlying [`SimRng::chance`] draw, so `0.0` *never* fires and `1.0`
/// *always* does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Independent per-frame drop probability.
    pub drop: f64,
    /// Per-frame duplication probability (the copy arrives within
    /// `reorder_window` after the original).
    pub duplicate: f64,
    /// Probability a frame is held back by an extra reordering lag.
    pub reorder: f64,
    /// Upper bound on the extra lag a reordered (or duplicated) frame can
    /// suffer; no frame is ever delayed beyond its nominal arrival plus
    /// this window (the no-starvation bound).
    pub reorder_window: SimDuration,
    /// Optional Gilbert–Elliott burst-loss overlay, sampled before the
    /// independent drop.
    pub burst: Option<BurstLoss>,
}

impl Default for LinkFaults {
    /// The standard "unreliable but survivable" profile: 5% loss
    /// ([`LinkFaults::lossy`]). This is what
    /// [`SimConfig::unreliable_links`](crate::sim::SimConfig::unreliable_links)
    /// turns on when no explicit profile is supplied.
    fn default() -> Self {
        LinkFaults::lossy(0.05)
    }
}

impl LinkFaults {
    /// A profile parameterized by a single loss rate `p`: drop `p`,
    /// duplicate `p/2`, reorder `p` within a 5 ms window, no burst overlay.
    /// `lossy(0.0)` is a no-op profile.
    pub fn lossy(p: f64) -> Self {
        LinkFaults {
            drop: p,
            duplicate: p / 2.0,
            reorder: p,
            reorder_window: SimDuration::from_millis(5),
            burst: None,
        }
    }

    /// Whether this profile can never affect a frame (sampling it draws
    /// nothing from the RNG stream).
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0 && self.burst.is_none()
    }

    /// Sample the model for one data frame, advancing the link's burst
    /// state. The draw order (burst transition, burst drop, independent
    /// drop, duplication + lag, reorder lag) is fixed; a dropped frame
    /// consumes no duplication/reorder draws.
    pub fn sample(&self, state: &mut LinkFaultState, rng: &mut SimRng) -> FaultVerdict {
        let mut v = FaultVerdict::default();
        if let Some(b) = self.burst {
            let flip = if state.bad {
                rng.chance(b.exit)
            } else {
                rng.chance(b.enter)
            };
            if flip {
                state.bad = !state.bad;
            }
            if state.bad && rng.chance(b.drop) {
                v.dropped = true;
            }
        }
        if !v.dropped && rng.chance(self.drop) {
            v.dropped = true;
        }
        if v.dropped {
            return v;
        }
        if rng.chance(self.duplicate) {
            v.duplicated = true;
            v.dup_lag = sample_lag(self.reorder_window, rng);
        }
        if rng.chance(self.reorder) {
            v.extra_delay = Some(sample_lag(self.reorder_window, rng));
        }
        v
    }
}

/// Extra lag in `(0, window]`; zero when the window is empty.
fn sample_lag(window: SimDuration, rng: &mut SimRng) -> SimDuration {
    if window.as_nanos() == 0 {
        return SimDuration::ZERO;
    }
    SimDuration::from_nanos(rng.below(window.as_nanos()) + 1)
}

/// Per-direction link state for the [`BurstLoss`] model. Reset to the good
/// state by [`Simulator::reset_from_shadow`](crate::sim::Simulator::reset_from_shadow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultState {
    /// Whether the link direction is currently in the bad (bursty) state.
    pub bad: bool,
}

/// Outcome of sampling [`LinkFaults`] for one data frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultVerdict {
    /// The frame is discarded; nothing is enqueued.
    pub dropped: bool,
    /// A second copy of the frame is enqueued, `dup_lag` after the
    /// original's nominal arrival.
    pub duplicated: bool,
    /// Extra reordering lag added to the frame's nominal arrival
    /// (bounded by [`LinkFaults::reorder_window`]).
    pub extra_delay: Option<SimDuration>,
    /// Lag of the duplicate copy, when `duplicated` (same bound).
    pub dup_lag: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_five_percent_lossy() {
        let f = LinkFaults::default();
        assert_eq!(f, LinkFaults::lossy(0.05));
        assert!(!f.is_noop());
        assert!(LinkFaults::lossy(0.0).is_noop());
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let f = LinkFaults::lossy(0.3);
        let mut s1 = LinkFaultState::default();
        let mut s2 = LinkFaultState::default();
        let mut r1 = SimRng::seed_from_u64(77);
        let mut r2 = SimRng::seed_from_u64(77);
        for _ in 0..256 {
            assert_eq!(f.sample(&mut s1, &mut r1), f.sample(&mut s2, &mut r2));
        }
        assert_eq!(s1, s2);
    }

    #[test]
    fn drop_extremes_are_exact() {
        let never = LinkFaults {
            drop: 0.0,
            ..LinkFaults::lossy(0.0)
        };
        let always = LinkFaults {
            drop: 1.0,
            ..LinkFaults::lossy(0.0)
        };
        let mut st = LinkFaultState::default();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!never.sample(&mut st, &mut rng).dropped);
            assert!(always.sample(&mut st, &mut rng).dropped);
        }
    }

    #[test]
    fn lags_never_exceed_the_window() {
        let f = LinkFaults {
            drop: 0.0,
            duplicate: 1.0,
            reorder: 1.0,
            reorder_window: SimDuration::from_millis(5),
            burst: None,
        };
        let mut st = LinkFaultState::default();
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = f.sample(&mut st, &mut rng);
            assert!(v.duplicated);
            assert!(v.dup_lag <= f.reorder_window);
            let extra = v.extra_delay.expect("reorder=1.0 must always lag");
            assert!(extra > SimDuration::ZERO && extra <= f.reorder_window);
        }
    }

    #[test]
    fn burst_mode_produces_correlated_runs() {
        let f = LinkFaults {
            burst: Some(BurstLoss {
                enter: 0.05,
                exit: 0.2,
                drop: 1.0,
            }),
            ..LinkFaults::lossy(0.0)
        };
        let mut st = LinkFaultState::default();
        let mut rng = SimRng::seed_from_u64(3);
        let outcomes: Vec<bool> = (0..4000)
            .map(|_| f.sample(&mut st, &mut rng).dropped)
            .collect();
        let drops = outcomes.iter().filter(|&&d| d).count();
        assert!(drops > 200, "burst mode should drop plenty, got {drops}");
        // Correlation: a drop is followed by another drop far more often
        // than the unconditional drop rate (that is what "burst" means).
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let runs = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let conditional = runs as f64 / pairs as f64;
        let unconditional = drops as f64 / outcomes.len() as f64;
        assert!(
            conditional > unconditional * 1.5,
            "drops should cluster: P(drop|drop)={conditional:.3} vs P(drop)={unconditional:.3}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let f = LinkFaults {
            burst: Some(BurstLoss::harsh()),
            ..LinkFaults::lossy(0.2)
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: LinkFaults = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
