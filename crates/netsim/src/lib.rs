//! # dice-netsim — deterministic discrete-event network simulator
//!
//! The network substrate DiCE runs on. Design goals, in order: determinism,
//! simplicity, robustness (following the smoltcp school of event-driven
//! networking code — no hidden runtime, no wall clock, no global state).
//!
//! * **Deterministic:** a run is a pure function of `(topology, nodes, seed)`.
//!   Randomness (link jitter, loss, topology generation) flows from a single
//!   splittable ChaCha stream.
//! * **Reliable in-order channels:** the transport under BGP is TCP, so
//!   channels deliver byte frames reliably and in order; link loss shows up
//!   as retransmission *delay*, sessions can be reset (dropping in-flight
//!   data), links can fail.
//! * **Snapshots as a first-class operation:** Chandy–Lamport marker
//!   snapshots run in-band through the same FIFO channels as data, producing
//!   a [`ShadowSnapshot`] — cloned node states plus captured channel
//!   contents — which can be instantiated into an isolated simulator
//!   ([`Simulator::from_shadow`]). This is the mechanism behind DiCE's
//!   "explore over isolated snapshots".
//! * **Fault injection:** scheduled session resets, link failures and node
//!   crashes ([`fault::FaultPlan`]), plus an opt-in per-link
//!   channel-fidelity layer — probabilistic drop, duplication, bounded
//!   reordering and Gilbert–Elliott burst loss ([`faults::LinkFaults`],
//!   gated by [`SimConfig::unreliable_links`]).
//!
//! ## Quick example
//!
//! ```
//! use dice_netsim::{LinkParams, NodeId, SimDuration, SimTime, Simulator, Topology};
//! use dice_netsim::{Node, NodeApi, SessionEvent};
//! use core::any::Any;
//!
//! #[derive(Clone, Default)]
//! struct Hello { greeted: bool }
//!
//! impl Node for Hello {
//!     fn on_session(&mut self, peer: NodeId, ev: SessionEvent, api: &mut NodeApi<'_>) {
//!         if matches!(ev, SessionEvent::Up) {
//!             api.send(peer, b"hello".to_vec());
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, data: &[u8], _api: &mut NodeApi<'_>) {
//!         assert_eq!(data, b"hello");
//!         self.greeted = true;
//!     }
//!     fn clone_node(&self) -> Box<dyn Node> { Box::new(self.clone()) }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let topo = Topology::line(2, LinkParams::fixed(SimDuration::from_millis(5)));
//! let mut sim = Simulator::new(topo, 42);
//! sim.set_node(NodeId(0), Box::new(Hello::default()));
//! sim.set_node(NodeId(1), Box::new(Hello::default()));
//! sim.start();
//! sim.run_until(SimTime::from_nanos(1_000_000_000));
//! let n1 = sim.node(NodeId(1)).as_any().downcast_ref::<Hello>().unwrap();
//! assert!(n1.greeted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod fault;
pub mod faults;
pub mod link;
pub mod node;
pub mod rng;
pub mod schedule;
pub mod sim;
pub mod snapshot;
pub mod time;
pub mod topology;
pub mod trace;

pub use buf::{BufPool, Payload, PooledBuf, WireStats};
pub use fault::{FaultAction, FaultPlan};
pub use faults::{BurstLoss, FaultVerdict, LinkFaultState, LinkFaults};
pub use link::{LatencyModel, LinkParams};
pub use node::{DownReason, Effect, Node, NodeApi, NodeId, SessionEvent};
pub use rng::SimRng;
pub use schedule::{Schedule, ScheduleSpec};
pub use sim::{QuietOutcome, SimConfig, Simulator, SnapshotStats};
pub use snapshot::{ShadowSnapshot, SnapshotId, SnapshotProgress};
pub use time::{SimDuration, SimTime};
pub use topology::{EdgeSpec, InternetParams, NeighborRole, Relationship, Topology};
pub use trace::{Trace, TraceEvent, TraceKind, TraceStats};
