//! Link models: latency, jitter, loss and bandwidth.
//!
//! Channels in the simulator are reliable and in-order (the BGP transport is
//! TCP); link-level loss therefore surfaces as *retransmission delay* rather
//! than message loss, matching how TCP turns loss into latency.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// One-way propagation latency model for a link.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum LatencyModel {
    /// Constant latency.
    Fixed(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform { lo: SimDuration, hi: SimDuration },
    /// Heavy-tailed "Internet-like" latency: log-normal-ish around a median,
    /// never below `floor`. This is the model used for the paper's
    /// Internet-like conditions.
    LogNormal {
        median: SimDuration,
        sigma: f64,
        floor: SimDuration,
    },
}

impl LatencyModel {
    /// Draw a latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    SimDuration::from_nanos(rng.range_inclusive(lo.as_nanos(), hi.as_nanos()))
                }
            }
            LatencyModel::LogNormal {
                median,
                sigma,
                floor,
            } => {
                let ns = rng.lognormalish(median.as_nanos() as f64, sigma);
                let ns = ns.max(floor.as_nanos() as f64).min(1e18);
                SimDuration::from_nanos(ns as u64)
            }
        }
    }

    /// The minimum latency this model can produce (used for FIFO scheduling
    /// sanity checks).
    pub fn floor(&self) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, .. } => lo,
            LatencyModel::LogNormal { floor, .. } => floor,
        }
    }
}

/// Full parameter set for a (bidirectional) link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: LatencyModel,
    /// Link bandwidth in bits per second; `None` = infinite (no
    /// serialization delay).
    pub bandwidth_bps: Option<u64>,
    /// Probability that a frame needs TCP retransmission; each retry adds
    /// roughly one RTT of delay. `0.0` disables.
    pub loss: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            bandwidth_bps: None,
            loss: 0.0,
        }
    }
}

impl LinkParams {
    /// A fixed-latency, lossless, infinite-bandwidth link.
    pub fn fixed(latency: SimDuration) -> Self {
        LinkParams {
            latency: LatencyModel::Fixed(latency),
            ..Default::default()
        }
    }

    /// An Internet-like wide-area link: log-normal latency around `median`,
    /// 100 Mbit/s, light loss.
    pub fn internet_like(median: SimDuration) -> Self {
        LinkParams {
            latency: LatencyModel::LogNormal {
                median,
                sigma: 0.25,
                floor: SimDuration::from_micros(500),
            },
            bandwidth_bps: Some(100_000_000),
            loss: 0.001,
        }
    }

    /// Total one-way delay for a frame of `bytes` bytes: serialization +
    /// propagation + (possibly) retransmission penalties.
    pub fn delay_for(&self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        self.delay_and_retries_for(bytes, rng).0
    }

    /// Like [`LinkParams::delay_for`], also reporting how many TCP-style
    /// retransmissions the frame suffered (each costs ~1 RTT of delay; the
    /// simulator folds the count into its wire counters).
    pub fn delay_and_retries_for(&self, bytes: usize, rng: &mut SimRng) -> (SimDuration, u32) {
        let prop = self.latency.sample(rng);
        let ser = match self.bandwidth_bps {
            Some(bps) if bps > 0 => {
                SimDuration::from_nanos(((bytes as u128 * 8 * 1_000_000_000) / bps as u128) as u64)
            }
            _ => SimDuration::ZERO,
        };
        let mut total = prop + ser;
        let mut retries = 0u32;
        if self.loss > 0.0 {
            // Geometric number of retransmissions, each costing ~1 RTT.
            while retries < 8 && rng.chance(self.loss) {
                retries += 1;
            }
            if retries > 0 {
                let rtt = self.latency.floor().saturating_mul(2).max(prop);
                total = total + rtt.saturating_mul(retries as u64);
            }
        }
        (total, retries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_is_fixed() {
        let mut rng = SimRng::seed_from_u64(1);
        let m = LatencyModel::Fixed(SimDuration::from_millis(5));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        let lo = SimDuration::from_millis(2);
        let hi = SimDuration::from_millis(8);
        let m = LatencyModel::Uniform { lo, hi };
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!(s >= lo && s <= hi, "{s}");
        }
    }

    #[test]
    fn lognormal_respects_floor() {
        let mut rng = SimRng::seed_from_u64(3);
        let floor = SimDuration::from_millis(1);
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 1.0,
            floor,
        };
        for _ in 0..1000 {
            assert!(m.sample(&mut rng) >= floor);
        }
    }

    #[test]
    fn lognormal_median_roughly_right() {
        let mut rng = SimRng::seed_from_u64(4);
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 0.3,
            floor: SimDuration::from_micros(1),
        };
        let mut samples: Vec<u64> = (0..4001).map(|_| m.sample(&mut rng).as_nanos()).collect();
        samples.sort_unstable();
        let med = samples[samples.len() / 2] as f64 / 1e6;
        assert!((15.0..25.0).contains(&med), "median {med}ms");
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let mut rng = SimRng::seed_from_u64(5);
        let p = LinkParams {
            latency: LatencyModel::Fixed(SimDuration::ZERO),
            bandwidth_bps: Some(8_000_000), // 1 byte per microsecond
            loss: 0.0,
        };
        assert_eq!(p.delay_for(1000, &mut rng), SimDuration::from_micros(1000));
        assert_eq!(p.delay_for(1, &mut rng), SimDuration::from_micros(1));
    }

    #[test]
    fn lossless_link_has_no_retransmit_jitter() {
        let mut rng = SimRng::seed_from_u64(6);
        let p = LinkParams::fixed(SimDuration::from_millis(3));
        for _ in 0..100 {
            assert_eq!(p.delay_for(100, &mut rng), SimDuration::from_millis(3));
        }
    }

    #[test]
    fn lossy_link_sometimes_delays() {
        let mut rng = SimRng::seed_from_u64(7);
        let p = LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            bandwidth_bps: None,
            loss: 0.5,
        };
        let base = SimDuration::from_millis(10);
        let delayed = (0..200)
            .filter(|_| p.delay_for(10, &mut rng) > base)
            .count();
        assert!(
            delayed > 50,
            "expected many retransmit delays, got {delayed}"
        );
    }
}
