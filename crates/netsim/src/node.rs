//! The [`Node`] trait: protocol logic hosted by the simulator.
//!
//! A node is a deterministic state machine driven by message deliveries,
//! timer expirations and session events. All interaction with the outside
//! world goes through [`NodeApi`], which records *effects*; the simulator
//! applies them after the handler returns. This indirection is what makes
//! node state cheaply checkpointable: a node is plain data plus handlers.

use core::any::Any;
use serde::{Deserialize, Serialize};

use crate::buf::{BufPool, Payload, PooledBuf};
use crate::time::{SimDuration, SimTime};

/// Identifier of a node in a simulation. Dense, assigned by the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index of this node in dense arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Why a session went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownReason {
    /// The peer (or this node) requested a reset.
    Reset,
    /// The underlying link was brought down by fault injection.
    LinkFailure,
    /// The remote node crashed.
    PeerCrash,
}

/// Session lifecycle notifications delivered to both endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// The reliable channel to `peer` is established in both directions.
    Up,
    /// The channel went down; all in-flight data was discarded.
    Down(DownReason),
}

/// An effect requested by a node handler, applied by the simulator
/// after the handler returns.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum Effect {
    /// Send bytes over the session to a neighbor (counts as activity).
    Send { to: NodeId, data: Payload },
    /// Send bytes without bumping the quiescence clock (e.g. keepalives).
    SendQuiet { to: NodeId, data: Payload },
    /// Arm (or re-arm) the timer identified by `token`.
    SetTimer { delay: SimDuration, token: u64 },
    /// Cancel any pending timer with this token.
    CancelTimer { token: u64 },
    /// Tear down the session with `peer`; both ends get `Down(Reset)`.
    ResetSession { peer: NodeId },
    /// Record a structured trace annotation.
    Trace { tag: &'static str, detail: String },
    /// The node hit an unrecoverable internal error (models a daemon crash).
    Crash { reason: String },
}

/// Handler-side view of the simulator.
///
/// Collects effects and exposes read-only context (current time, own id).
pub struct NodeApi<'a> {
    me: NodeId,
    now: SimTime,
    effects: &'a mut Vec<Effect>,
    bufs: Option<&'a BufPool>,
}

impl<'a> NodeApi<'a> {
    pub(crate) fn new(
        me: NodeId,
        now: SimTime,
        effects: &'a mut Vec<Effect>,
        bufs: Option<&'a BufPool>,
    ) -> Self {
        NodeApi {
            me,
            now,
            effects,
            bufs,
        }
    }

    /// This node's identity.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Lease a payload buffer for zero-copy encoding: fill it via
    /// [`PooledBuf::as_mut_vec`] (the codecs' `encode_into` entry points
    /// take exactly that) and pass it straight to [`NodeApi::send`].
    /// When payload pooling is disabled this hands out a detached buffer,
    /// so call sites never need to branch on the knob.
    pub fn buf(&self) -> PooledBuf {
        match self.bufs {
            Some(pool) => pool.acquire(),
            None => PooledBuf::detached(),
        }
    }

    /// Send `data` to the neighbor `to` over the established session.
    /// Silently dropped by the simulator if the session is down.
    /// Accepts a plain `Vec<u8>` or a pooled buffer from [`NodeApi::buf`].
    pub fn send(&mut self, to: NodeId, data: impl Into<Payload>) {
        self.effects.push(Effect::Send {
            to,
            data: data.into(),
        });
    }

    /// Like [`NodeApi::send`] but does not reset the quiescence clock.
    /// Use for periodic background traffic such as keepalives.
    pub fn send_quiet(&mut self, to: NodeId, data: impl Into<Payload>) {
        self.effects.push(Effect::SendQuiet {
            to,
            data: data.into(),
        });
    }

    /// Arm a timer. A later `set_timer` with the same token supersedes the
    /// earlier one; `on_timer` fires with the token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::SetTimer { delay, token });
    }

    /// Cancel a pending timer by token. No-op if not armed.
    pub fn cancel_timer(&mut self, token: u64) {
        self.effects.push(Effect::CancelTimer { token });
    }

    /// Request a session reset toward `peer` (models a TCP RST / BGP
    /// NOTIFICATION teardown at the transport level).
    pub fn reset_session(&mut self, peer: NodeId) {
        self.effects.push(Effect::ResetSession { peer });
    }

    /// Emit a structured trace annotation attributed to this node.
    pub fn trace(&mut self, tag: &'static str, detail: String) {
        self.effects.push(Effect::Trace { tag, detail });
    }

    /// Declare that this node has crashed (unrecoverable internal error).
    /// The simulator drops all its sessions and stops delivering events.
    pub fn crash(&mut self, reason: impl Into<String>) {
        self.effects.push(Effect::Crash {
            reason: reason.into(),
        });
    }
}

/// A protocol node hosted by the simulator.
///
/// Implementations must be deterministic functions of their state and the
/// handler arguments; any randomness must come from state seeded explicitly.
/// `Send + Sync` lets shadow snapshots be shared across DiCE's parallel
/// validation workers (nodes are only ever mutated behind `&mut`).
pub trait Node: Send + Sync {
    /// Invoked once when the simulation starts (before any session is up).
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let _ = api;
    }

    /// A data message from neighbor `from` arrived.
    fn on_message(&mut self, from: NodeId, data: &[u8], api: &mut NodeApi<'_>);

    /// A timer armed via [`NodeApi::set_timer`] fired.
    fn on_timer(&mut self, token: u64, api: &mut NodeApi<'_>) {
        let _ = (token, api);
    }

    /// The session with `peer` changed state.
    fn on_session(&mut self, peer: NodeId, ev: SessionEvent, api: &mut NodeApi<'_>) {
        let _ = (peer, ev, api);
    }

    /// Deep-copy this node's state. This is the checkpoint primitive:
    /// DiCE's lightweight node checkpoints are produced by this call.
    fn clone_node(&self) -> Box<dyn Node>;

    /// Approximate serialized size of the node state in bytes, used for
    /// checkpoint-overhead accounting. Implementations should count their
    /// dominant collections; exact byte-accuracy is not required.
    fn state_size(&self) -> usize {
        0
    }

    /// Downcast support for checkers that inspect concrete node types.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn Node> {
    fn clone(&self) -> Self {
        self.clone_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct Echo {
        seen: Vec<u8>,
    }

    impl Node for Echo {
        fn on_message(&mut self, from: NodeId, data: &[u8], api: &mut NodeApi<'_>) {
            self.seen.extend_from_slice(data);
            api.send(from, data.to_vec());
        }
        fn clone_node(&self) -> Box<dyn Node> {
            Box::new(self.clone())
        }
        fn state_size(&self) -> usize {
            self.seen.len()
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn api_records_effects_in_order() {
        let mut effects = Vec::new();
        let mut api = NodeApi::new(NodeId(1), SimTime::ZERO, &mut effects, None);
        api.send(NodeId(2), vec![1]);
        api.set_timer(SimDuration::from_secs(1), 7);
        api.cancel_timer(7);
        api.reset_session(NodeId(2));
        assert_eq!(effects.len(), 4);
        assert!(matches!(effects[0], Effect::Send { to: NodeId(2), .. }));
        assert!(matches!(effects[1], Effect::SetTimer { token: 7, .. }));
        assert!(matches!(effects[2], Effect::CancelTimer { token: 7 }));
        assert!(matches!(
            effects[3],
            Effect::ResetSession { peer: NodeId(2) }
        ));
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let e = Echo {
            seen: vec![1, 2, 3],
        };
        let b: Box<dyn Node> = Box::new(e);
        let c = b.clone();
        assert_eq!(c.state_size(), 3);
        let echo = c.as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(echo.seen, vec![1, 2, 3]);
    }

    #[test]
    fn handler_echoes_through_api() {
        let mut effects = Vec::new();
        let mut node = Echo::default();
        let mut api = NodeApi::new(NodeId(0), SimTime::ZERO, &mut effects, None);
        node.on_message(NodeId(3), &[9, 9], &mut api);
        assert_eq!(node.seen, vec![9, 9]);
        match &effects[0] {
            Effect::Send { to, data } => {
                assert_eq!(*to, NodeId(3));
                assert_eq!(data.as_slice(), &[9, 9]);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn pooled_send_flows_through_effects() {
        let pool = crate::buf::BufPool::new();
        let mut effects = Vec::new();
        let mut api = NodeApi::new(NodeId(0), SimTime::ZERO, &mut effects, Some(&pool));
        let mut b = api.buf();
        b.as_mut_vec().extend_from_slice(&[4, 2]);
        api.send(NodeId(1), b);
        match &effects[0] {
            Effect::Send { to, data } => {
                assert_eq!(*to, NodeId(1));
                assert_eq!(data.as_slice(), &[4, 2]);
                assert!(matches!(data, crate::buf::Payload::Pooled(_)));
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert_eq!(pool.take_counts(), (0, 1), "first lease is a miss");
    }
}
