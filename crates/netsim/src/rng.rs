//! Deterministic, splittable random number generation.
//!
//! Every stochastic element of the simulation (link jitter, loss, topology
//! generation, fuzzing) draws from a [`SimRng`] seeded from the simulation
//! seed. ChaCha8 guarantees the same stream on every platform and rand
//! version, which `SmallRng` does not.
//!
//! `split` derives an independent child stream; giving each node/link its own
//! split stream keeps runs reproducible even when the *order* in which
//! components consume randomness changes (e.g. after a snapshot clone).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// Children with distinct labels are statistically independent; the same
    /// label always yields the same child for a given parent state.
    pub fn split(&mut self, label: u64) -> SimRng {
        let base = self.inner.next_u64();
        // SplitMix64-style finalizer to decorrelate label and base.
        let mut z = base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Next raw 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection sampling on the widening multiply.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // (0,1]
        -mean * u.ln()
    }

    /// A heavy-tailed "Internet-like" latency sample: base plus a
    /// log-normal-ish tail implemented as exp of a scaled normal approximation
    /// (sum of uniforms). Keeps the dependency footprint at zero.
    pub fn lognormalish(&mut self, median: f64, sigma: f64) -> f64 {
        // Irwin–Hall(12) gives an approximate standard normal.
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.f64();
        }
        let z = s - 6.0;
        median * (sigma * z).exp()
    }

    /// Fill a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    /// Choose a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let mut parent1 = SimRng::seed_from_u64(42);
        let mut parent2 = SimRng::seed_from_u64(42);
        let mut c1 = parent1.split(5);
        let mut c2 = parent2.split(5);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = SimRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SimRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(10.0)).sum::<f64>() / n as f64;
        assert!((9.0..11.0).contains(&mean), "got {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut r = SimRng::seed_from_u64(23);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match r.range_inclusive(3, 6) {
                3 => lo_seen = true,
                6 => hi_seen = true,
                x => assert!((3..=6).contains(&x)),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
