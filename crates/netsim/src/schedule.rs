//! Deterministic dynamics schedules: partition/heal windows and node churn.
//!
//! Continuous-testing surveys single out environment dynamics — nodes
//! joining and leaving, partitions opening and healing — as the dimension
//! simulation harnesses usually skip. This module makes them first-class: a
//! [`ScheduleSpec`] declares *how much* dynamics a run should see, and
//! [`ScheduleSpec::expand`] turns it into a concrete time-ordered
//! [`Schedule`] of [`FaultAction`]s using only [`SimRng`] randomness, so the
//! same `(spec, topology, seed)` always yields the same script.
//!
//! A schedule can be driven two ways:
//!
//! * [`Schedule::install`] enqueues every action as an in-band simulation
//!   event ([`Simulator::schedule_fault`]); actions then fire during any
//!   `run_*` call with no caller involvement — the natural mode for long
//!   scale experiments.
//! * [`Schedule::apply_due`] applies actions at or before `sim.now()`
//!   immediately, [`crate::fault::FaultPlan`]-style; the campaign layer uses
//!   this between sweeps so dynamics land at quiescent points rather than
//!   mid-way through a Chandy–Lamport cut.
//!
//! Churn is modeled as fail-stop leave ([`FaultAction::NodeCrash`]) followed
//! by a pristine-state rejoin ([`FaultAction::NodeRestart`]) after
//! `churn_len`; a partition is a link going administratively down and
//! healing after `partition_len`. Every applied action counts into
//! [`crate::sim::SnapshotStats::churn_events`].

use serde::{Deserialize, Serialize};

use crate::fault::FaultAction;
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::sim::Simulator;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Declarative description of environment dynamics over a run window.
///
/// The default spec is empty (no partitions, no churn): threading a default
/// spec through a run is outcome-neutral, which is what lets the campaign
/// layer expose the knob without perturbing its byte-stable reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Number of partition windows: a random link goes down, then heals.
    pub partitions: u32,
    /// How long each partition stays open before healing.
    pub partition_len: SimDuration,
    /// Number of churn cycles: a random node leaves, then rejoins.
    pub churn: u32,
    /// Downtime before a churned node rejoins (from pristine state).
    pub churn_len: SimDuration,
    /// Offset from the expansion base time at which dynamics may begin.
    pub start: SimDuration,
    /// Window after `start` over which event onsets are scattered.
    pub window: SimDuration,
    /// Node ids below this are never churned (protects tier-1 ASes or the
    /// campaign's explorer set from leaving the system).
    pub protect_first: u32,
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        ScheduleSpec {
            partitions: 0,
            partition_len: SimDuration::from_secs(2),
            churn: 0,
            churn_len: SimDuration::from_secs(2),
            start: SimDuration::ZERO,
            window: SimDuration::from_secs(10),
            protect_first: 0,
        }
    }
}

impl ScheduleSpec {
    /// Whether expansion would produce no events at all.
    pub fn is_empty(&self) -> bool {
        self.partitions == 0 && self.churn == 0
    }

    /// Expand into a concrete script over `topo`, with onsets measured from
    /// `base`. Deterministic in `rng`: link picks, churn victims and onset
    /// jitter all come from the provided stream and nothing else.
    pub fn expand(&self, topo: &Topology, base: SimTime, rng: &mut SimRng) -> Schedule {
        let mut entries = Vec::new();
        let edges = topo.edges();
        for _ in 0..self.partitions {
            if edges.is_empty() {
                break;
            }
            let e = &edges[rng.index(edges.len())];
            let at = base + self.start + jitter(rng, self.window);
            entries.push((at, FaultAction::LinkDown(e.a, e.b)));
            entries.push((at + self.partition_len, FaultAction::LinkUp(e.a, e.b)));
        }
        let eligible = topo.len().saturating_sub(self.protect_first as usize);
        for _ in 0..self.churn {
            if eligible == 0 {
                break;
            }
            let n = NodeId(self.protect_first + rng.index(eligible) as u32);
            let at = base + self.start + jitter(rng, self.window);
            entries.push((at, FaultAction::NodeCrash(n)));
            entries.push((at + self.churn_len, FaultAction::NodeRestart(n)));
        }
        // Stable sort: simultaneous actions keep their generation order.
        entries.sort_by_key(|(t, _)| *t);
        Schedule {
            entries,
            applied: 0,
        }
    }
}

/// Uniform jitter in `[0, window)` (zero when the window is empty).
fn jitter(rng: &mut SimRng, window: SimDuration) -> SimDuration {
    if window.as_nanos() == 0 {
        return SimDuration::ZERO;
    }
    SimDuration::from_nanos(rng.below(window.as_nanos()))
}

/// An expanded, time-ordered dynamics script (see [`ScheduleSpec::expand`]).
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<(SimTime, FaultAction)>,
    applied: usize,
}

impl Schedule {
    /// The full script, in firing order.
    pub fn entries(&self) -> &[(SimTime, FaultAction)] {
        &self.entries
    }

    /// Total number of scripted actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the script contains no actions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of actions not yet installed or applied.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.applied
    }

    /// Enqueue every remaining action as an in-band simulation event;
    /// actions then fire during any `run_*` call (past onsets are clamped
    /// to now).
    pub fn install(&mut self, sim: &mut Simulator) {
        while self.applied < self.entries.len() {
            let (t, action) = self.entries[self.applied];
            sim.schedule_fault(t, action);
            self.applied += 1;
        }
    }

    /// Apply every remaining action scheduled at or before `sim.now()`
    /// immediately. Call interleaved with `run_until` steps (or between
    /// campaign sweeps) when actions must not land mid-snapshot.
    pub fn apply_due(&mut self, sim: &mut Simulator) {
        while self.applied < self.entries.len() {
            let (t, action) = self.entries[self.applied];
            if t > sim.now() {
                break;
            }
            sim.apply_fault_now(action);
            self.applied += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::node::{Node, NodeApi};
    use core::any::Any;

    #[derive(Clone, Default)]
    struct Quiet;
    impl Node for Quiet {
        fn on_message(&mut self, _: NodeId, _: &[u8], _: &mut NodeApi<'_>) {}
        fn clone_node(&self) -> Box<dyn Node> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn quiet_sim(n: usize) -> Simulator {
        let topo = Topology::line(n, LinkParams::fixed(SimDuration::from_millis(1)));
        let mut sim = Simulator::new(topo, 0);
        for i in 0..n {
            sim.set_node(NodeId(i as u32), Box::new(Quiet));
        }
        sim.start();
        sim
    }

    fn busy_spec() -> ScheduleSpec {
        ScheduleSpec {
            partitions: 2,
            partition_len: SimDuration::from_secs(1),
            churn: 2,
            churn_len: SimDuration::from_secs(1),
            start: SimDuration::from_secs(1),
            window: SimDuration::from_secs(5),
            protect_first: 1,
        }
    }

    #[test]
    fn expansion_is_deterministic_and_seed_sensitive() {
        let topo = Topology::line(6, LinkParams::default());
        let spec = busy_spec();
        let a = spec.expand(&topo, SimTime::ZERO, &mut SimRng::seed_from_u64(9));
        let b = spec.expand(&topo, SimTime::ZERO, &mut SimRng::seed_from_u64(9));
        assert_eq!(a.entries(), b.entries(), "same seed must replay");
        assert_eq!(a.len(), 8, "two actions per partition and per churn");
        let c = spec.expand(&topo, SimTime::ZERO, &mut SimRng::seed_from_u64(10));
        assert_ne!(a.entries(), c.entries(), "different seed must diverge");
    }

    #[test]
    fn empty_spec_expands_to_nothing() {
        let topo = Topology::line(3, LinkParams::default());
        let spec = ScheduleSpec::default();
        assert!(spec.is_empty());
        let s = spec.expand(&topo, SimTime::ZERO, &mut SimRng::seed_from_u64(1));
        assert!(s.is_empty());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn protect_first_shields_low_ids() {
        let topo = Topology::line(8, LinkParams::default());
        let spec = ScheduleSpec {
            churn: 16,
            protect_first: 4,
            window: SimDuration::ZERO,
            ..ScheduleSpec::default()
        };
        let s = spec.expand(&topo, SimTime::ZERO, &mut SimRng::seed_from_u64(3));
        for (_, action) in s.entries() {
            if let FaultAction::NodeCrash(n) | FaultAction::NodeRestart(n) = action {
                assert!(n.0 >= 4, "churned protected node {n}");
            }
        }
    }

    #[test]
    fn installed_partition_opens_and_heals_in_band() {
        let mut sim = quiet_sim(3);
        sim.run_until(SimTime::from_nanos(500_000_000));
        let spec = ScheduleSpec {
            partitions: 1,
            partition_len: SimDuration::from_secs(2),
            start: SimDuration::from_secs(1),
            window: SimDuration::ZERO,
            ..ScheduleSpec::default()
        };
        let topo = sim.topology().clone();
        let mut sched = spec.expand(&topo, sim.now(), &mut SimRng::seed_from_u64(4));
        sched.install(&mut sim);
        assert_eq!(sched.pending(), 0, "install drains the script");
        // Partition opens at now+1s and heals 2s later — all inside run_until,
        // with no pumping from the caller.
        let (a, b) = match sched.entries()[0] {
            (_, FaultAction::LinkDown(a, b)) => (a, b),
            ref e => panic!("expected LinkDown first, got {e:?}"),
        };
        sim.run_until(SimTime::from_nanos(2_000_000_000));
        assert!(!sim.session_up(a, b), "partition window open");
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        assert!(sim.session_up(a, b), "partition healed in-band");
        assert_eq!(sim.take_snapshot_stats().churn_events, 2);
    }

    #[test]
    fn churn_cycle_leaves_and_rejoins() {
        let mut sim = quiet_sim(4);
        sim.run_until(SimTime::from_nanos(500_000_000));
        let spec = ScheduleSpec {
            churn: 1,
            churn_len: SimDuration::from_secs(1),
            start: SimDuration::from_secs(1),
            window: SimDuration::ZERO,
            protect_first: 1,
            ..ScheduleSpec::default()
        };
        let topo = sim.topology().clone();
        let mut sched = spec.expand(&topo, sim.now(), &mut SimRng::seed_from_u64(5));
        let victim = match sched.entries()[0] {
            (_, FaultAction::NodeCrash(n)) => n,
            ref e => panic!("expected NodeCrash first, got {e:?}"),
        };
        sched.install(&mut sim);
        sim.run_until(SimTime::from_nanos(2_000_000_000));
        assert!(sim.crashed(victim).is_some(), "node left mid-run");
        sim.run_until(SimTime::from_nanos(6_000_000_000));
        assert!(sim.crashed(victim).is_none(), "node rejoined");
        let peers = topo.neighbors(victim);
        assert!(
            peers.iter().all(|&m| sim.session_up(victim, m)),
            "rejoined node re-established its sessions"
        );
        assert_eq!(sim.take_snapshot_stats().churn_events, 2);
    }

    #[test]
    fn apply_due_pumps_like_a_fault_plan() {
        let mut sim = quiet_sim(3);
        let spec = ScheduleSpec {
            partitions: 1,
            partition_len: SimDuration::from_secs(2),
            start: SimDuration::from_secs(1),
            window: SimDuration::ZERO,
            ..ScheduleSpec::default()
        };
        let topo = sim.topology().clone();
        let mut sched = spec.expand(&topo, SimTime::ZERO, &mut SimRng::seed_from_u64(6));
        sched.apply_due(&mut sim);
        assert_eq!(sched.pending(), 2, "nothing due at t=0");
        sim.run_until(SimTime::from_nanos(1_500_000_000));
        sched.apply_due(&mut sim);
        assert_eq!(sched.pending(), 1, "partition opened");
        sim.run_until(SimTime::from_nanos(4_000_000_000));
        sched.apply_due(&mut sim);
        assert_eq!(sched.pending(), 0, "partition healed");
        assert_eq!(sim.take_snapshot_stats().churn_events, 2);
    }
}
